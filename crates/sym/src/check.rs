//! Cover cross-intersection and the mode-dispatching equivalence front door.
//!
//! Two pipelines are equivalent iff on every non-empty intersection of a
//! left atom with a right atom the two behaviors agree: the atoms of each
//! cover tile the input space, so the pairwise intersections tile it too,
//! and behavior is constant on each piece. The check is therefore a
//! cross-product scan — quadratic in atom counts, independent of field
//! widths — instead of a sweep over the (possibly astronomically large)
//! Cartesian packet domain.
//!
//! A disagreeing atom is reported as a concrete [`Counterexample`]: a
//! representative packet is extracted from the intersection cube and both
//! pipelines are re-run on it with the ordinary evaluator, so the reported
//! packet, field listing and verdicts are byte-compatible with the
//! enumerative engine's output (and independently re-checkable).

use crate::compile::{compile, CoverBackend, FieldSpace, SymConfig, Unsupported};
use crate::ddcover::DdEngine;
use mapro_core::{
    CheckMethod, Counterexample, EquivConfig, EquivError, EquivMode, EquivOutcome, Packet, Pipeline,
};
use mapro_par::{CancelToken, Pool};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Why the symbolic path could not produce a verdict.
enum SymFail {
    /// The program is outside the cube compiler's fragment (or blew a
    /// budget) — `Auto` mode falls back to the enumerative engine.
    Unsupported(Unsupported),
    /// A hard comparability/evaluation error the fallback engine would
    /// also report — never retried.
    Hard(EquivError),
}

/// How many left atoms one pool task scans against the full right cover.
/// Fixed — never derived from the thread count — so the chunk grid (and
/// therefore the winning counterexample) is identical at any pool size.
const SYM_CHUNK: usize = 32;

/// A scan task's terminating event (first in-chunk disagreement or the
/// first evaluation error while concretizing it).
enum ChunkEvent {
    Cx(Box<Counterexample>),
    Fail(EquivError),
}

/// Run the symbolic engine only. Public for benchmarks and tests that
/// want the raw engine; most callers should use [`check_equivalent`].
///
/// # Errors
/// [`EquivError::SymbolicUnsupported`] when the program falls outside the
/// cube compiler's fragment (under [`EquivMode::Auto`] the front door
/// falls back to enumeration instead), plus the same hard errors the
/// enumerative engine reports ([`EquivError::IncompatibleCatalogs`],
/// [`EquivError::Eval`]).
pub fn check_symbolic(
    left: &Pipeline,
    right: &Pipeline,
    sym: &SymConfig,
) -> Result<EquivOutcome, EquivError> {
    symbolic(left, right, sym).map_err(|e| match e {
        SymFail::Unsupported(u) => EquivError::SymbolicUnsupported(u.to_string()),
        SymFail::Hard(e) => e,
    })
}

/// Joint match-bit threshold above which `Auto` goes straight to the DD
/// backend: beyond this width a cube list can in principle hold more
/// residues than any budget admits, while a hash-consed diagram stays
/// proportional to the *structure* of the tables, not the width. 192 bits
/// keeps the paper workloads (≤128 joint bits) on the cube engine whose
/// committed benchmark digests they pin, and routes wide16-class spaces
/// (256 bits) to DDs up front.
pub(crate) const AUTO_DD_BITS: u32 = 192;

/// The representative packets symbolic checks construct assign values by
/// attribute id; both programs must agree on what each participating id
/// denotes (same guard, and same error, as the enumerative engine).
/// Shared with [`crate::incremental`], whose sessions perform the same
/// construction across many updates.
pub(crate) fn catalog_guard(
    left: &Pipeline,
    right: &Pipeline,
    space: &FieldSpace,
) -> Result<(), EquivError> {
    for &(attr, _) in &space.coords {
        let l = (attr.index() < left.catalog.len()).then(|| left.catalog.attr(attr));
        let r = (attr.index() < right.catalog.len()).then(|| right.catalog.attr(attr));
        let same = matches!((l, r), (Some(a), Some(b)) if a.name == b.name && a.width == b.width);
        if !same {
            return Err(EquivError::IncompatibleCatalogs {
                attr,
                left: l.map(|a| a.name.clone()),
                right: r.map(|a| a.name.clone()),
            });
        }
    }
    Ok(())
}

fn symbolic(left: &Pipeline, right: &Pipeline, sym: &SymConfig) -> Result<EquivOutcome, SymFail> {
    mapro_obs::counter!("sym.checks").inc();
    let _t = mapro_obs::time!("sym.check_ns");
    let _sp = mapro_obs::trace::span("symbolic");
    let space_span = mapro_obs::trace::span("space");
    let space = FieldSpace::from_pipelines(&[left, right]);
    catalog_guard(left, right, &space).map_err(SymFail::Hard)?;
    drop(space_span);

    match sym.backend {
        CoverBackend::Cube => symbolic_cube(left, right, &space, sym),
        CoverBackend::Dd => symbolic_dd(left, right, &space, sym),
        CoverBackend::Auto => {
            let bits: u32 = space.coords.iter().map(|&(_, w)| w).sum();
            if bits > AUTO_DD_BITS {
                mapro_obs::counter!("sym.auto.dd_wide").inc();
                return symbolic_dd(left, right, &space, sym);
            }
            match symbolic_cube(left, right, &space, sym) {
                Err(SymFail::Unsupported(
                    Unsupported::AtomBudget | Unsupported::PartitionBudget,
                )) => {
                    // A blown cube budget is exactly the fragmentation the
                    // DD representation does not suffer from; retry before
                    // surfacing Unsupported (which would otherwise demote
                    // the verdict to enumeration or an error).
                    mapro_obs::counter!("sym.auto.dd_retry").inc();
                    symbolic_dd(left, right, &space, sym)
                }
                other => other,
            }
        }
    }
}

/// Concretize a disagreeing region into a counterexample by re-running the
/// ordinary evaluator on a representative coordinate point (one value per
/// space column). Shared by both backends so the reported packet, field
/// listing and verdicts are byte-compatible regardless of engine.
pub(crate) fn concretize(
    left: &Pipeline,
    right: &Pipeline,
    space: &FieldSpace,
    rep: &[u64],
) -> Result<Counterexample, EquivError> {
    let mut pkt = Packet::zero(&left.catalog);
    for (k, &(attr, _)) in space.coords.iter().enumerate() {
        pkt.set(attr, rep[k]);
    }
    let vl = left.run_indexed(&pkt, &left.name_index())?;
    let vr = right.run_indexed(&pkt, &right.name_index())?;
    debug_assert_ne!(
        vl.observable(),
        vr.observable(),
        "behavior covers disagree on a region whose representative \
         evaluates identically — cover compilation is unsound"
    );
    let fields = space
        .coords
        .iter()
        .map(|&(a, _)| (left.catalog.name(a).to_owned(), pkt.get(a)))
        .collect();
    Ok(Counterexample {
        packet: pkt,
        fields,
        left: vl,
        right: vr,
    })
}

/// The DD engine: compile both pipelines into one manager and compare the
/// MTBDD roots — equivalence is a single pointer comparison, and any
/// difference yields a `first_diff` witness path. `packets_checked`
/// reports the shared node count of the two diagrams (the honest measure
/// of work, mirroring the pair count the cube scan reports).
fn symbolic_dd(
    left: &Pipeline,
    right: &Pipeline,
    space: &FieldSpace,
    sym: &SymConfig,
) -> Result<EquivOutcome, SymFail> {
    let _sp = mapro_obs::trace::span("symbolic_dd");
    let mut eng = DdEngine::new(space, sym);
    let l = eng
        .compile(left, space, sym)
        .map_err(SymFail::Unsupported)?;
    let r = eng
        .compile(right, space, sym)
        .map_err(SymFail::Unsupported)?;
    if l == r {
        return Ok(EquivOutcome::Equivalent {
            packets_checked: eng.mgr.node_count(&[l, r]),
            exhaustive: true,
            method: CheckMethod::Symbolic,
        });
    }
    let path = eng
        .mgr
        .first_diff(l, r)
        .expect("distinct hash-consed roots must differ somewhere");
    let rep = eng.layout.key_of_path(&path);
    match concretize(left, right, space, &rep) {
        Ok(cx) => Ok(EquivOutcome::Counterexample(Box::new(cx))),
        Err(e) => Err(SymFail::Hard(e)),
    }
}

fn symbolic_cube(
    left: &Pipeline,
    right: &Pipeline,
    space: &FieldSpace,
    sym: &SymConfig,
) -> Result<EquivOutcome, SymFail> {
    let space = space.clone();
    // Each side gets its own `compile` span (opened inside `compile`);
    // they appear in left, right order on the timeline.
    let lc = compile(left, &space, sym).map_err(SymFail::Unsupported)?;
    let rc = compile(right, &space, sym).map_err(SymFail::Unsupported)?;

    // Cross-intersection fan-out: fixed-size chunks of left atoms, each
    // task scanning the full right cover. `find_first` keeps the lowest
    // chunk index, and within a chunk the scan is in order, so the winning
    // counterexample is the first in (left atom, right atom) order at any
    // thread count. The non-empty pair count is only reported on the
    // equivalent outcome, where every task ran to completion — making the
    // relaxed atomic tally deterministic too.
    let pairs = AtomicUsize::new(0);
    let chunks = mapro_par::chunk_ranges(lc.atoms.len(), SYM_CHUNK);
    let pool = Pool::current();
    let mut cross_span = mapro_obs::trace::span_kv(
        "cross",
        vec![
            ("atoms_left", lc.atoms.len().into()),
            ("atoms_right", rc.atoms.len().into()),
            ("chunks", chunks.len().into()),
        ],
    );
    let hit = pool.find_first(chunks.len(), &CancelToken::new(), |ci, ctl| {
        let mut chunk_span = mapro_obs::trace::span_kv("chunk", vec![("chunk", ci.into())]);
        let mut local_pairs = 0usize;
        for la in &lc.atoms[chunks[ci].clone()] {
            if ctl.superseded(ci) {
                return None; // a lower-indexed chunk already hit
            }
            for ra in &rc.atoms {
                let Some(meet) = la.cube.intersect(&ra.cube) else {
                    continue;
                };
                local_pairs += 1;
                if la.behavior != ra.behavior {
                    let _c = mapro_obs::trace::span("concretize");
                    return Some(
                        match concretize(left, right, &space, &meet.representative()) {
                            Ok(cx) => ChunkEvent::Cx(Box::new(cx)),
                            Err(e) => ChunkEvent::Fail(e),
                        },
                    );
                }
            }
        }
        chunk_span.set("pairs", local_pairs);
        pairs.fetch_add(local_pairs, Ordering::Relaxed);
        None
    });
    cross_span.set("pairs", pairs.load(Ordering::Relaxed));
    drop(cross_span);
    match hit {
        None => Ok(EquivOutcome::Equivalent {
            packets_checked: pairs.load(Ordering::Relaxed),
            exhaustive: true,
            method: CheckMethod::Symbolic,
        }),
        Some(ChunkEvent::Cx(cx)) => Ok(EquivOutcome::Counterexample(cx)),
        Some(ChunkEvent::Fail(e)) => Err(SymFail::Hard(e)),
    }
}

/// Check whether two pipelines are observationally equivalent — the
/// mode-dispatching front door (re-exported by the `mapro` prelude).
///
/// Dispatch on [`EquivConfig::mode`]:
/// * [`EquivMode::Auto`] — run the symbolic engine; if the program is
///   outside the cube compiler's fragment, fall back to the enumerative
///   engine (counted in `sym.fallbacks`). Hard errors never fall back.
/// * [`EquivMode::Symbolic`] — symbolic only; unsupported constructs are
///   [`EquivError::SymbolicUnsupported`].
/// * [`EquivMode::Enumerate`] — the enumerative cross-check oracle in
///   `mapro-core`, exhaustive up to [`EquivConfig::max_exhaustive`] and
///   sampled beyond it.
///
/// Every equivalent outcome reports how it was decided in
/// [`EquivOutcome::Equivalent::method`]; only sampled verdicts are
/// incomplete.
pub fn check_equivalent(
    left: &Pipeline,
    right: &Pipeline,
    cfg: &EquivConfig,
) -> Result<EquivOutcome, EquivError> {
    check_equivalent_with(left, right, cfg, &SymConfig::default())
}

/// [`check_equivalent`] with explicit symbolic-compiler budgets.
pub fn check_equivalent_with(
    left: &Pipeline,
    right: &Pipeline,
    cfg: &EquivConfig,
    sym: &SymConfig,
) -> Result<EquivOutcome, EquivError> {
    check_equivalent_explain(left, right, cfg, sym).map(|(out, _)| out)
}

/// Why [`EquivMode::Auto`] abandoned the symbolic engine for this check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FallbackInfo {
    /// Stable cause label ([`Unsupported::label`]): `goto_cycle`,
    /// `unknown_table`, `bad_action_param`, `atom_budget`,
    /// `partition_budget`, or `node_budget`.
    pub cause: &'static str,
    /// Human-readable detail of the unsupported construct.
    pub detail: String,
}

/// [`check_equivalent_with`], additionally reporting *why* the verdict
/// fell back to the enumerative engine (under [`EquivMode::Auto`] only;
/// `None` means the symbolic engine decided, or another mode ran).
///
/// Every fallback increments both the aggregate `sym.fallbacks` counter
/// and a per-cause `sym.fallback.<cause>` counter.
pub fn check_equivalent_explain(
    left: &Pipeline,
    right: &Pipeline,
    cfg: &EquivConfig,
    sym: &SymConfig,
) -> Result<(EquivOutcome, Option<FallbackInfo>), EquivError> {
    let _sp = mapro_obs::trace::span("check");
    match cfg.mode {
        EquivMode::Enumerate => mapro_core::check_equivalent(left, right, cfg).map(|o| (o, None)),
        EquivMode::Symbolic => check_symbolic(left, right, sym).map(|o| (o, None)),
        EquivMode::Auto => match symbolic(left, right, sym) {
            Ok(out) => Ok((out, None)),
            Err(SymFail::Hard(e)) => Err(e),
            Err(SymFail::Unsupported(u)) => {
                let info = FallbackInfo {
                    cause: u.label(),
                    detail: u.to_string(),
                };
                mapro_obs::counter!("sym.fallbacks").inc();
                mapro_obs::registry()
                    .counter(&format!("sym.fallback.{}", info.cause))
                    .inc();
                mapro_obs::trace::instant_kv("fallback", vec![("cause", info.cause.into())]);
                let cfg = EquivConfig {
                    mode: EquivMode::Enumerate,
                    ..cfg.clone()
                };
                mapro_core::check_equivalent(left, right, &cfg).map(|o| (o, Some(info)))
            }
        },
    }
}

/// Convenience wrapper asserting equivalence with default configuration
/// (symbolic with enumerative fallback).
///
/// # Panics
/// Panics with a readable counterexample if the pipelines differ, or on
/// check errors. Intended for tests and transformation verification.
pub fn assert_equivalent(left: &Pipeline, right: &Pipeline) {
    match check_equivalent(left, right, &EquivConfig::default()) {
        Ok(EquivOutcome::Equivalent { .. }) => {}
        Ok(EquivOutcome::Counterexample(cx)) => {
            panic!(
                "pipelines differ on packet {:?}:\n left: {:?}\n right: {:?}",
                cx.fields, cx.left, cx.right
            );
        }
        Err(e) => panic!("equivalence check failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::{ActionSem, Catalog, Table, Value};

    fn out_table(width: u32, rows: &[(u64, &str)]) -> Pipeline {
        let mut c = Catalog::new();
        let f = c.field("f", width);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f], vec![out]);
        for &(v, port) in rows {
            t.row(vec![Value::Int(v)], vec![Value::sym(port)]);
        }
        Pipeline::single(c, t)
    }

    #[test]
    fn identical_pipelines_symbolically_equivalent() {
        let a = out_table(8, &[(1, "x"), (2, "y")]);
        let b = out_table(8, &[(1, "x"), (2, "y")]);
        match check_symbolic(&a, &b, &SymConfig::default()).unwrap() {
            EquivOutcome::Equivalent {
                exhaustive, method, ..
            } => {
                assert!(exhaustive, "symbolic verdicts are complete");
                assert_eq!(method, CheckMethod::Symbolic);
            }
            _ => panic!("expected equivalence"),
        }
    }

    #[test]
    fn entry_order_irrelevant_when_disjoint() {
        let a = out_table(8, &[(1, "x"), (2, "y")]);
        let b = out_table(8, &[(2, "y"), (1, "x")]);
        assert!(check_symbolic(&a, &b, &SymConfig::default())
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn differing_output_found_with_concrete_counterexample() {
        let a = out_table(8, &[(1, "x")]);
        let b = out_table(8, &[(1, "y")]);
        match check_symbolic(&a, &b, &SymConfig::default()).unwrap() {
            EquivOutcome::Counterexample(cx) => {
                assert_eq!(cx.fields, vec![("f".to_owned(), 1)]);
                assert_eq!(cx.left.output.as_deref(), Some("x"));
                assert_eq!(cx.right.output.as_deref(), Some("y"));
            }
            _ => panic!("expected counterexample"),
        }
    }

    #[test]
    fn infeasible_width_still_checked_exactly() {
        // 2^64 packets: enumeration (even sampled) could miss the single
        // disagreeing point; the cover check finds it exactly.
        let a = out_table(64, &[(123_456_789_000, "x")]);
        let b = out_table(64, &[(123_456_789_000, "z")]);
        match check_symbolic(&a, &b, &SymConfig::default()).unwrap() {
            EquivOutcome::Counterexample(cx) => {
                assert_eq!(cx.fields, vec![("f".to_owned(), 123_456_789_000)]);
            }
            _ => panic!("expected counterexample"),
        }
        let c = out_table(64, &[(123_456_789_000, "x")]);
        assert!(check_symbolic(&a, &c, &SymConfig::default())
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn general_ternary_outside_enumerative_fragment_is_checked() {
        // Non-contiguous ternary masks are outside the enumerative
        // domain's decidable fragment; the cube engine handles them
        // natively.
        let mk = |port: &str| {
            let mut c = Catalog::new();
            let f = c.field("f", 8);
            let out = c.action("out", ActionSem::Output);
            let mut t = Table::new("t", vec![f], vec![out]);
            t.row(
                vec![Value::Ternary {
                    bits: 0b0100_0001,
                    mask: 0b0101_0101,
                }],
                vec![Value::sym(port)],
            );
            Pipeline::single(c, t)
        };
        let (a, b) = (mk("x"), mk("x"));
        assert!(check_symbolic(&a, &b, &SymConfig::default())
            .unwrap()
            .is_equivalent());
        let c = mk("y");
        let cx = match check_symbolic(&a, &c, &SymConfig::default()).unwrap() {
            EquivOutcome::Counterexample(cx) => cx,
            _ => panic!("expected counterexample"),
        };
        // The representative must actually satisfy the ternary predicate.
        assert_eq!(cx.fields[0].1 & 0b0101_0101, 0b0100_0001);
    }

    #[test]
    fn auto_mode_falls_back_on_blown_budget() {
        let a = out_table(8, &[(1, "x"), (2, "y")]);
        let b = out_table(8, &[(2, "y"), (1, "x")]);
        let tiny = SymConfig {
            max_atoms: 1,
            ..SymConfig::default()
        };
        // Symbolic-only: budget exhaustion is an error...
        assert!(matches!(
            check_equivalent_with(
                &a,
                &b,
                &EquivConfig {
                    mode: EquivMode::Symbolic,
                    ..EquivConfig::default()
                },
                &tiny
            ),
            Err(EquivError::SymbolicUnsupported(_))
        ));
        // ...while Auto silently falls back to the enumerative oracle.
        match check_equivalent_with(&a, &b, &EquivConfig::default(), &tiny).unwrap() {
            EquivOutcome::Equivalent { method, .. } => {
                assert_eq!(method, CheckMethod::Exhaustive);
            }
            _ => panic!("expected equivalence via fallback"),
        }
    }

    #[test]
    fn dd_backend_agrees_with_cube_on_verdict_and_witness() {
        let dd = SymConfig {
            backend: CoverBackend::Dd,
            ..SymConfig::default()
        };
        let a = out_table(8, &[(1, "x"), (2, "y")]);
        let b = out_table(8, &[(2, "y"), (1, "x")]);
        match check_symbolic(&a, &b, &dd).unwrap() {
            EquivOutcome::Equivalent {
                exhaustive, method, ..
            } => {
                assert!(exhaustive);
                assert_eq!(method, CheckMethod::Symbolic);
            }
            _ => panic!("expected equivalence"),
        }
        // A planted difference must come back as the same concrete
        // counterexample shape the cube backend reports.
        let c = out_table(8, &[(1, "x"), (2, "z")]);
        let cube_cx = match check_symbolic(&a, &c, &SymConfig::default()).unwrap() {
            EquivOutcome::Counterexample(cx) => cx,
            _ => panic!("expected counterexample"),
        };
        let dd_cx = match check_symbolic(&a, &c, &dd).unwrap() {
            EquivOutcome::Counterexample(cx) => cx,
            _ => panic!("expected counterexample"),
        };
        assert_eq!(cube_cx.fields, dd_cx.fields);
        assert_eq!(cube_cx.left.output, dd_cx.left.output);
        assert_eq!(cube_cx.right.output, dd_cx.right.output);
    }

    #[test]
    fn wide_space_routes_auto_to_dd_and_proves_equivalence() {
        // Four 64-bit fields: 256 joint bits, 2^256 packets — enumeration
        // is absurd and a cube cover would still work here, but Auto must
        // route wide spaces straight to the DD engine and stay exact.
        let mk = |port: &str| {
            let mut c = Catalog::new();
            let fs: Vec<_> = (0..4).map(|i| c.field(format!("f{i}"), 64)).collect();
            let out = c.action("out", ActionSem::Output);
            let mut t = Table::new("t", fs.clone(), vec![out]);
            t.row(
                vec![Value::Int(7), Value::Any, Value::Any, Value::Any],
                vec![Value::sym(port)],
            );
            Pipeline::single(c, t)
        };
        let (a, b) = (mk("x"), mk("x"));
        match check_symbolic(&a, &b, &SymConfig::default()).unwrap() {
            EquivOutcome::Equivalent {
                exhaustive, method, ..
            } => {
                assert!(exhaustive);
                assert_eq!(method, CheckMethod::Symbolic);
            }
            _ => panic!("expected equivalence"),
        }
        let c = mk("y");
        match check_symbolic(&a, &c, &SymConfig::default()).unwrap() {
            EquivOutcome::Counterexample(cx) => {
                assert_eq!(cx.fields[0], ("f0".to_owned(), 7));
            }
            _ => panic!("expected counterexample"),
        }
    }

    #[test]
    fn front_door_dispatches_all_three_modes() {
        let a = out_table(8, &[(1, "x")]);
        let b = out_table(8, &[(1, "x")]);
        let method_of = |mode| {
            let cfg = EquivConfig {
                mode,
                ..EquivConfig::default()
            };
            match check_equivalent(&a, &b, &cfg).unwrap() {
                EquivOutcome::Equivalent { method, .. } => method,
                _ => panic!("expected equivalence"),
            }
        };
        assert_eq!(method_of(EquivMode::Auto), CheckMethod::Symbolic);
        assert_eq!(method_of(EquivMode::Symbolic), CheckMethod::Symbolic);
        assert_eq!(method_of(EquivMode::Enumerate), CheckMethod::Exhaustive);
    }

    #[test]
    fn incompatible_catalogs_rejected_not_fallen_back() {
        let a = out_table(8, &[(1, "x")]);
        let mut c = Catalog::new();
        let g = c.field("completely_different", 16);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![g], vec![out]);
        t.row(vec![Value::Int(1)], vec![Value::sym("x")]);
        let b = Pipeline::single(c, t);
        assert!(matches!(
            check_equivalent(&a, &b, &EquivConfig::default()),
            Err(EquivError::IncompatibleCatalogs { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "pipelines differ")]
    fn assert_equivalent_panics_with_counterexample() {
        let a = out_table(8, &[(1, "x")]);
        let b = out_table(8, &[(1, "y")]);
        assert_equivalent(&a, &b);
    }

    /// The symbolic verdict must agree with the enumerative oracle on a
    /// multi-table program with metadata plumbing and header rewrites.
    #[test]
    fn differential_multi_table() {
        let mk = |swap: bool| {
            let mut c = Catalog::new();
            let f = c.field("f", 4);
            let g = c.field("g", 4);
            let m = c.meta("m", 4);
            let set_m = c.action("set_m", ActionSem::SetField(m));
            let set_g = c.action("set_g", ActionSem::SetField(g));
            let out = c.action("out", ActionSem::Output);
            let mut t0 = Table::new("t0", vec![f], vec![set_m]);
            t0.row(vec![Value::Int(1)], vec![Value::Int(1)]);
            t0.next = Some("t1".into());
            let mut t1 = Table::new("t1", vec![m, g], vec![set_g, out]);
            t1.row(
                vec![Value::Int(1), Value::Any],
                vec![Value::Int(9), Value::sym("a")],
            );
            t1.row(
                vec![Value::Any, Value::Int(2)],
                vec![Value::Any, Value::sym(if swap { "c" } else { "b" })],
            );
            Pipeline::new(c, vec![t0, t1], "t0")
        };
        for (l, r) in [(mk(false), mk(false)), (mk(false), mk(true))] {
            let sym = check_symbolic(&l, &r, &SymConfig::default()).unwrap();
            let enu = mapro_core::check_equivalent(&l, &r, &EquivConfig::default()).unwrap();
            assert_eq!(sym.is_equivalent(), enu.is_equivalent());
        }
    }
}
