//! Compiling a pipeline to one hash-consed MTBDD over header bits.
//!
//! The cube compiler ([`crate::compile`]) materializes a behavior cover as
//! a *list* of disjoint ternary cubes; this module compiles the same
//! symbolic execution into a single `mapro-dd` MTBDD mapping every point
//! of the joint header space to an interned behavior id. The two engines
//! share [`SymCore`] / `apply_actions` / `delivered`, so the action
//! semantics cannot drift — only the predicate representation differs:
//!
//! * a table entry row becomes a conjunction of bit literals
//!   ([`BitLayout::tern_lits`] + `Mgr::cube`);
//! * priority resolution is `diff` against the union of earlier entries —
//!   negation never fragments, unlike recursive cube splitting;
//! * the atoms never exist as a list: each terminal region is folded into
//!   the result with `ite(region, term(id), acc)`, and because the
//!   regions tile the input space the placeholder label 0 vanishes from
//!   the final diagram.
//!
//! Equivalence of two pipelines compiled in one [`DdEngine`] is root
//! pointer equality; a disagreement witness is a `first_diff` path mapped
//! back to field values by [`BitLayout::key_of_path`]. Both answers are
//! exact — the only budget is the node limit ([`SymConfig::max_nodes`]),
//! whose exhaustion surfaces as [`Unsupported::NodeBudget`], never as a
//! silently incomplete verdict.
//!
//! The variable order is *field-declaration bit order*: space coordinates
//! sorted by attribute id (exactly [`FieldSpace`] column order), MSB first
//! within each field. Prefix-style rows then test their cared bits closest
//! to the root, which keeps router-like tables shallow.

use crate::compile::{
    apply_actions, delivered, visit_limit, Behavior, FieldSpace, SymConfig, SymCore, Unsupported,
};
use crate::cube::Cube;
use mapro_core::{AttrId, MissPolicy, Pipeline};
use mapro_dd::{Mgr, NodeRef, Overflow};
use std::collections::HashMap;

impl From<Overflow> for Unsupported {
    fn from(_: Overflow) -> Unsupported {
        Unsupported::NodeBudget
    }
}

/// The fixed bit-to-variable mapping of one comparison domain: column `k`
/// of the [`FieldSpace`] occupies variables `offsets[k] .. offsets[k] +
/// widths[k]`, most significant bit first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitLayout {
    /// First variable of each column.
    offsets: Vec<u32>,
    /// Width (bits) of each column.
    widths: Vec<u32>,
    /// Total variable count.
    total: u32,
}

impl BitLayout {
    /// The layout of a field space: one bit run per coordinate, in
    /// coordinate (attribute-id) order.
    pub fn of(space: &FieldSpace) -> BitLayout {
        BitLayout::from_widths(space.coords.iter().map(|&(_, w)| w))
    }

    /// A layout from raw column widths (used by the per-table liveness
    /// analysis, where the columns are one table's match columns).
    pub fn from_widths(widths: impl IntoIterator<Item = u32>) -> BitLayout {
        let widths: Vec<u32> = widths.into_iter().collect();
        let mut offsets = Vec::with_capacity(widths.len());
        let mut total = 0u32;
        for &w in &widths {
            offsets.push(total);
            total += w;
        }
        BitLayout {
            offsets,
            widths,
            total,
        }
    }

    /// Total number of BDD variables.
    pub fn total_bits(&self) -> u32 {
        self.total
    }

    /// Append the bit literals of a ternary `(bits, mask)` predicate on
    /// column `col`, in ascending variable order (MSB of the field first).
    pub fn tern_lits(&self, col: usize, bits: u64, mask: u64, out: &mut Vec<(u32, bool)>) {
        let w = self.widths[col];
        for i in 0..w {
            let b = w - 1 - i; // bit position from the LSB
            if mask >> b & 1 == 1 {
                out.push((self.offsets[col] + i, bits >> b & 1 == 1));
            }
        }
    }

    /// Map a (partial) variable assignment back to one concrete value per
    /// column; unassigned bits are zero, so representatives are the same
    /// byte-stable "free bits pinned to 0" form the cube engine reports.
    pub fn key_of_path(&self, path: &[(u32, bool)]) -> Vec<u64> {
        let mut key = vec![0u64; self.widths.len()];
        for &(v, val) in path {
            if !val {
                continue;
            }
            let col = match self.offsets.binary_search(&v) {
                Ok(c) => c,
                Err(c) => c - 1,
            };
            let b = self.widths[col] - 1 - (v - self.offsets[col]);
            key[col] |= 1u64 << b;
        }
        key
    }
}

/// Interns [`Behavior`]s as MTBDD terminal labels. Ids start at 1: label 0
/// is the "no behavior assigned yet" placeholder the compiler folds over,
/// guaranteed absent from a completed diagram because the leaf regions
/// tile the universe.
#[derive(Default)]
struct BehaviorInterner {
    ids: HashMap<Behavior, u32>,
    behaviors: Vec<Behavior>,
}

impl BehaviorInterner {
    fn intern(&mut self, b: Behavior) -> u32 {
        if let Some(&id) = self.ids.get(&b) {
            return id;
        }
        self.behaviors.push(b.clone());
        let id = self.behaviors.len() as u32; // 1-based
        self.ids.insert(b, id);
        id
    }
}

/// One DD comparison domain: the manager whose pointer equality decides
/// equivalence, the shared behavior interner (same behavior → same
/// terminal in every pipeline compiled here), and the bit layout.
pub struct DdEngine {
    /// The node arena. Public so callers can report `node_count` or run
    /// `first_diff` on compiled roots.
    pub mgr: Mgr,
    /// The space-to-variable mapping of this domain.
    pub layout: BitLayout,
    interner: BehaviorInterner,
}

impl DdEngine {
    /// A fresh engine over `space` with the node limit from `cfg`.
    pub fn new(space: &FieldSpace, cfg: &SymConfig) -> DdEngine {
        DdEngine {
            mgr: Mgr::with_limit(cfg.max_nodes),
            layout: BitLayout::of(space),
            interner: BehaviorInterner::default(),
        }
    }

    /// Compile `p` to its behavior MTBDD over this engine's space.
    ///
    /// Two pipelines compiled in the same engine are observationally
    /// equivalent on the space iff their roots are the same [`NodeRef`].
    ///
    /// # Errors
    /// The same [`Unsupported`] causes as the cube compiler (goto cycles,
    /// unknown tables, malformed action cells, the shared atom budget as a
    /// branch-count safety valve), plus [`Unsupported::NodeBudget`] when
    /// the arena limit is hit.
    pub fn compile(
        &mut self,
        p: &Pipeline,
        space: &FieldSpace,
        cfg: &SymConfig,
    ) -> Result<NodeRef, Unsupported> {
        let (root, _leaves) = self.compile_from(p, space, cfg, NodeRef::TRUE)?;
        debug_assert!(
            self.layout.total == 0 || root != NodeRef::term(0) || p.tables.is_empty(),
            "leaf regions must tile the universe"
        );
        Ok(root)
    }

    /// Compile `p` restricted to the input region `state0` (a BDD over this
    /// engine's layout): the returned root maps every packet in `state0` to
    /// its interned behavior terminal and everything outside it to the
    /// placeholder terminal 0. Also returns the number of leaf regions
    /// emitted — the honest work measure for the delta.
    ///
    /// This is the DD half of the [`crate::incremental`] delta recompile:
    /// after a flow-mod dirties a region `D`, `ite(D, compile_within(new,
    /// D), old_root)` is the new cover, because the two agree everywhere
    /// outside `D` by the invalidation-cube contract.
    ///
    /// # Errors
    /// Same causes as [`DdEngine::compile`].
    pub fn compile_within(
        &mut self,
        p: &Pipeline,
        space: &FieldSpace,
        cfg: &SymConfig,
        within: NodeRef,
    ) -> Result<(NodeRef, usize), Unsupported> {
        self.compile_from(p, space, cfg, within)
    }

    fn compile_from(
        &mut self,
        p: &Pipeline,
        space: &FieldSpace,
        cfg: &SymConfig,
        state0: NodeRef,
    ) -> Result<(NodeRef, usize), Unsupported> {
        let _t = mapro_obs::time!("dd.compile_ns");
        let mut span =
            mapro_obs::trace::span_kv("dd.compile", vec![("tables", p.tables.len().into())]);
        let mut rows = Vec::with_capacity(p.tables.len());
        for t in &p.tables {
            let widths: Vec<u32> = t
                .match_attrs
                .iter()
                .map(|&a| p.catalog.attr(a).width)
                .collect();
            rows.push(
                t.entries
                    .iter()
                    .map(|e| Cube::of(&e.matches, &widths))
                    .collect::<Vec<_>>(),
            );
        }
        let mut c = DdCompiler {
            p,
            space,
            index: p.name_index(),
            rows,
            limit: visit_limit(p),
            max_atoms: cfg.max_atoms,
            leaves: 0,
            lits: Vec::new(),
        };
        let start = c
            .index
            .get(p.start.as_str())
            .copied()
            .ok_or_else(|| Unsupported::UnknownTable(p.start.clone()))?;
        let mut root = NodeRef::term(0);
        c.expand(
            &mut self.mgr,
            &self.layout,
            &mut self.interner,
            state0,
            SymCore::initial(p),
            start,
            &mut root,
        )?;
        span.set("leaves", c.leaves);
        span.set("nodes", self.mgr.len());
        Ok((root, c.leaves))
    }

    /// The behavior interned under terminal label `id` (1-based).
    ///
    /// # Panics
    /// Panics on the placeholder label 0 or an id this engine never
    /// interned.
    pub fn behavior(&self, id: u32) -> &Behavior {
        &self.interner.behaviors[id as usize - 1]
    }
}

/// The DD symbolic executor. Single-threaded depth-first — determinism is
/// structural (the manager is `&mut` everywhere), and the expensive work
/// (apply ops) is memoized rather than parallelized.
struct DdCompiler<'a> {
    p: &'a Pipeline,
    space: &'a FieldSpace,
    index: HashMap<&'a str, usize>,
    /// Per table, per entry: the row's ternary form over the table's own
    /// match columns (`None` = unsatisfiable symbolic cell).
    rows: Vec<Vec<Option<Cube>>>,
    limit: usize,
    max_atoms: usize,
    leaves: usize,
    /// Scratch literal buffer for entry-predicate construction.
    lits: Vec<(u32, bool)>,
}

impl<'a> DdCompiler<'a> {
    fn resolve(&self, name: &str) -> Result<usize, Unsupported> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| Unsupported::UnknownTable(name.to_owned()))
    }

    /// The predicate "entry row `ec` matches" under the concrete values of
    /// `core`, over the input-space bits. `None` when a concretely-valued
    /// column disagrees with the row — the entry matches nothing in this
    /// state.
    fn entry_bdd(
        &mut self,
        mgr: &mut Mgr,
        layout: &BitLayout,
        core: &SymCore,
        attrs: &[AttrId],
        ec: &Cube,
    ) -> Result<Option<NodeRef>, Overflow> {
        self.lits.clear();
        for (col, &attr) in attrs.iter().enumerate() {
            let t = ec.0[col];
            match core.vals[attr.index()] {
                Some(v) => {
                    if !t.matches(v) {
                        return Ok(None);
                    }
                }
                None => {
                    let k = self
                        .space
                        .coord_of(attr)
                        .expect("unwritten match attr is a space coordinate");
                    let mut col_lits = Vec::new();
                    layout.tern_lits(k, t.bits, t.mask, &mut col_lits);
                    self.lits.extend(col_lits);
                }
            }
        }
        // Columns arrive in match-attr order, not variable order; sort and
        // collapse duplicates (the same attribute matched twice), treating
        // a contradictory duplicate as an unsatisfiable row.
        self.lits.sort_unstable();
        let mut i = 0;
        while i + 1 < self.lits.len() {
            if self.lits[i].0 == self.lits[i + 1].0 {
                if self.lits[i].1 != self.lits[i + 1].1 {
                    return Ok(None);
                }
                self.lits.remove(i + 1);
            } else {
                i += 1;
            }
        }
        mgr.cube(&self.lits).map(Some)
    }

    /// Expand `state ∧ (reach table `ti` with `core`)` down to terminal
    /// regions, folding each into `root`.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &mut self,
        mgr: &mut Mgr,
        layout: &BitLayout,
        interner: &mut BehaviorInterner,
        state: NodeRef,
        core: SymCore,
        ti: usize,
        root: &mut NodeRef,
    ) -> Result<(), Unsupported> {
        let t = &self.p.tables[ti];
        // Priority resolution: entry `ei` wins on `state ∧ eᵢ ∖ (⋃ e₀..ᵢ₋₁)`.
        let mut acc = NodeRef::FALSE;
        let nrows = self.rows[ti].len();
        for ei in 0..nrows {
            let Some(ec) = self.rows[ti][ei].clone() else {
                continue; // unsatisfiable symbolic cell: matches nothing
            };
            let Some(e) = self.entry_bdd(mgr, layout, &core, &t.match_attrs, &ec)? else {
                continue; // concrete column mismatch: matches nothing here
            };
            let hit = mgr.and(state, e)?;
            let region = mgr.diff(hit, acc)?;
            acc = mgr.or(acc, e)?;
            if region == NodeRef::FALSE {
                continue;
            }
            let mut c2 = core.clone();
            c2.steps += 1;
            if c2.steps > self.limit {
                return Err(Unsupported::GotoCycle { limit: self.limit });
            }
            let goto = apply_actions(self.p, ti, ei, &mut c2)?;
            match goto {
                Some(g) => {
                    let t2 = self.resolve(g)?;
                    self.expand(mgr, layout, interner, region, c2, t2, root)?;
                }
                None => match &t.next {
                    Some(n) => {
                        let t2 = self.resolve(n)?;
                        self.expand(mgr, layout, interner, region, c2, t2, root)?;
                    }
                    None => {
                        self.emit(mgr, interner, region, delivered(self.p, &c2), root)?;
                    }
                },
            }
        }

        let miss = mgr.diff(state, acc)?;
        if miss == NodeRef::FALSE {
            return Ok(());
        }
        let mut c2 = core;
        c2.steps += 1;
        if c2.steps > self.limit {
            return Err(Unsupported::GotoCycle { limit: self.limit });
        }
        match &t.miss {
            MissPolicy::Drop => {
                self.emit(mgr, interner, miss, Behavior::Dropped, root)?;
            }
            MissPolicy::Controller => {
                let mut b = delivered(self.p, &c2);
                if let Behavior::Delivered { to_controller, .. } = &mut b {
                    *to_controller = true;
                }
                self.emit(mgr, interner, miss, b, root)?;
            }
            MissPolicy::Fall(n) => {
                let t2 = self.resolve(n)?;
                self.expand(mgr, layout, interner, miss, c2, t2, root)?;
            }
        }
        Ok(())
    }

    /// Fold one terminal region into the result MTBDD.
    fn emit(
        &mut self,
        mgr: &mut Mgr,
        interner: &mut BehaviorInterner,
        region: NodeRef,
        behavior: Behavior,
        root: &mut NodeRef,
    ) -> Result<(), Unsupported> {
        self.leaves += 1;
        if self.leaves > self.max_atoms {
            return Err(Unsupported::AtomBudget);
        }
        let id = interner.intern(behavior);
        *root = mgr.ite(region, NodeRef::term(id), *root)?;
        Ok(())
    }
}

/// Exact per-table entry liveness over one table's own match columns —
/// the DD replacement for the budgeted [`crate::cube::covered_by`] union
/// check in the shadowed-/dead-entry lints.
pub struct TableLiveness {
    /// Per entry: `None` when the row is unsatisfiable (a symbolic match
    /// cell — the existing "dead entry" case), `Some(true)` when the union
    /// of earlier satisfiable rows covers the row entirely (shadowed),
    /// `Some(false)` when some packet still reaches it.
    pub covered: Vec<Option<bool>>,
}

impl TableLiveness {
    /// Decide liveness of every row exactly: `eⱼ ∖ (⋃ e₀..ⱼ₋₁) = ∅` per
    /// satisfiable row, by DD subtraction. No budget — the only failure
    /// mode is the arena limit.
    ///
    /// # Errors
    /// [`Overflow`] when `max_nodes` interior nodes are exceeded.
    pub fn build(
        widths: &[u32],
        rows: &[Option<Cube>],
        max_nodes: usize,
    ) -> Result<TableLiveness, Overflow> {
        let layout = BitLayout::from_widths(widths.iter().copied());
        let mut mgr = Mgr::with_limit(max_nodes);
        let mut lits = Vec::new();
        let mut prefix = NodeRef::FALSE;
        let mut covered = Vec::with_capacity(rows.len());
        for row in rows {
            let Some(c) = row else {
                covered.push(None);
                continue;
            };
            lits.clear();
            for (col, t) in c.0.iter().enumerate() {
                layout.tern_lits(col, t.bits, t.mask, &mut lits);
            }
            let e = mgr.cube(&lits)?;
            let alive = mgr.diff(e, prefix)?;
            covered.push(Some(alive == NodeRef::FALSE));
            prefix = mgr.or(prefix, e)?;
        }
        Ok(TableLiveness { covered })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::{compile, CoverBackend};
    use crate::cube::Tern;
    use mapro_core::{ActionSem, Catalog, Packet, Table, Value};

    fn cfg() -> SymConfig {
        SymConfig {
            backend: CoverBackend::Dd,
            ..SymConfig::default()
        }
    }

    /// Enumerate the whole (small) space: the MTBDD must agree with the
    /// cube cover and the concrete evaluator on every packet.
    fn assert_dd_exact(p: &Pipeline) {
        let space = FieldSpace::from_pipelines(&[p]);
        let cfg = cfg();
        let mut eng = DdEngine::new(&space, &cfg);
        let root = eng.compile(p, &space, &cfg).unwrap();
        let cover = compile(p, &space, &cfg).unwrap();
        let widths: Vec<u32> = space.coords.iter().map(|&(_, w)| w).collect();
        let total: u64 = widths.iter().map(|&w| 1u64 << w).product();
        assert!(total <= 1 << 16, "test space too large");
        let layout = BitLayout::of(&space);
        for mut n in 0..total {
            let mut key = Vec::new();
            for &w in &widths {
                key.push(n & ((1u64 << w) - 1));
                n >>= w;
            }
            let id = eng.mgr.eval(root, |v| {
                let col = match layout.offsets.binary_search(&v) {
                    Ok(c) => c,
                    Err(c) => c - 1,
                };
                let b = layout.widths[col] - 1 - (v - layout.offsets[col]);
                key[col] >> b & 1 == 1
            });
            assert_ne!(id, 0, "placeholder terminal must not survive");
            let ai = cover.atom_of(&key).expect("cover tiles the space");
            assert_eq!(
                eng.behavior(id),
                &cover.atoms[ai].behavior,
                "DD and cube backends disagree at {key:?}"
            );
            // And against the ground-truth evaluator.
            let mut pkt = Packet::zero(&p.catalog);
            for (k, &(attr, _)) in space.coords.iter().enumerate() {
                pkt.set(attr, key[k]);
            }
            let v = p.run(&pkt).unwrap();
            let expect = match v.observable() {
                mapro_core::pipeline::Observable::Dropped => Behavior::Dropped,
                mapro_core::pipeline::Observable::Delivered {
                    output,
                    to_controller,
                    header_mods,
                    opaque,
                } => Behavior::Delivered {
                    output: output.map(std::sync::Arc::from),
                    to_controller,
                    header_mods: header_mods.to_vec(),
                    opaque: opaque.to_vec(),
                },
            };
            assert_eq!(eng.behavior(id), &expect, "packet {key:?}");
        }
    }

    #[test]
    fn single_table_dd_matches_cube_and_evaluator() {
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let g = c.field("g", 4);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f, g], vec![out]);
        t.row(vec![Value::Int(3), Value::Any], vec![Value::sym("a")]);
        t.row(
            vec![Value::prefix(0b1000, 1, 4), Value::Int(7)],
            vec![Value::sym("b")],
        );
        t.row(
            vec![
                Value::Ternary {
                    bits: 0b0101,
                    mask: 0b0101,
                },
                Value::Any,
            ],
            vec![Value::sym("c")],
        );
        assert_dd_exact(&Pipeline::single(c, t));
    }

    #[test]
    fn multi_table_goto_metadata_and_rewrite() {
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let g = c.field("g", 4);
        let m = c.meta("m", 8);
        let set_m = c.action("set_m", ActionSem::SetField(m));
        let set_g = c.action("set_g", ActionSem::SetField(g));
        let goto = c.action("goto", ActionSem::Goto);
        let out = c.action("out", ActionSem::Output);
        let mut t0 = Table::new("t0", vec![f], vec![set_m, set_g, goto]);
        t0.row(
            vec![Value::Int(1)],
            vec![Value::Int(10), Value::Int(7), Value::sym("t1")],
        );
        t0.row(
            vec![Value::Int(2)],
            vec![Value::Int(20), Value::Any, Value::sym("t1")],
        );
        let mut t1 = Table::new("t1", vec![m, g], vec![out]);
        t1.row(vec![Value::Int(10), Value::Int(7)], vec![Value::sym("p1")]);
        t1.row(vec![Value::Int(20), Value::Any], vec![Value::sym("p2")]);
        let p = Pipeline::new(c, vec![t0, t1], "t0");
        assert_dd_exact(&p);
    }

    #[test]
    fn miss_policies_covered() {
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let out = c.action("out", ActionSem::Output);
        let mut t0 = Table::new("t0", vec![f], vec![out]);
        t0.row(vec![Value::Int(1)], vec![Value::sym("a")]);
        t0.miss = MissPolicy::Fall("t1".into());
        let mut t1 = Table::new("t1", vec![f], vec![out]);
        t1.row(vec![Value::Int(2)], vec![Value::sym("b")]);
        t1.miss = MissPolicy::Controller;
        let p = Pipeline::new(c, vec![t0, t1], "t0");
        assert_dd_exact(&p);
    }

    #[test]
    fn goto_cycle_is_unsupported() {
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let goto = c.action("goto", ActionSem::Goto);
        let mut t0 = Table::new("t0", vec![f], vec![goto]);
        t0.row(vec![Value::Any], vec![Value::sym("t0")]);
        let p = Pipeline::single(c, t0);
        let space = FieldSpace::from_pipelines(&[&p]);
        let cfg = cfg();
        let mut eng = DdEngine::new(&space, &cfg);
        assert!(matches!(
            eng.compile(&p, &space, &cfg),
            Err(Unsupported::GotoCycle { .. })
        ));
    }

    #[test]
    fn node_budget_overflow_maps_to_unsupported() {
        let mut c = Catalog::new();
        let f = c.field("f", 32);
        let g = c.field("g", 32);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f, g], vec![out]);
        // Entangled rows so the diagram needs more than 8 nodes.
        for i in 0..4u64 {
            t.row(
                vec![
                    Value::Ternary {
                        bits: i * 0x0101_0101,
                        mask: 0x0f0f_0f0f,
                    },
                    Value::Ternary {
                        bits: (i * 0x1010_1010) & 0xf0f0_f0f0,
                        mask: 0xf0f0_f0f0,
                    },
                ],
                vec![Value::sym("x")],
            );
        }
        let p = Pipeline::single(c, t);
        let space = FieldSpace::from_pipelines(&[&p]);
        let cfg = SymConfig {
            backend: CoverBackend::Dd,
            max_nodes: 8,
            ..SymConfig::default()
        };
        let mut eng = DdEngine::new(&space, &cfg);
        assert_eq!(eng.compile(&p, &space, &cfg), Err(Unsupported::NodeBudget));
    }

    #[test]
    fn key_of_path_round_trips_msb_first() {
        let layout = BitLayout::from_widths([4, 8]);
        assert_eq!(layout.total_bits(), 12);
        // Variable 0 is the MSB of column 0; variable 4 the MSB of col 1.
        assert_eq!(layout.key_of_path(&[(0, true)]), vec![0b1000, 0]);
        assert_eq!(layout.key_of_path(&[(3, true)]), vec![0b0001, 0]);
        assert_eq!(layout.key_of_path(&[(4, true), (11, true)]), vec![0, 0x81]);
        assert_eq!(layout.key_of_path(&[(1, false)]), vec![0, 0]);
    }

    #[test]
    fn table_liveness_is_exact_without_budget() {
        // 0*** ∪ 1*** covers ****: entry 2 is shadowed by the union even
        // though neither cover row subsumes it alone — the case the
        // budgeted cube walk decides only within budget.
        let widths = [4u32];
        let rows = vec![
            Some(Cube(vec![Tern {
                bits: 0,
                mask: 0b1000,
            }])),
            Some(Cube(vec![Tern {
                bits: 0b1000,
                mask: 0b1000,
            }])),
            Some(Cube(vec![Tern { bits: 0, mask: 0 }])),
            None,
            Some(Cube(vec![Tern {
                bits: 0b0100,
                mask: 0b1100,
            }])),
        ];
        let lv = TableLiveness::build(&widths, &rows, 1 << 20).unwrap();
        assert_eq!(
            lv.covered,
            vec![Some(false), Some(false), Some(true), None, Some(true)]
        );
    }
}
