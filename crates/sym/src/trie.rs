//! A ternary bit-trie over cube lists: "which stored cubes intersect this
//! query cube" in time proportional to the compatible paths rather than
//! the list length.
//!
//! Both hot consumers key the same structure differently:
//!
//! * [`crate::compile`] indexes a table partition's pieces so a restricted
//!   compile visits only the pieces its input region can reach, instead of
//!   scanning every region + miss fragment (the miss region of a large
//!   exact-match table fragments into tens of thousands of cubes);
//! * [`crate::incremental`] indexes a session's live atoms so a flow-mod's
//!   dirty region finds its touched atoms without an `O(atoms)` sweep.
//!
//! ## Shape
//!
//! A stored cube walks one path — one trit per bit, columns in order, bits
//! msb-first: `0`, `1`, or `*` (wildcard) — truncated after its last
//! non-wildcard bit (every suffix bit is `*`, so the cube intersects
//! anything that reached its node). A query walks the same bit order but
//! fans out: a query `0` visits the `0` and `*` children, a query `*`
//! visits all three. Per-bit compatibility along the whole walk is exactly
//! [`Cube::intersects`], so the result set is exact, not a superset.
//!
//! Removals unlink slots but never prune nodes; sessions rebuild their
//! tries on fallback, which bounds the bloat of a long-lived slab.

use crate::cube::Cube;

/// Child slot sentinel: no node.
const NONE: u32 = u32::MAX;

#[derive(Debug)]
struct Node {
    /// Children by trit: `[zero, one, star]`.
    kids: [u32; 3],
    /// Stored cubes whose path ends at this node (wildcard tail).
    slots: Vec<u32>,
}

impl Node {
    fn new() -> Node {
        Node {
            kids: [NONE; 3],
            slots: Vec::new(),
        }
    }
}

/// The trie. Construct with the column widths of the cube space it
/// indexes; every inserted or queried cube must have those columns.
#[derive(Debug)]
pub(crate) struct CubeTrie {
    widths: Vec<u32>,
    nodes: Vec<Node>,
}

impl CubeTrie {
    /// An empty trie over columns of the given bit widths.
    pub(crate) fn new(widths: &[u32]) -> CubeTrie {
        CubeTrie {
            widths: widths.to_vec(),
            nodes: vec![Node::new()],
        }
    }

    /// The trit string of `c` in walk order, truncated after the last
    /// non-wildcard bit.
    fn trits(&self, c: &Cube) -> Vec<u8> {
        debug_assert_eq!(c.0.len(), self.widths.len());
        let mut out = Vec::new();
        let mut last = 0usize;
        for (t, &w) in c.0.iter().zip(&self.widths) {
            for b in (0..w).rev() {
                let m = 1u64 << b;
                let trit = if t.mask & m == 0 {
                    2
                } else if t.bits & m != 0 {
                    1
                } else {
                    0
                };
                out.push(trit);
                if trit != 2 {
                    last = out.len();
                }
            }
        }
        out.truncate(last);
        out
    }

    /// Insert `c` under the identifier `slot`.
    pub(crate) fn insert(&mut self, c: &Cube, slot: u32) {
        let path = self.trits(c);
        let mut n = 0usize;
        for &trit in &path {
            let k = trit as usize;
            if self.nodes[n].kids[k] == NONE {
                let id = self.nodes.len() as u32;
                self.nodes.push(Node::new());
                self.nodes[n].kids[k] = id;
            }
            n = self.nodes[n].kids[k] as usize;
        }
        self.nodes[n].slots.push(slot);
    }

    /// Remove the cube previously inserted as `slot` (must pass the same
    /// cube). Nodes are never pruned — see the module doc.
    pub(crate) fn remove(&mut self, c: &Cube, slot: u32) {
        let path = self.trits(c);
        let mut n = 0usize;
        for &trit in &path {
            let next = self.nodes[n].kids[trit as usize];
            debug_assert_ne!(next, NONE, "removing a cube that was never inserted");
            n = next as usize;
        }
        let slots = &mut self.nodes[n].slots;
        let i = slots
            .iter()
            .position(|&s| s == slot)
            .expect("removing a slot that was never inserted");
        slots.swap_remove(i);
    }

    /// Append every stored slot whose cube intersects `q` to `out`, then
    /// sort ascending (the caller's iteration order must not depend on
    /// trie internals). Exact: per-bit compatibility along the walk is the
    /// cube intersection test.
    pub(crate) fn query_into(&self, q: &Cube, out: &mut Vec<u32>) {
        let path = self.trits(q);
        let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
        while let Some((n, depth)) = stack.pop() {
            let node = &self.nodes[n];
            out.extend_from_slice(&node.slots);
            // Past the query's truncated path every query bit is `*`.
            let trit = path.get(depth).copied().unwrap_or(2);
            let visit: &[usize] = match trit {
                0 => &[0, 2],
                1 => &[1, 2],
                _ => &[0, 1, 2],
            };
            for &k in visit {
                if node.kids[k] != NONE {
                    stack.push((node.kids[k] as usize, depth + 1));
                }
            }
        }
        out.sort_unstable();
    }

    /// Nodes allocated (diagnostics only).
    #[cfg(test)]
    fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::Tern;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    fn rnd_cube(rng: &mut SmallRng, widths: &[u32]) -> Cube {
        Cube(
            widths
                .iter()
                .map(|&w| {
                    let full = (1u64 << w) - 1;
                    let mask = rng.gen_range(0..=full);
                    Tern {
                        bits: rng.gen_range(0..=full) & mask,
                        mask,
                    }
                })
                .collect(),
        )
    }

    /// Randomized oracle: query results must equal a linear intersection
    /// scan, for point-like and wildcard-heavy cubes alike.
    #[test]
    fn query_matches_linear_scan() {
        let widths = [5u32, 3, 6];
        let mut rng = SmallRng::seed_from_u64(2019);
        for _round in 0..50 {
            let stored: Vec<Cube> = (0..60).map(|_| rnd_cube(&mut rng, &widths)).collect();
            let mut trie = CubeTrie::new(&widths);
            for (i, c) in stored.iter().enumerate() {
                trie.insert(c, i as u32);
            }
            for _q in 0..20 {
                let q = rnd_cube(&mut rng, &widths);
                let mut got = Vec::new();
                trie.query_into(&q, &mut got);
                let want: Vec<u32> = stored
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| c.intersects(&q))
                    .map(|(i, _)| i as u32)
                    .collect();
                assert_eq!(got, want, "query {q:?}");
            }
        }
    }

    #[test]
    fn remove_unlinks_exactly_one_slot() {
        let widths = [4u32];
        let mut rng = SmallRng::seed_from_u64(7);
        let stored: Vec<Cube> = (0..40).map(|_| rnd_cube(&mut rng, &widths)).collect();
        let mut trie = CubeTrie::new(&widths);
        for (i, c) in stored.iter().enumerate() {
            trie.insert(c, i as u32);
        }
        // Remove the even slots; queries must only see the odd ones.
        for (i, c) in stored.iter().enumerate() {
            if i % 2 == 0 {
                trie.remove(c, i as u32);
            }
        }
        let universe = Cube::any(1);
        let mut got = Vec::new();
        trie.query_into(&universe, &mut got);
        let want: Vec<u32> = (0..stored.len() as u32).filter(|i| i % 2 == 1).collect();
        assert_eq!(got, want);
    }

    /// Wildcard-tail truncation keeps the trie small: a cube exact only in
    /// its first bit allocates one node path of length 1, not `width`.
    #[test]
    fn wildcard_tails_are_truncated() {
        let widths = [16u32];
        let mut trie = CubeTrie::new(&widths);
        let c = Cube(vec![Tern {
            bits: 1 << 15,
            mask: 1 << 15,
        }]);
        trie.insert(&c, 0);
        assert_eq!(trie.node_count(), 2, "root + one path node");
        let all_star = Cube::any(1);
        trie.insert(&all_star, 1);
        assert_eq!(trie.node_count(), 2, "all-star cube lives at the root");
        let mut got = Vec::new();
        trie.query_into(
            &Cube(vec![Tern {
                bits: 0,
                mask: 1 << 15,
            }]),
            &mut got,
        );
        assert_eq!(got, vec![1], "exact-msb cube filtered, all-star kept");
    }
}
