//! Compiling a pipeline into its canonical *behavior cover*.
//!
//! A behavior cover is an ordered set of pairwise disjoint ternary cubes
//! over the program's free header fields — the *atoms* (forwarding
//! equivalence classes) — each mapped to the one concrete observable
//! behavior every packet in the atom experiences. Equivalence of two
//! pipelines then costs one behavior comparison per non-empty atom
//! intersection instead of one evaluation per packet.
//!
//! The compiler runs the pipeline *symbolically*: a state is an input
//! cube plus the concrete values of every field the program has written
//! so far (metadata starts at zero, `SetField` writes are always concrete
//! integers, so written fields never become symbolic). At each table the
//! incoming cube is split against the table's priority-resolved entry
//! partition — which-entry-fires depends only on the input atom — and
//! each piece continues at its successor table until the run terminates,
//! yielding an atom. Every branch a packet could take is explored, every
//! split is a partition, and the leaf cubes therefore tile the input
//! space exactly: soundness and completeness are inherited from the cube
//! algebra, not from enumeration.
//!
//! The priority resolution of one table — per entry, the disjoint region
//! it wins after all higher-priority entries took theirs, plus the miss
//! region — is independent of the incoming state, so it is computed once
//! per distinct table *content* and cached process-wide keyed by a
//! structural digest of the match columns (widths + canonical ternary
//! rows; actions are irrelevant to the partition). Churn/re-check
//! workloads that modify actions or re-verify the same tables pay the
//! subtraction fan-out once (`sym.cache.hits` / `sym.cache.misses`).

use crate::cube::{Cube, Tern};
use crate::trie::CubeTrie;
use mapro_core::{ActionSem, AttrId, AttrKind, MissPolicy, Packet, Pipeline, Value};
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex, OnceLock};

/// The joint ternary coordinate system: every header `Field` attribute
/// matched by any of the compared pipelines, sorted by attribute id (the
/// same order `Domain::from_pipelines` derives, so counterexample field
/// listings stay byte-compatible).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldSpace {
    /// `(attribute, width)` per cube column.
    pub coords: Vec<(AttrId, u32)>,
}

impl FieldSpace {
    /// Derive the joint space of several pipelines.
    pub fn from_pipelines(pipelines: &[&Pipeline]) -> FieldSpace {
        let mut coords: Vec<(AttrId, u32)> = Vec::new();
        for p in pipelines {
            for t in &p.tables {
                for &attr in &t.match_attrs {
                    let a = p.catalog.attr(attr);
                    if matches!(a.kind, AttrKind::Field)
                        && !coords.iter().any(|&(id, _)| id == attr)
                    {
                        coords.push((attr, a.width));
                    }
                }
            }
        }
        coords.sort_unstable_by_key(|&(id, _)| id);
        FieldSpace { coords }
    }

    /// Column index of an attribute, if it participates.
    #[inline]
    pub fn coord_of(&self, attr: AttrId) -> Option<usize> {
        self.coords.iter().position(|&(id, _)| id == attr)
    }

    /// The all-wildcard cube over this space.
    pub fn universe(&self) -> Cube {
        Cube::any(self.coords.len())
    }

    /// The concrete coordinate point of a packet: its value in every
    /// space column, in column order. This is the megaflow-cache key —
    /// [`Cube::contains`] on an atom cube tests exactly "would this
    /// packet land in that atom".
    pub fn key_of(&self, pkt: &Packet) -> Vec<u64> {
        self.coords.iter().map(|&(a, _)| pkt.get(a)).collect()
    }

    /// Like [`FieldSpace::key_of`] but reusing `buf` (cleared first) so
    /// per-packet key extraction on the datapath fast path allocates
    /// nothing.
    #[inline]
    pub fn key_into(&self, pkt: &Packet, buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend(self.coords.iter().map(|&(a, _)| pkt.get(a)));
    }
}

/// The concrete observable behavior of one atom — the symbolic mirror of
/// `Verdict::observable()`. Construction normalizes a drop (not punted to
/// the controller) to the absorbing [`Behavior::Dropped`], discarding any
/// effects accumulated before the miss, exactly as the evaluator does.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Behavior {
    /// The packet was discarded; nothing is externally visible.
    Dropped,
    /// The packet left the switch with these effects applied.
    Delivered {
        /// Output port, if any (last write wins).
        output: Option<Arc<str>>,
        /// Whether the packet was punted to the controller.
        to_controller: bool,
        /// Final values of modified header fields, sorted by attribute id.
        header_mods: Vec<(AttrId, u64)>,
        /// Opaque actions applied (sorted multiset).
        opaque: Vec<(String, Value)>,
    },
}

/// One forwarding equivalence class: an input cube and the behavior every
/// packet in it experiences.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Input constraint over the [`FieldSpace`] coordinates.
    pub cube: Cube,
    /// The concrete behavior of all packets in `cube`.
    pub behavior: Behavior,
}

/// A pipeline compiled to disjoint atoms tiling the whole input space.
///
/// Atom order is the deterministic depth-first branch order of the
/// symbolic run (table entries in priority order, then the miss region),
/// identical at any thread count.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BehaviorCover {
    /// The coordinate system the atoms' cubes live in.
    pub space: FieldSpace,
    /// The atoms, pairwise disjoint, union = universe.
    pub atoms: Vec<Atom>,
}

impl BehaviorCover {
    /// Index of the (unique, by the partition invariant) atom containing
    /// the coordinate point `key`. `None` only if `key` has the wrong
    /// arity for the space — a well-formed key always lands in exactly
    /// one atom because the atoms tile the universe.
    pub fn atom_of(&self, key: &[u64]) -> Option<usize> {
        if key.len() != self.space.coords.len() {
            return None;
        }
        self.atoms.iter().position(|a| a.cube.contains(key))
    }
}

/// Every attribute some reachable-or-not action column of `p` may write:
/// the `SetField` targets of action attributes used by any table. These
/// are the *unstable* coordinates for flow-mod invalidation — a cached
/// verdict keyed on the input packet cannot be constrained on them,
/// because the value a table sees may differ from the input value.
pub fn written_attrs(p: &Pipeline) -> Vec<AttrId> {
    let mut out: Vec<AttrId> = Vec::new();
    for t in &p.tables {
        for &a in &t.action_attrs {
            if let AttrKind::Action(ActionSem::SetField(target)) = p.catalog.attr(a).kind {
                if !out.contains(&target) {
                    out.push(target);
                }
            }
        }
    }
    out.sort_unstable();
    out
}

/// The input-space region a flow-mod against `(table, matches)` can
/// affect, as a cube over `space` — the megaflow invalidation key.
///
/// A cached verdict must be dropped iff its atom cube intersects this
/// cube. The cube constrains only the *stable* columns of the entry's
/// match row: match attributes that are space coordinates and are never
/// a `SetField` target anywhere in the pipeline ([`written_attrs`]). For
/// those, the value the table compares is the input value, so any packet
/// whose path can reach the entry carries an input key inside the cube.
/// Unstable or non-space match columns are left wildcard (conservative:
/// the rewritten value a table sees is not a function of the input
/// coordinate, so no input constraint is sound).
///
/// Returns `None` when the flow-mod cannot change any packet's behavior:
/// the entry's match row is unsatisfiable (a symbolic match cell) or the
/// table does not exist in `p`.
pub fn invalidation_cube(
    p: &Pipeline,
    space: &FieldSpace,
    table: &str,
    matches: &[Value],
) -> Option<Cube> {
    let t = p.tables.iter().find(|t| t.name == table)?;
    debug_assert_eq!(matches.len(), t.match_attrs.len());
    let written = written_attrs(p);
    let mut cube = space.universe();
    for (cell, &attr) in matches.iter().zip(&t.match_attrs) {
        let w = p.catalog.attr(attr).width;
        // An unsatisfiable cell means the entry matches no packet at all:
        // inserting/deleting it is behavior-invisible.
        let (bits, mask) = cell.as_ternary(w)?;
        if written.contains(&attr) {
            continue;
        }
        let Some(k) = space.coord_of(attr) else {
            continue;
        };
        cube.0[k] = cube.0[k].intersect(Tern { bits, mask })?;
    }
    Some(cube)
}

/// Which representation carries a behavior cover.
///
/// * `Cube` — flat disjoint ternary cube lists (the original engine):
///   cheap at small widths, but subtraction splits cubes recursively and
///   cross-intersection is quadratic in atoms.
/// * `Dd` — hash-consed decision diagrams (`mapro-dd`): one canonical
///   MTBDD per pipeline, equivalence is root-pointer equality, negation
///   and subtraction never fragment. Complete — no budget-shaped
///   "unknown" answers.
/// * `Auto` — cube first (it wins at small widths), retrying with the DD
///   backend when a cube budget blows, and going straight to DDs when the
///   joint match space is wide enough that cube lists predictably explode
///   (see `check::AUTO_DD_BITS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoverBackend {
    /// Flat ternary-cube atom lists.
    Cube,
    /// Hash-consed BDD/MTBDD covers.
    Dd,
    /// Cube first, DD when cubes blow up or the space is wide.
    #[default]
    Auto,
}

impl CoverBackend {
    /// Parse a CLI argument (`cube`, `dd`, `auto`).
    pub fn parse(s: &str) -> Option<CoverBackend> {
        match s {
            "cube" => Some(CoverBackend::Cube),
            "dd" => Some(CoverBackend::Dd),
            "auto" => Some(CoverBackend::Auto),
            _ => None,
        }
    }
}

/// Budgets for the symbolic compiler. Exhaustion is reported as
/// [`Unsupported`], which `Auto` mode turns into an enumerative fallback —
/// never a wrong answer.
#[derive(Debug, Clone)]
pub struct SymConfig {
    /// Maximum number of atoms one compilation may produce.
    pub max_atoms: usize,
    /// Maximum number of live cubes while partitioning one table.
    pub partition_budget: usize,
    /// Which cover representation to use (default [`CoverBackend::Auto`]).
    pub backend: CoverBackend,
    /// Maximum interior nodes in one DD manager (DD backend only).
    pub max_nodes: usize,
}

impl Default for SymConfig {
    fn default() -> Self {
        SymConfig {
            max_atoms: 1 << 20,
            partition_budget: 1 << 20,
            backend: CoverBackend::default(),
            max_nodes: mapro_dd::Mgr::DEFAULT_MAX_NODES,
        }
    }
}

/// A construct the cube compiler cannot express (or a blown budget).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unsupported {
    /// A symbolic path revisited tables beyond the evaluator's own visit
    /// budget; the concrete evaluator would error identically, and error
    /// *ordering* across the domain is the enumerative engine's business.
    GotoCycle {
        /// The visit budget that was exceeded.
        limit: usize,
    },
    /// A reachable `Goto`/`next`/`Fall` named a table that does not exist.
    UnknownTable(String),
    /// A reachable action cell held a malformed parameter.
    BadActionParam {
        /// Offending table name.
        table: String,
        /// Offending action attribute name.
        attr: String,
    },
    /// The compilation exceeded [`SymConfig::max_atoms`].
    AtomBudget,
    /// A table partition exceeded [`SymConfig::partition_budget`].
    PartitionBudget,
    /// The DD backend exceeded [`SymConfig::max_nodes`].
    NodeBudget,
}

impl std::fmt::Display for Unsupported {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unsupported::GotoCycle { limit } => {
                write!(
                    f,
                    "a symbolic path exceeds {limit} table visits (goto cycle?)"
                )
            }
            Unsupported::UnknownTable(t) => {
                write!(f, "a reachable jump targets unknown table {t:?}")
            }
            Unsupported::BadActionParam { table, attr } => {
                write!(
                    f,
                    "table {table:?}: malformed parameter for action {attr:?}"
                )
            }
            Unsupported::AtomBudget => write!(f, "atom budget exhausted"),
            Unsupported::PartitionBudget => write!(f, "table partition budget exhausted"),
            Unsupported::NodeBudget => write!(f, "decision-diagram node budget exhausted"),
        }
    }
}

impl Unsupported {
    /// Stable snake_case cause label, used as the `sym.fallback.<cause>`
    /// counter suffix and in `mapro check` fallback notes.
    pub fn label(&self) -> &'static str {
        match self {
            Unsupported::GotoCycle { .. } => "goto_cycle",
            Unsupported::UnknownTable(_) => "unknown_table",
            Unsupported::BadActionParam { .. } => "bad_action_param",
            Unsupported::AtomBudget => "atom_budget",
            Unsupported::PartitionBudget => "partition_budget",
            Unsupported::NodeBudget => "node_budget",
        }
    }
}

impl std::error::Error for Unsupported {}

/// A table's priority-resolved match partition over its own columns:
/// per entry the disjoint region it wins, plus the miss region. State
/// independent, hence cacheable by table content.
#[derive(Debug)]
pub(crate) struct TablePartition {
    /// Per entry: `None` if unsatisfiable (a symbolic match cell), else
    /// the disjoint cubes of `entry ∖ (earlier entries)`.
    regions: Vec<Option<Vec<Cube>>>,
    /// `universe ∖ (all entries)` — the packets that miss.
    miss: Vec<Cube>,
    /// Total piece count (regions + miss) — the indexing heuristic's
    /// input, precomputed so `step` never rescans the region lists.
    pieces: usize,
    /// Lazily-built piece trie for restricted compiles (see
    /// [`Compiler::step`]); full compiles never touch it.
    index: OnceLock<PieceIndex>,
}

/// Where a flat piece id points inside a [`TablePartition`].
#[derive(Debug, Clone, Copy)]
enum PieceLoc {
    /// Piece `pi` of entry `ei`'s win region.
    Entry { ei: u32, pi: u32 },
    /// Piece `pi` of the miss region.
    Miss { pi: u32 },
}

/// The piece trie plus the flat-id → location map, in deterministic
/// construction order (entries by priority, pieces in order, miss last) —
/// the same order the linear scan visits, so an indexed `step` produces
/// byte-identical successor lists.
#[derive(Debug)]
struct PieceIndex {
    trie: CubeTrie,
    locs: Vec<PieceLoc>,
}

impl TablePartition {
    /// Build the piece index now if `step` would ever want it (no-op for
    /// small partitions) — lets a session pay the one-off trie
    /// construction at build time instead of inside its first µs-budget
    /// proof.
    pub(crate) fn warm_index(&self, widths: &[u32]) {
        if self.pieces >= PIECE_INDEX_MIN {
            let _ = self.piece_index(widths);
        }
    }

    fn piece_index(&self, widths: &[u32]) -> &PieceIndex {
        self.index.get_or_init(|| {
            let mut trie = CubeTrie::new(widths);
            let mut locs = Vec::with_capacity(self.pieces);
            for (ei, region) in self.regions.iter().enumerate() {
                let Some(region) = region else { continue };
                for (pi, piece) in region.iter().enumerate() {
                    trie.insert(piece, locs.len() as u32);
                    locs.push(PieceLoc::Entry {
                        ei: ei as u32,
                        pi: pi as u32,
                    });
                }
            }
            for (pi, piece) in self.miss.iter().enumerate() {
                trie.insert(piece, locs.len() as u32);
                locs.push(PieceLoc::Miss { pi: pi as u32 });
            }
            PieceIndex { trie, locs }
        })
    }
}

/// One slot of the partition cache: the partition plus its second-chance
/// reference bit.
struct CacheSlot {
    part: Arc<TablePartition>,
    /// Set on every hit, cleared (once) by the eviction hand before the
    /// slot becomes an eviction candidate again.
    referenced: bool,
}

/// A bounded partition cache with second-chance (CLOCK) eviction. A full
/// cache evicts the first entry the hand finds whose reference bit is
/// clear — entries re-touched since the hand last passed survive — so a
/// long churn run keeps the partitions of its unchanged tables warm
/// instead of periodically re-paying every subtraction fan-out (the old
/// policy cleared the whole map on overflow, flushing the hot working set
/// along with the cold tail).
struct PartCache {
    map: HashMap<Vec<u8>, CacheSlot>,
    /// The CLOCK hand order: keys in insertion order, front inspected
    /// first on eviction.
    clock: VecDeque<Vec<u8>>,
    cap: usize,
    /// Hits/lookups since construction, for hit-rate assertions in tests
    /// (the process-wide `sym.cache.{hits,misses}` counters aggregate
    /// across concurrently running tests and cannot be asserted on).
    hits: u64,
    lookups: u64,
}

impl PartCache {
    fn new(cap: usize) -> PartCache {
        PartCache {
            map: HashMap::new(),
            clock: VecDeque::new(),
            cap: cap.max(1),
            hits: 0,
            lookups: 0,
        }
    }

    fn get(&mut self, key: &[u8]) -> Option<Arc<TablePartition>> {
        self.lookups += 1;
        let slot = self.map.get_mut(key)?;
        slot.referenced = true;
        self.hits += 1;
        Some(Arc::clone(&slot.part))
    }

    fn insert(&mut self, key: Vec<u8>, part: Arc<TablePartition>) {
        if let Some(slot) = self.map.get_mut(&key) {
            // Two threads compiled the same content concurrently; keep the
            // newer Arc, no second clock entry.
            slot.part = part;
            return;
        }
        while self.map.len() >= self.cap {
            let Some(k) = self.clock.pop_front() else {
                break;
            };
            match self.map.get_mut(&k) {
                Some(slot) if slot.referenced => {
                    slot.referenced = false;
                    self.clock.push_back(k);
                }
                Some(_) => {
                    self.map.remove(&k);
                }
                None => {} // stale hand entry from a raced insert
            }
        }
        self.clock.push_back(key.clone());
        self.map.insert(
            key,
            CacheSlot {
                part,
                referenced: false,
            },
        );
    }

    #[cfg(test)]
    fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Process-wide partition cache. Bounded by second-chance eviction
/// ([`PartCache`]); correctness never depends on a hit.
static PART_CACHE: OnceLock<Mutex<PartCache>> = OnceLock::new();
const PART_CACHE_CAP: usize = 512;

/// Structural digest key of a table's match side: column widths plus each
/// row's canonical ternary form. Actions are excluded on purpose — they
/// cannot change which entry wins a packet.
fn partition_key(widths: &[u32], rows: &[Option<Cube>]) -> Vec<u8> {
    let mut key = Vec::with_capacity(8 + rows.len() * (1 + widths.len() * 16));
    key.extend_from_slice(&(widths.len() as u32).to_le_bytes());
    for &w in widths {
        key.extend_from_slice(&w.to_le_bytes());
    }
    key.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        match row {
            None => key.push(0),
            Some(c) => {
                key.push(1);
                for t in &c.0 {
                    key.extend_from_slice(&t.bits.to_le_bytes());
                    key.extend_from_slice(&t.mask.to_le_bytes());
                }
            }
        }
    }
    key
}

/// Build (or fetch) the partition for one table's canonical rows.
fn table_partition(
    widths: &[u32],
    rows: Vec<Option<Cube>>,
    cfg: &SymConfig,
) -> Result<Arc<TablePartition>, Unsupported> {
    // One span per call whether the digest cache hits or misses, so the
    // logical span tree is independent of cache warmth (and therefore of
    // thread count and prior runs); the outcome is a field instead.
    let mut span = mapro_obs::trace::span_kv("partition", vec![("rows", rows.len().into())]);
    let key = partition_key(widths, &rows);
    let cache = PART_CACHE.get_or_init(|| Mutex::new(PartCache::new(PART_CACHE_CAP)));
    if let Some(hit) = cache.lock().expect("partition cache lock").get(&key) {
        mapro_obs::counter!("sym.cache.hits").inc();
        span.set("cache_hit", true);
        return Ok(hit);
    }
    mapro_obs::counter!("sym.cache.misses").inc();
    span.set("cache_hit", false);

    let ncols = widths.len();
    let mut remaining = vec![Cube::any(ncols)];
    // Double-buffered scratch: each row's residues accumulate into `next`
    // via `subtract_into`, then the buffers swap — no per-split Vec churn.
    let mut next: Vec<Cube> = Vec::new();
    let mut regions = Vec::with_capacity(rows.len());
    for row in &rows {
        let Some(ec) = row else {
            regions.push(None);
            continue;
        };
        let hits: Vec<Cube> = remaining.iter().filter_map(|r| r.intersect(ec)).collect();
        // `remaining` partitions `universe ∖ (earlier entries)`, so the
        // subtraction only ever splits the pieces `ec` overlaps.
        next.clear();
        for r in &remaining {
            r.subtract_into(ec, &mut next);
        }
        std::mem::swap(&mut remaining, &mut next);
        if remaining.len() > cfg.partition_budget {
            return Err(Unsupported::PartitionBudget);
        }
        regions.push(Some(hits));
    }
    let pieces = regions.iter().flatten().map(|r| r.len()).sum::<usize>() + remaining.len();
    let part = Arc::new(TablePartition {
        regions,
        miss: remaining,
        pieces,
        index: OnceLock::new(),
    });
    cache
        .lock()
        .expect("partition cache lock")
        .insert(key, Arc::clone(&part));
    Ok(part)
}

/// The backend-independent half of a symbolic execution state: everything
/// except the input constraint (a [`Cube`] for the cube compiler, a BDD
/// for the DD compiler in [`crate::ddcover`]). Both compilers share this
/// struct — and [`apply_actions`] / [`delivered`] below — so action
/// semantics cannot drift between backends.
#[derive(Clone)]
pub(crate) struct SymCore {
    /// Concrete current value per catalog attribute: metadata starts at
    /// `Some(0)`, header fields at `None` (free input) until written.
    pub(crate) vals: Vec<Option<u64>>,
    /// `SetField` targets in first-write order (mirrors the evaluator).
    pub(crate) touched: Vec<AttrId>,
    /// Last `Output` parameter, if any.
    pub(crate) output: Option<Arc<str>>,
    /// Opaque actions accumulated so far.
    pub(crate) opaque: Vec<(String, Value)>,
    /// Table visits so far (the evaluator's goto-cycle budget).
    pub(crate) steps: usize,
}

impl SymCore {
    /// The state at pipeline entry: metadata zero, header fields free.
    pub(crate) fn initial(p: &Pipeline) -> SymCore {
        let vals = (0..p.catalog.len())
            .map(|i| match p.catalog.attr(AttrId(i as u32)).kind {
                AttrKind::Meta => Some(0),
                _ => None,
            })
            .collect();
        SymCore {
            vals,
            touched: Vec::new(),
            output: None,
            opaque: Vec::new(),
            steps: 0,
        }
    }
}

/// Apply the actions of entry `ei` in table `ti` of `p` to `core`,
/// returning the `Goto` target if one fired. The one implementation of
/// action semantics both cover compilers run.
pub(crate) fn apply_actions<'p>(
    p: &'p Pipeline,
    ti: usize,
    ei: usize,
    core: &mut SymCore,
) -> Result<Option<&'p str>, Unsupported> {
    let t = &p.tables[ti];
    let mut goto: Option<&str> = None;
    for (col, &attr) in t.action_attrs.iter().enumerate() {
        let param = &t.entries[ei].actions[col];
        if matches!(param, Value::Any) {
            continue; // no-op slot
        }
        let a = p.catalog.attr(attr);
        let sem = match &a.kind {
            AttrKind::Action(s) => s,
            _ => unreachable!("action column with non-action attr"),
        };
        let bad = || Unsupported::BadActionParam {
            table: t.name.clone(),
            attr: a.name.clone(),
        };
        match sem {
            ActionSem::Output => match param {
                Value::Sym(port) => core.output = Some(port.clone()),
                _ => return Err(bad()),
            },
            ActionSem::Goto => match param {
                Value::Sym(target) => goto = Some(target.as_ref()),
                _ => return Err(bad()),
            },
            ActionSem::SetField(target) => match param {
                Value::Int(x) => {
                    core.vals[target.index()] = Some(*x);
                    if !core.touched.contains(target) {
                        core.touched.push(*target);
                    }
                }
                _ => return Err(bad()),
            },
            ActionSem::Opaque => {
                core.opaque.push((a.name.clone(), param.clone()));
            }
        }
    }
    Ok(goto)
}

/// The terminal `Delivered` behavior of a state (mirrors the verdict
/// projection: touched header fields sorted by id, opaque multiset
/// sorted). Shared by both cover compilers.
pub(crate) fn delivered(p: &Pipeline, core: &SymCore) -> Behavior {
    let mut mods: Vec<(AttrId, u64)> = core
        .touched
        .iter()
        .filter(|&&a| matches!(p.catalog.attr(a).kind, AttrKind::Field))
        .map(|&a| {
            (
                a,
                core.vals[a.index()].expect("touched fields are concrete"),
            )
        })
        .collect();
    mods.sort_unstable_by_key(|&(a, _)| a);
    let mut opaque = core.opaque.clone();
    opaque.sort();
    Behavior::Delivered {
        output: core.output.clone(),
        to_controller: false,
        header_mods: mods,
        opaque,
    }
}

/// The evaluator's table-visit budget for `p` (goto-cycle detection).
pub(crate) fn visit_limit(p: &Pipeline) -> usize {
    p.tables.len().saturating_mul(2) + 8
}

/// One in-flight symbolic execution state of the cube compiler.
#[derive(Clone)]
struct SymState {
    /// Constraint on the *input* packet, over the space coordinates.
    cube: Cube,
    /// The backend-independent rest of the state.
    core: SymCore,
}

/// Where a branch goes next: another table or a terminal behavior.
enum Next {
    Table(usize),
    Done(Behavior),
}

/// Build (or fetch from the digest cache) every table's partition, in
/// table order. The part of compiler construction worth caching across
/// calls: an incremental session reuses the returned `Arc`s for every
/// update that leaves the match side of its tables untouched, skipping
/// the per-call row canonicalization and digest probe entirely.
pub(crate) fn pipeline_parts(
    p: &Pipeline,
    cfg: &SymConfig,
) -> Result<Vec<Arc<TablePartition>>, Unsupported> {
    let mut parts = Vec::with_capacity(p.tables.len());
    for t in &p.tables {
        let widths: Vec<u32> = t
            .match_attrs
            .iter()
            .map(|&a| p.catalog.attr(a).width)
            .collect();
        let rows: Vec<Option<Cube>> = t
            .entries
            .iter()
            .map(|e| Cube::of(&e.matches, &widths))
            .collect();
        parts.push(table_partition(&widths, rows, cfg)?);
    }
    Ok(parts)
}

/// Piece count below which `step` always scans linearly — walking a trie
/// for a handful of pieces costs more than the scan.
const PIECE_INDEX_MIN: usize = 64;

/// Everything `expand` needs that is shared across branches.
struct Compiler<'a> {
    p: &'a Pipeline,
    space: &'a FieldSpace,
    index: HashMap<&'a str, usize>,
    parts: Vec<Arc<TablePartition>>,
    /// Per table, its match-column widths (the piece tries' coordinate
    /// system).
    widths: Vec<Vec<u32>>,
    limit: usize,
    cfg: &'a SymConfig,
}

impl<'a> Compiler<'a> {
    fn new(
        p: &'a Pipeline,
        space: &'a FieldSpace,
        cfg: &'a SymConfig,
    ) -> Result<Compiler<'a>, Unsupported> {
        Ok(Self::with_parts(p, space, cfg, pipeline_parts(p, cfg)?))
    }

    /// Construct around prebuilt partitions (see [`pipeline_parts`]) —
    /// everything left is cheap schema work.
    fn with_parts(
        p: &'a Pipeline,
        space: &'a FieldSpace,
        cfg: &'a SymConfig,
        parts: Vec<Arc<TablePartition>>,
    ) -> Compiler<'a> {
        let widths = p
            .tables
            .iter()
            .map(|t| {
                t.match_attrs
                    .iter()
                    .map(|&a| p.catalog.attr(a).width)
                    .collect()
            })
            .collect();
        Compiler {
            p,
            space,
            index: p.name_index(),
            parts,
            widths,
            limit: visit_limit(p),
            cfg,
        }
    }

    fn resolve(&self, name: &str) -> Result<usize, Unsupported> {
        self.index
            .get(name)
            .copied()
            .ok_or_else(|| Unsupported::UnknownTable(name.to_owned()))
    }

    fn initial_state(&self) -> SymState {
        SymState {
            cube: self.space.universe(),
            core: SymCore::initial(self.p),
        }
    }

    /// Specialize one partition cube to the current state: columns whose
    /// attribute has a known concrete value filter on it; the rest narrow
    /// the input cube. Returns the refined input cube, or `None` when this
    /// piece is unreachable under the current state.
    fn refine(&self, state: &SymState, attrs: &[AttrId], piece: &Cube) -> Option<Cube> {
        let mut cube = state.cube.clone();
        for (col, &attr) in attrs.iter().enumerate() {
            let t = piece.0[col];
            match state.core.vals[attr.index()] {
                Some(v) => {
                    if !t.matches(v) {
                        return None;
                    }
                }
                None => {
                    let k = self
                        .space
                        .coord_of(attr)
                        .expect("unwritten match attr is a space coordinate");
                    cube.0[k] = cube.0[k].intersect(t)?;
                }
            }
        }
        Some(cube)
    }

    /// One successor branch for piece `pi` of entry `ei`'s win region.
    fn step_entry(
        &self,
        state: &SymState,
        ti: usize,
        ei: usize,
        piece: &Cube,
        out: &mut Vec<(SymState, Next)>,
    ) -> Result<(), Unsupported> {
        let t = &self.p.tables[ti];
        let Some(cube) = self.refine(state, &t.match_attrs, piece) else {
            return Ok(());
        };
        let mut s = state.clone();
        s.cube = cube;
        s.core.steps += 1;
        if s.core.steps > self.limit {
            return Err(Unsupported::GotoCycle { limit: self.limit });
        }
        let goto = apply_actions(self.p, ti, ei, &mut s.core)?;
        let next = match goto {
            Some(g) => Next::Table(self.resolve(g)?),
            None => match &t.next {
                Some(n) => Next::Table(self.resolve(n)?),
                None => Next::Done(delivered(self.p, &s.core)),
            },
        };
        out.push((s, next));
        Ok(())
    }

    /// One successor branch for a miss-region piece.
    fn step_miss(
        &self,
        state: &SymState,
        ti: usize,
        piece: &Cube,
        out: &mut Vec<(SymState, Next)>,
    ) -> Result<(), Unsupported> {
        let t = &self.p.tables[ti];
        let Some(cube) = self.refine(state, &t.match_attrs, piece) else {
            return Ok(());
        };
        let mut s = state.clone();
        s.cube = cube;
        s.core.steps += 1;
        if s.core.steps > self.limit {
            return Err(Unsupported::GotoCycle { limit: self.limit });
        }
        let next = match &t.miss {
            MissPolicy::Drop => Next::Done(Behavior::Dropped),
            MissPolicy::Controller => {
                let mut b = delivered(self.p, &s.core);
                if let Behavior::Delivered { to_controller, .. } = &mut b {
                    *to_controller = true;
                }
                Next::Done(b)
            }
            MissPolicy::Fall(n) => Next::Table(self.resolve(n)?),
        };
        out.push((s, next));
        Ok(())
    }

    /// The current state's constraint over table `ti`'s own columns — the
    /// probe cube for the piece trie. Mirrors [`Compiler::refine`]: a
    /// column whose attribute has a concrete value probes exactly that
    /// value, the rest probe the input cube's coordinate.
    fn probe_cube(&self, state: &SymState, ti: usize) -> Cube {
        let t = &self.p.tables[ti];
        Cube(
            t.match_attrs
                .iter()
                .zip(&self.widths[ti])
                .map(|(&attr, &w)| {
                    let wm = if w >= 64 { u64::MAX } else { (1u64 << w) - 1 };
                    match state.core.vals[attr.index()] {
                        Some(v) => Tern::exact(v, wm),
                        None => {
                            let k = self
                                .space
                                .coord_of(attr)
                                .expect("unwritten match attr is a space coordinate");
                            state.cube.0[k]
                        }
                    }
                })
                .collect(),
        )
    }

    /// Run one table visit on `state`: split it against the table's
    /// partition and return every successor branch in deterministic order
    /// (entries by priority, partition cubes in construction order, miss
    /// region last).
    ///
    /// When the visit is constrained (some probe bit is exact) and the
    /// partition is large, candidate pieces come from the piece trie
    /// instead of a full scan — the trie's filter is exactly the per-piece
    /// compatibility test `refine` applies, and candidates are visited in
    /// flat construction order, so the successor list is byte-identical
    /// either way. Restricted compiles ([`compile_within`]) live on this
    /// path; a full compile's universe probe takes the linear one.
    fn step(&self, state: &SymState, ti: usize) -> Result<Vec<(SymState, Next)>, Unsupported> {
        let part = &self.parts[ti];
        let mut out = Vec::new();

        if part.pieces >= PIECE_INDEX_MIN {
            let probe = self.probe_cube(state, ti);
            if probe.0.iter().any(|t| t.mask != 0) {
                let idx = part.piece_index(&self.widths[ti]);
                let mut cand = Vec::new();
                idx.trie.query_into(&probe, &mut cand);
                for &slot in &cand {
                    match idx.locs[slot as usize] {
                        PieceLoc::Entry { ei, pi } => {
                            let region = part.regions[ei as usize]
                                .as_ref()
                                .expect("indexed piece of an unsatisfiable entry");
                            self.step_entry(
                                state,
                                ti,
                                ei as usize,
                                &region[pi as usize],
                                &mut out,
                            )?;
                        }
                        PieceLoc::Miss { pi } => {
                            self.step_miss(state, ti, &part.miss[pi as usize], &mut out)?;
                        }
                    }
                }
                return Ok(out);
            }
        }

        for (ei, region) in part.regions.iter().enumerate() {
            let Some(region) = region else { continue };
            for piece in region {
                self.step_entry(state, ti, ei, piece, &mut out)?;
            }
        }
        for piece in &part.miss {
            self.step_miss(state, ti, piece, &mut out)?;
        }
        Ok(out)
    }

    /// Depth-first expansion of one branch to its atoms.
    fn expand(&self, state: SymState, ti: usize, out: &mut Vec<Atom>) -> Result<(), Unsupported> {
        for (s, next) in self.step(&state, ti)? {
            match next {
                Next::Done(behavior) => {
                    out.push(Atom {
                        cube: s.cube,
                        behavior,
                    });
                    if out.len() > self.cfg.max_atoms {
                        return Err(Unsupported::AtomBudget);
                    }
                }
                Next::Table(t2) => self.expand(s, t2, out)?,
            }
        }
        Ok(())
    }
}

/// Compile `p` into its behavior cover over `space`.
///
/// The first-table branches fan out over the `mapro-par` pool; each branch
/// expands depth-first with the full atom budget and the per-branch atom
/// lists are concatenated in branch order, so the cover is byte-identical
/// at any thread count.
pub fn compile(
    p: &Pipeline,
    space: &FieldSpace,
    cfg: &SymConfig,
) -> Result<BehaviorCover, Unsupported> {
    let _t = mapro_obs::time!("sym.compile_ns");
    let mut span = mapro_obs::trace::span_kv("compile", vec![("tables", p.tables.len().into())]);
    let c = Compiler::new(p, space, cfg)?;
    let start = c.resolve(&p.start)?;
    let root_branches = c.step(&c.initial_state(), start)?;

    let mut atoms = Vec::new();
    if root_branches.len() >= 2 {
        let pool = mapro_par::Pool::current();
        let branches: Vec<(SymState, Next)> = root_branches;
        let results: Vec<Result<Vec<Atom>, Unsupported>> =
            pool.map_ordered(&branches, |bi, (s, next)| {
                let _b = mapro_obs::trace::span_kv("branch", vec![("branch", bi.into())]);
                let mut part = Vec::new();
                match next {
                    Next::Done(b) => part.push(Atom {
                        cube: s.cube.clone(),
                        behavior: b.clone(),
                    }),
                    Next::Table(ti) => c.expand(s.clone(), *ti, &mut part)?,
                }
                Ok(part)
            });
        for r in results {
            atoms.extend(r?);
        }
        if atoms.len() > cfg.max_atoms {
            return Err(Unsupported::AtomBudget);
        }
    } else {
        for (s, next) in root_branches {
            match next {
                Next::Done(b) => atoms.push(Atom {
                    cube: s.cube,
                    behavior: b,
                }),
                Next::Table(ti) => c.expand(s, ti, &mut atoms)?,
            }
        }
    }
    mapro_obs::counter!("sym.atoms").add(atoms.len() as u64);
    span.set("atoms", atoms.len());
    Ok(BehaviorCover {
        space: space.clone(),
        atoms,
    })
}

/// Compile `p` restricted to the input region `within`: the returned atoms
/// tile exactly `within` (by the partition invariant every refinement of
/// the initial cube stays inside it) rather than the whole universe.
///
/// This is the delta-recompile primitive behind [`crate::incremental`]:
/// after a flow-mod dirties a region, only that region needs fresh atoms —
/// untouched tables still hit the partition digest cache, so the cost
/// scales with the dirty region, not the pipeline. Runs single-threaded so
/// atom order is thread-count independent.
pub(crate) fn compile_within(
    p: &Pipeline,
    space: &FieldSpace,
    cfg: &SymConfig,
    within: Cube,
) -> Result<Vec<Atom>, Unsupported> {
    compile_within_parts(p, space, cfg, within, pipeline_parts(p, cfg)?)
}

/// [`compile_within`] around prebuilt table partitions — the incremental
/// session keeps each side's partitions alive across updates, so a delta
/// recompile skips even the digest-cache probe.
pub(crate) fn compile_within_parts(
    p: &Pipeline,
    space: &FieldSpace,
    cfg: &SymConfig,
    within: Cube,
    parts: Vec<Arc<TablePartition>>,
) -> Result<Vec<Atom>, Unsupported> {
    let c = Compiler::with_parts(p, space, cfg, parts);
    let start = c.resolve(&p.start)?;
    let state = SymState {
        cube: within,
        core: SymCore::initial(p),
    };
    let mut atoms = Vec::new();
    c.expand(state, start, &mut atoms)?;
    Ok(atoms)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::{Catalog, Packet, Table};

    fn single(c: Catalog, t: Table) -> Pipeline {
        Pipeline::single(c, t)
    }

    /// Enumerate every packet of the (small) field space and check the
    /// cover is a partition agreeing with concrete evaluation.
    fn assert_cover_exact(p: &Pipeline) {
        let space = FieldSpace::from_pipelines(&[p]);
        let cover = compile(p, &space, &SymConfig::default()).unwrap();
        let widths: Vec<u32> = space.coords.iter().map(|&(_, w)| w).collect();
        let total: u64 = widths.iter().map(|&w| 1u64 << w).product();
        assert!(total <= 1 << 16, "test space too large");
        let index = p.name_index();
        for mut n in 0..total {
            let mut pkt = Packet::zero(&p.catalog);
            let mut vals = Vec::new();
            for (k, &(attr, w)) in space.coords.iter().enumerate() {
                let v = n & ((1u64 << w) - 1);
                n >>= w;
                pkt.set(attr, v);
                vals.push((k, v));
            }
            let owners: Vec<&Atom> = cover
                .atoms
                .iter()
                .filter(|a| vals.iter().all(|&(k, v)| a.cube.0[k].matches(v)))
                .collect();
            assert_eq!(owners.len(), 1, "atoms must partition the space");
            let v = p.run_indexed(&pkt, &index).unwrap();
            let expect = match v.observable() {
                mapro_core::pipeline::Observable::Dropped => Behavior::Dropped,
                mapro_core::pipeline::Observable::Delivered {
                    output,
                    to_controller,
                    header_mods,
                    opaque,
                } => Behavior::Delivered {
                    output: output.map(Arc::from),
                    to_controller,
                    header_mods: header_mods.to_vec(),
                    opaque: opaque.to_vec(),
                },
            };
            assert_eq!(owners[0].behavior, expect, "packet {vals:?}");
        }
    }

    #[test]
    fn single_table_cover_matches_evaluator() {
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let g = c.field("g", 4);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f, g], vec![out]);
        t.row(vec![Value::Int(3), Value::Any], vec![Value::sym("a")]);
        t.row(
            vec![Value::prefix(0b1000, 1, 4), Value::Int(7)],
            vec![Value::sym("b")],
        );
        t.row(
            vec![
                Value::Ternary {
                    bits: 0b0101,
                    mask: 0b0101,
                },
                Value::Any,
            ],
            vec![Value::sym("c")],
        );
        assert_cover_exact(&single(c, t));
    }

    #[test]
    fn goto_metadata_cover_matches_evaluator() {
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let m = c.meta("m", 8);
        let set_m = c.action("set_m", ActionSem::SetField(m));
        let goto = c.action("goto", ActionSem::Goto);
        let out = c.action("out", ActionSem::Output);
        let mut t0 = Table::new("t0", vec![f], vec![set_m, goto]);
        t0.row(vec![Value::Int(1)], vec![Value::Int(10), Value::sym("t1")]);
        t0.row(vec![Value::Int(2)], vec![Value::Int(20), Value::sym("t1")]);
        let mut t1 = Table::new("t1", vec![m], vec![out]);
        t1.row(vec![Value::Int(10)], vec![Value::sym("p1")]);
        t1.row(vec![Value::Int(20)], vec![Value::sym("p2")]);
        let p = Pipeline::new(c, vec![t0, t1], "t0");
        assert_cover_exact(&p);
    }

    #[test]
    fn header_rewrite_then_rematch_covered() {
        // t0 rewrites header g, t1 matches g: the rewritten value is
        // concrete, so t1's branch decision must not constrain the input.
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let g = c.field("g", 4);
        let set_g = c.action("set_g", ActionSem::SetField(g));
        let out = c.action("out", ActionSem::Output);
        let mut t0 = Table::new("t0", vec![f], vec![set_g]);
        t0.row(vec![Value::Int(1)], vec![Value::Int(7)]);
        t0.next = Some("t1".into());
        let mut t1 = Table::new("t1", vec![g], vec![out]);
        t1.row(vec![Value::Int(7)], vec![Value::sym("rewritten")]);
        t1.row(vec![Value::Any], vec![Value::sym("passthrough")]);
        let p = Pipeline::new(c, vec![t0, t1], "t0");
        assert_cover_exact(&p);
    }

    #[test]
    fn controller_and_fall_miss_policies_covered() {
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let out = c.action("out", ActionSem::Output);
        let mut t0 = Table::new("t0", vec![f], vec![out]);
        t0.row(vec![Value::Int(1)], vec![Value::sym("a")]);
        t0.miss = MissPolicy::Fall("t1".into());
        let mut t1 = Table::new("t1", vec![f], vec![out]);
        t1.row(vec![Value::Int(2)], vec![Value::sym("b")]);
        t1.miss = MissPolicy::Controller;
        let p = Pipeline::new(c, vec![t0, t1], "t0");
        assert_cover_exact(&p);
    }

    #[test]
    fn goto_cycle_is_unsupported() {
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let goto = c.action("goto", ActionSem::Goto);
        let mut t0 = Table::new("t0", vec![f], vec![goto]);
        t0.row(vec![Value::Any], vec![Value::sym("t0")]);
        let p = single(c, t0);
        let space = FieldSpace::from_pipelines(&[&p]);
        assert!(matches!(
            compile(&p, &space, &SymConfig::default()),
            Err(Unsupported::GotoCycle { .. })
        ));
    }

    #[test]
    fn bad_action_param_is_unsupported() {
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f], vec![out]);
        t.row(vec![Value::Any], vec![Value::Int(3)]); // output wants a Sym
        let p = single(c, t);
        let space = FieldSpace::from_pipelines(&[&p]);
        assert!(matches!(
            compile(&p, &space, &SymConfig::default()),
            Err(Unsupported::BadActionParam { .. })
        ));
    }

    #[test]
    fn unreachable_bad_param_does_not_poison_compile() {
        // The malformed cell sits behind a shadowing entry; no packet can
        // reach it, and the compiler never visits unreachable branches.
        let mut c = Catalog::new();
        let f = c.field("f", 4);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f], vec![out]);
        t.row(vec![Value::Any], vec![Value::sym("a")]);
        t.row(vec![Value::Int(1)], vec![Value::Int(9)]); // shadowed
        let p = single(c, t);
        assert_cover_exact(&p);
    }

    #[test]
    fn partition_cache_hits_on_identical_content() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f], vec![out]);
        t.row(vec![Value::Int(200)], vec![Value::sym("cache-probe-a")]);
        t.row(vec![Value::Int(201)], vec![Value::sym("cache-probe-b")]);
        let p = single(c, t);
        let space = FieldSpace::from_pipelines(&[&p]);
        let a = compile(&p, &space, &SymConfig::default()).unwrap();
        // Change only an action: the match partition digest is unchanged.
        let mut p2 = p.clone();
        p2.table_mut("t").unwrap().entries[0].actions[0] = Value::sym("cache-probe-c");
        let b = compile(&p2, &space, &SymConfig::default()).unwrap();
        assert_eq!(a.atoms.len(), b.atoms.len());
        assert_eq!(a.atoms[0].cube, b.atoms[0].cube);
        assert_ne!(a.atoms[0].behavior, b.atoms[0].behavior);
    }

    #[test]
    fn part_cache_second_chance_keeps_hot_keys() {
        // The clear-on-full policy this replaced dropped *everything* at
        // capacity, so a key touched every iteration still missed right
        // after each wipe. Second-chance keeps the referenced bit set on
        // the hot key, so it survives an arbitrarily long churn of
        // one-shot keys and the overall hit rate stays high.
        let dummy = || {
            Arc::new(TablePartition {
                regions: vec![],
                miss: vec![],
                pieces: 0,
                index: OnceLock::new(),
            })
        };
        let cap = 8;
        let hot = b"hot".to_vec();
        let mut cache = PartCache::new(cap);
        cache.insert(hot.clone(), dummy());
        assert!(cache.get(&hot).is_some());
        // Churn far more distinct keys than the capacity; re-touch the hot
        // key between every insertion, the way a steadily-rechecked table
        // digest recurs between one-shot flow-mod digests.
        let churn = cap * 16;
        for i in 0..churn {
            cache.insert(format!("cold-{i}").into_bytes(), dummy());
            assert!(
                cache.get(&hot).is_some(),
                "hot key evicted after {i} cold inserts"
            );
        }
        assert!(cache.map.len() <= cap, "cache exceeded its capacity");
        // Hit rate: every lookup above was the hot key, and all hit. Under
        // clear-on-full the same access pattern misses once per wipe
        // (churn / cap times); second-chance must do strictly better than
        // that bound and in fact hits every time after the first insert.
        let wipe_policy_bound = 1.0 - 1.0 / cap as f64;
        assert!(
            cache.hit_rate() > wipe_policy_bound,
            "hit rate {} not better than clear-on-full bound {}",
            cache.hit_rate(),
            wipe_policy_bound
        );
        assert_eq!(cache.hits, cache.lookups, "hot key should never miss");
    }
}
