//! The shared ternary-cube algebra.
//!
//! One column of a cube is a canonical ternary predicate `(bits, mask)`
//! (see `Value::as_ternary`); a [`Cube`] conjoins one per column and
//! denotes a set of packets. The algebra provides exactly the operations
//! the symbolic layers need:
//!
//! * intersection — a cube (or empty), computed per column;
//! * subsumption — per-column mask containment;
//! * subtraction — `a ∖ b` as a list of *pairwise disjoint* cubes, by the
//!   classic recursive split along `b`'s care bits that `a` leaves free;
//! * union cover ([`covered_by`]) — the budgeted recursive check the
//!   shadowed-/dead-entry lints are built on;
//! * representative extraction — one concrete packet per cube, with every
//!   free bit pinned to zero, for byte-stable counterexample reporting.
//!
//! This module began life as `mapro_lint::cover` and was promoted here so
//! the behavior-cover compiler ([`crate::compile`]), the equivalence
//! front door ([`crate::check`]), and the linter share one implementation;
//! `mapro_lint::cover` now re-exports it.

use mapro_core::Value;

/// One column of a cube: matches `v` iff `v & mask == bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Tern {
    /// Cared-for bit values (always a subset of `mask`).
    pub bits: u64,
    /// Care mask, trimmed to the column width.
    pub mask: u64,
}

impl Tern {
    /// The wildcard column: matches every value.
    pub const ANY: Tern = Tern { bits: 0, mask: 0 };

    /// An exact-match column for a concrete value.
    #[inline]
    pub fn exact(v: u64, width_mask: u64) -> Tern {
        Tern {
            bits: v & width_mask,
            mask: width_mask,
        }
    }

    /// Does this column predicate match the concrete value `v`?
    #[inline]
    pub fn matches(self, v: u64) -> bool {
        (v ^ self.bits) & self.mask == 0
    }

    /// Per-column intersection; `None` when the two disagree on a shared
    /// care bit (empty intersection).
    #[inline]
    pub fn intersect(self, other: Tern) -> Option<Tern> {
        if (self.bits ^ other.bits) & self.mask & other.mask != 0 {
            return None;
        }
        Some(Tern {
            bits: self.bits | (other.bits & !self.mask),
            mask: self.mask | other.mask,
        })
    }
}

/// A conjunction of per-column ternary predicates — the packet set of one
/// entry. `None` cells (symbolic "predicates", which match nothing) make
/// the whole cube unsatisfiable; such entries are reported separately and
/// never enter the cover computation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Cube(pub Vec<Tern>);

impl Cube {
    /// Build from an entry's match cells; `None` when any cell is
    /// unsatisfiable (a symbolic value in a match column).
    pub fn of(matches: &[Value], widths: &[u32]) -> Option<Cube> {
        debug_assert_eq!(matches.len(), widths.len());
        matches
            .iter()
            .zip(widths)
            .map(|(v, &w)| v.as_ternary(w).map(|(bits, mask)| Tern { bits, mask }))
            .collect::<Option<Vec<_>>>()
            .map(Cube)
    }

    /// The all-wildcard cube over `n` columns (the universe).
    pub fn any(n: usize) -> Cube {
        Cube(vec![Tern::ANY; n])
    }

    /// Does every packet in `other` also lie in `self`?
    pub fn subsumes(&self, other: &Cube) -> bool {
        self.0
            .iter()
            .zip(&other.0)
            .all(|(a, b)| a.mask & b.mask == a.mask && (a.bits ^ b.bits) & a.mask == 0)
    }

    /// Do the two cubes share a packet? (Per-column ternary overlap.)
    pub fn intersects(&self, other: &Cube) -> bool {
        self.0
            .iter()
            .zip(&other.0)
            .all(|(a, b)| (a.bits ^ b.bits) & a.mask & b.mask == 0)
    }

    /// Cube intersection; `None` when empty.
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.0.len(), other.0.len());
        self.0
            .iter()
            .zip(&other.0)
            .map(|(&a, &b)| a.intersect(b))
            .collect::<Option<Vec<_>>>()
            .map(Cube)
    }

    /// `self ∖ other` as pairwise disjoint cubes whose union is exactly
    /// the difference.
    ///
    /// One residue cube per care bit of `other` that `self` leaves free:
    /// the cube for bit `k` pins previously processed bits to agree with
    /// `other` and bit `k` to differ — the same split [`covered_by`] uses,
    /// materialized instead of recursed on. At most `64 × columns` cubes.
    pub fn subtract(&self, other: &Cube) -> Vec<Cube> {
        let mut out = Vec::new();
        self.subtract_into(other, &mut out);
        out
    }

    /// [`Cube::subtract`] appending into a caller-owned buffer, reserving
    /// the exact residue count up front (one cube per care bit of `other`
    /// that `self` leaves free). Hot loops — the table-partition sweep —
    /// reuse one scratch `Vec` across the whole entry list instead of
    /// allocating a fresh result per split.
    pub fn subtract_into(&self, other: &Cube, out: &mut Vec<Cube>) {
        if !self.intersects(other) {
            out.push(self.clone());
            return;
        }
        if other.subsumes(self) {
            return;
        }
        let residues: u32 = self
            .0
            .iter()
            .zip(&other.0)
            .map(|(a, b)| (b.mask & !a.mask).count_ones())
            .sum();
        out.reserve(residues as usize);
        let before = out.len();
        let mut pinned = self.clone();
        for col in 0..self.0.len() {
            let free = other.0[col].mask & !self.0[col].mask;
            let mut rest = free;
            while rest != 0 {
                let k = rest & rest.wrapping_neg(); // lowest set bit
                rest &= rest - 1;
                let mut sub = pinned.clone();
                sub.0[col].mask |= k;
                sub.0[col].bits = (sub.0[col].bits & !k) | (!other.0[col].bits & k);
                out.push(sub);
                pinned.0[col].mask |= k;
                pinned.0[col].bits = (pinned.0[col].bits & !k) | (other.0[col].bits & k);
            }
        }
        debug_assert!(
            out.len() > before,
            "non-subsumed intersection leaves residue"
        );
    }

    /// One concrete member per column: the cared bits, with every free bit
    /// zero. Deterministic, so counterexample packets are byte-stable.
    pub fn representative(&self) -> Vec<u64> {
        self.0.iter().map(|t| t.bits).collect()
    }

    /// Does the concrete point `key` (one value per column) lie in this
    /// cube? This is the megaflow-cache membership test: a packet's field
    /// key is checked against the atom cubes of a behavior cover.
    #[inline]
    pub fn contains(&self, key: &[u64]) -> bool {
        debug_assert_eq!(self.0.len(), key.len());
        self.0.iter().zip(key).all(|(t, &v)| t.matches(v))
    }
}

/// Is `cube` entirely covered by the union of `cover`?
///
/// Exact when it answers: `Some(true)` / `Some(false)` are proofs. `None`
/// means the recursive split exceeded `budget` steps and the question is
/// left open (callers must treat it as "not covered" to stay sound).
pub fn covered_by(cube: &Cube, cover: &[&Cube], budget: &mut usize) -> Option<bool> {
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    // Find an earlier cube that intersects; if none, some packet of `cube`
    // escapes every cover cube.
    let Some(c) = cover.iter().find(|c| c.intersects(cube)) else {
        return Some(false);
    };
    if c.subsumes(cube) {
        return Some(true);
    }
    // `c` intersects but does not contain `cube`: split `cube ∖ c` into
    // disjoint subcubes (one per care bit of `c` that `cube` leaves free)
    // and require each to be covered. The subcube for bit `k` pins bits
    // k+1.. (in iteration order) to agree with `c` and bit `k` to differ,
    // which makes the subcubes pairwise disjoint and their union exactly
    // `cube ∖ c`.
    let mut pinned = cube.clone();
    for col in 0..cube.0.len() {
        let free = c.0[col].mask & !cube.0[col].mask;
        let mut rest = free;
        while rest != 0 {
            let k = rest & rest.wrapping_neg(); // lowest set bit
            rest &= rest - 1;
            let mut sub = pinned.clone();
            sub.0[col].mask |= k;
            sub.0[col].bits = (sub.0[col].bits & !k) | (!c.0[col].bits & k);
            match covered_by(&sub, cover, budget) {
                Some(true) => {}
                other => return other,
            }
            // Pin this bit to agree with `c` for the remaining subcubes.
            pinned.0[col].mask |= k;
            pinned.0[col].bits = (pinned.0[col].bits & !k) | (c.0[col].bits & k);
        }
    }
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(cells: &[(u64, u64)]) -> Cube {
        Cube(
            cells
                .iter()
                .map(|&(bits, mask)| Tern { bits, mask })
                .collect(),
        )
    }

    #[test]
    fn subsumption_per_column() {
        let wide = cube(&[(0, 0), (5, 0xff)]);
        let narrow = cube(&[(3, 0xff), (5, 0xff)]);
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
    }

    #[test]
    fn intersection_is_conjunction() {
        let a = cube(&[(0b1000, 0b1000), (0, 0)]);
        let b = cube(&[(0, 0b0001), (7, 0xf)]);
        let i = a.intersect(&b).unwrap();
        assert_eq!(i, cube(&[(0b1000, 0b1001), (7, 0xf)]));
        // Disjoint on a shared care bit.
        let c = cube(&[(0, 0b1000), (0, 0)]);
        assert_eq!(a.intersect(&c), None);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn union_cover_found() {
        // 0* ∪ 1* covers * on one 4-bit column.
        let all = cube(&[(0, 0)]);
        let lo = cube(&[(0, 0b1000)]);
        let hi = cube(&[(0b1000, 0b1000)]);
        let mut budget = 1000;
        assert_eq!(covered_by(&all, &[&lo, &hi], &mut budget), Some(true));
        let mut budget = 1000;
        assert_eq!(covered_by(&all, &[&lo], &mut budget), Some(false));
    }

    #[test]
    fn union_cover_multi_column() {
        // Column 0 split across two cubes that each pin column 1 = 7:
        // together they cover (any, 7) but not (any, any).
        let lo = cube(&[(0, 0b1000), (7, 0xf)]);
        let hi = cube(&[(0b1000, 0b1000), (7, 0xf)]);
        let target = cube(&[(0, 0), (7, 0xf)]);
        let mut budget = 1000;
        assert_eq!(covered_by(&target, &[&lo, &hi], &mut budget), Some(true));
        let wider = cube(&[(0, 0), (0, 0)]);
        let mut budget = 1000;
        assert_eq!(covered_by(&wider, &[&lo, &hi], &mut budget), Some(false));
    }

    #[test]
    fn budget_exhaustion_is_unknown() {
        let all = cube(&[(0, 0)]);
        let lo = cube(&[(0, 0b1000)]);
        let hi = cube(&[(0b1000, 0b1000)]);
        let mut budget = 1;
        assert_eq!(covered_by(&all, &[&lo, &hi], &mut budget), None);
    }

    /// Brute-force oracle on a single small column.
    #[test]
    fn covered_by_matches_enumeration() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let w = 6u32;
        let full = (1u64 << w) - 1;
        let mut rng = SmallRng::seed_from_u64(2019);
        for _ in 0..200 {
            let t: Vec<Tern> = (0..rng.gen_range(1..5))
                .map(|_| {
                    let mask = rng.gen_range(0..=full);
                    Tern {
                        bits: rng.gen_range(0..=full) & mask,
                        mask,
                    }
                })
                .collect();
            let cm = rng.gen_range(0..=full);
            let c = cube(&[(rng.gen_range(0..=full) & cm, cm)]);
            let covers: Vec<Cube> = t.iter().map(|&x| Cube(vec![x])).collect();
            let refs: Vec<&Cube> = covers.iter().collect();
            let expect = (0..=full)
                .filter(|&v| v & c.0[0].mask == c.0[0].bits)
                .all(|v| t.iter().any(|x| v & x.mask == x.bits));
            let mut budget = 100_000;
            assert_eq!(
                covered_by(&c, &refs, &mut budget),
                Some(expect),
                "{c:?} vs {t:?}"
            );
        }
    }

    /// Subtraction oracle: `a ∖ b` enumerated bit-for-bit on two small
    /// columns — the result must be disjoint and union to the difference.
    #[test]
    fn subtract_matches_enumeration() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let w = 4u32;
        let full = (1u64 << w) - 1;
        let mut rng = SmallRng::seed_from_u64(1907);
        let member = |c: &Cube, x: u64, y: u64| c.0[0].matches(x) && c.0[1].matches(y);
        for _ in 0..300 {
            let mut rnd = || {
                let mask = rng.gen_range(0..=full);
                let bits = rng.gen_range(0..=full) & mask;
                Tern { bits, mask }
            };
            let a = Cube(vec![rnd(), rnd()]);
            let b = Cube(vec![rnd(), rnd()]);
            let parts = a.subtract(&b);
            for x in 0..=full {
                for y in 0..=full {
                    let inside = parts.iter().filter(|p| member(p, x, y)).count();
                    let expect = usize::from(member(&a, x, y) && !member(&b, x, y));
                    assert_eq!(inside, expect, "a={a:?} b={b:?} at ({x},{y})");
                }
            }
        }
    }

    #[test]
    fn representative_is_a_member_with_free_bits_zero() {
        let c = cube(&[(0b1010, 0b1110), (0, 0)]);
        let r = c.representative();
        assert_eq!(r, vec![0b1010, 0]);
        assert!(c.0[0].matches(r[0]) && c.0[1].matches(r[1]));
    }
}
