//! Thread-count invariance of `check_equivalent` (DESIGN.md §9).
//!
//! The parallel executor must be *unobservable*: the outcome — including
//! which counterexample is reported when several exist — has to be
//! identical at every pool size. The single-thread run takes the inline
//! path (literally the serial scan), so comparing the multi-thread runs
//! against it proves "same answer as serial enumeration".
//!
//! One `#[test]` drives every scenario: [`mapro_par::set_threads`] is
//! process-global, so scenarios must not run concurrently from the test
//! harness's worker threads.

use mapro_core::{
    check_equivalent, ActionSem, Catalog, EquivConfig, EquivOutcome, Pipeline, Table, Value,
};

/// Two-field pipeline whose domain product (~10⁴ packets) spans several
/// scan chunks. Rows `i >= split` output a different port than in
/// [`reference`], yielding dozens of counterexamples scattered across
/// chunks — the parallel search must still report the domain-order first.
fn two_field(n: u64, split: u64) -> Pipeline {
    let mut c = Catalog::new();
    let f = c.field("f", 16);
    let g = c.field("g", 16);
    let out = c.action("out", ActionSem::Output);
    let mut t = Table::new("t", vec![f, g], vec![out]);
    for i in 0..n {
        let port = if i < split { "left" } else { "right" };
        t.row(vec![Value::Int(i), Value::Int(i)], vec![Value::sym(port)]);
    }
    Pipeline::single(c, t)
}

#[test]
fn equivalence_outcome_is_identical_at_any_thread_count() {
    const N: u64 = 100; // domain product ≈ 100² packets, several chunks
    let a = two_field(N, N); // every row outputs "left"
    let b = two_field(N, 30); // rows 30.. output "right": many counterexamples
    let exhaustive = EquivConfig::default();
    let sampling = EquivConfig {
        max_exhaustive: 0,
        samples: 5_000,
        seed: 41,
        ..EquivConfig::default()
    };

    let scenarios: Vec<(&str, &Pipeline, &Pipeline, &EquivConfig)> = vec![
        ("exhaustive/counterexample", &a, &b, &exhaustive),
        ("exhaustive/equivalent", &a, &a, &exhaustive),
        ("sampling/counterexample", &a, &b, &sampling),
        ("sampling/equivalent", &a, &a, &sampling),
    ];

    for (name, l, r, cfg) in scenarios {
        let mut reference: Option<String> = None;
        for threads in [1usize, 2, 8] {
            mapro_par::set_threads(threads);
            let got = format!("{:?}", check_equivalent(l, r, cfg));
            match &reference {
                None => reference = Some(got),
                Some(want) => assert_eq!(
                    want, &got,
                    "{name}: outcome changed between 1 and {threads} threads"
                ),
            }
        }
        mapro_par::set_threads(0);
    }

    // And the reported counterexample is the *serial-order first*: rows
    // 0..29 agree, row 30 is the first domain-order packet that differs.
    mapro_par::set_threads(8);
    match check_equivalent(&a, &b, &exhaustive).unwrap() {
        EquivOutcome::Counterexample(cx) => {
            let vals: Vec<u64> = cx.fields.iter().map(|(_, v)| *v).collect();
            assert_eq!(
                vals,
                vec![30, 30],
                "parallel search must report the first counterexample in domain order"
            );
        }
        other => panic!("expected a counterexample, got {other:?}"),
    }
    mapro_par::set_threads(0);
}
