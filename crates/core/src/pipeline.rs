//! Pipelines: chained match-action tables and their packet semantics.
//!
//! A [`Pipeline`] owns the program's [`Catalog`] and a list of [`Table`]s.
//! Execution starts at [`Pipeline::start`]; a hit entry applies its actions
//! in column order, then control transfers to the entry's `Goto` target if
//! any, else to the table's [`Table::next`] continuation, else ends. A miss
//! applies the table's [`MissPolicy`].
//!
//! The externally visible outcome of a run is a [`Verdict`]; two pipelines
//! are semantically equivalent iff they produce equal verdicts for every
//! packet (§4, "equivalent transformations"). Metadata fields are scratch
//! state and excluded from verdicts.

use crate::attr::{ActionSem, AttrId, AttrKind, Catalog};
use crate::table::{MissPolicy, Table};
use crate::value::Value;
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An abstract packet: a value for every matchable attribute of a catalog.
///
/// Fields not explicitly set read as zero (in particular, metadata fields
/// start at zero, matching OpenFlow semantics).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    vals: Vec<u64>,
}

impl Packet {
    /// A packet with all fields zero, sized for `catalog`.
    pub fn zero(catalog: &Catalog) -> Self {
        Packet {
            vals: vec![0; catalog.len()],
        }
    }

    /// Build a packet by name. Unknown names panic (they indicate a test or
    /// workload bug, not a runtime condition).
    pub fn from_fields(catalog: &Catalog, fields: &[(&str, u64)]) -> Self {
        let mut p = Packet::zero(catalog);
        for (name, v) in fields {
            let id = catalog
                .lookup(name)
                .unwrap_or_else(|| panic!("unknown field {name:?}"));
            p.set(id, *v);
        }
        p
    }

    /// Read a field.
    #[inline]
    pub fn get(&self, attr: AttrId) -> u64 {
        self.vals.get(attr.index()).copied().unwrap_or(0)
    }

    /// Write a field.
    #[inline]
    pub fn set(&mut self, attr: AttrId, v: u64) {
        if attr.index() >= self.vals.len() {
            self.vals.resize(attr.index() + 1, 0);
        }
        self.vals[attr.index()] = v;
    }
}

/// Why a pipeline run could not complete.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A `Goto` action named a table that does not exist.
    UnknownTable(String),
    /// Processing revisited enough tables to exceed the step budget,
    /// indicating a goto cycle.
    GotoCycle {
        /// The visit budget that was exceeded.
        limit: usize,
    },
    /// A `Goto`/`Output` cell held a non-symbolic parameter, or a
    /// `SetField` cell held a non-integer parameter.
    BadActionParam {
        /// Offending table name.
        table: String,
        /// Offending action attribute name.
        attr: String,
    },
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::UnknownTable(t) => write!(f, "goto target {t:?} does not exist"),
            EvalError::GotoCycle { limit } => {
                write!(f, "pipeline exceeded {limit} table visits (goto cycle?)")
            }
            EvalError::BadActionParam { table, attr } => {
                write!(
                    f,
                    "table {table:?}: malformed parameter for action {attr:?}"
                )
            }
        }
    }
}

impl std::error::Error for EvalError {}

/// The externally visible fate of a packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Verdict {
    /// Output port, if any `out(...)` fired (last write wins).
    pub output: Option<Arc<str>>,
    /// True if the packet missed some table whose policy is `Drop` before
    /// any output was scheduled... see `disposition` docs; kept for
    /// introspection.
    pub dropped: bool,
    /// True if a miss punted the packet to the controller.
    pub to_controller: bool,
    /// Final values of *header* fields that were modified (metadata
    /// excluded), keyed by attribute id, sorted by id.
    pub header_mods: Vec<(AttrId, u64)>,
    /// Opaque actions applied, as (attribute name, parameter) pairs,
    /// sorted. Sorted-multiset semantics: the paper's Cartesian product ×
    /// is commutative (§3, Fig. 2c), so attribute-application order between
    /// independent tables must not distinguish verdicts.
    pub opaque: Vec<(String, Value)>,
    /// Tables visited, in order (diagnostic; not part of equivalence).
    pub path: Vec<String>,
    /// For each visited table: the matched entry's index, or `None` on a
    /// miss. Parallel to [`Verdict::path`]. This is what rule counters
    /// (per-entry packet/byte counters, §2 "Monitorability") attach to.
    pub hits: Vec<Option<usize>>,
    /// Number of table lookups performed (diagnostic; the multi-table cost
    /// the paper's §5 latency discussion is about).
    pub lookups: usize,
}

impl Verdict {
    /// The equivalence-relevant projection of this verdict.
    ///
    /// Two runs are observationally equal iff these projections are equal.
    /// A dropped packet is absorbing: whatever actions ran before the miss
    /// are discarded with the packet (OpenFlow executes no action set on a
    /// table-miss drop), so all drops are indistinguishable. Otherwise the
    /// forwarding decision, header rewrites, and opaque actions must agree.
    pub fn observable(&self) -> Observable<'_> {
        if self.dropped && !self.to_controller {
            Observable::Dropped
        } else {
            Observable::Delivered {
                output: self.output.as_deref(),
                to_controller: self.to_controller,
                header_mods: &self.header_mods,
                opaque: &self.opaque,
            }
        }
    }
}

/// The observable projection of a [`Verdict`] (see [`Verdict::observable`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Observable<'a> {
    /// The packet was discarded; nothing is externally visible.
    Dropped,
    /// The packet left the switch (to a port and/or the controller) with
    /// these effects applied.
    Delivered {
        /// Output port, if any.
        output: Option<&'a str>,
        /// Whether the packet was punted to the controller.
        to_controller: bool,
        /// Final values of modified header fields.
        header_mods: &'a [(AttrId, u64)],
        /// Opaque actions applied (sorted multiset).
        opaque: &'a [(String, Value)],
    },
}

/// A match-action program: a catalog plus its tables.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Pipeline {
    /// The program-wide attribute dictionary.
    pub catalog: Catalog,
    /// Tables, in declaration order.
    pub tables: Vec<Table>,
    /// Name of the table where processing starts.
    pub start: String,
}

impl Pipeline {
    /// Wrap a single table as a pipeline (the *universal representation*).
    pub fn single(catalog: Catalog, table: Table) -> Self {
        let start = table.name.clone();
        Pipeline {
            catalog,
            tables: vec![table],
            start,
        }
    }

    /// Build a multi-table pipeline starting at `start`.
    ///
    /// # Panics
    /// Panics if `start` names no table or table names collide.
    pub fn new(catalog: Catalog, tables: Vec<Table>, start: impl Into<String>) -> Self {
        let start = start.into();
        let mut names = std::collections::HashSet::new();
        for t in &tables {
            assert!(names.insert(t.name.clone()), "duplicate table {:?}", t.name);
        }
        assert!(
            names.contains(&start),
            "start table {start:?} does not exist"
        );
        Pipeline {
            catalog,
            tables,
            start,
        }
    }

    /// Find a table by name.
    pub fn table(&self, name: &str) -> Option<&Table> {
        self.tables.iter().find(|t| t.name == name)
    }

    /// Mutable access to a table by name.
    pub fn table_mut(&mut self, name: &str) -> Option<&mut Table> {
        self.tables.iter_mut().find(|t| t.name == name)
    }

    /// Total entry count across all tables.
    pub fn total_entries(&self) -> usize {
        self.tables.iter().map(Table::len).sum()
    }

    /// Total match-action field count (§2 encoding-size metric).
    pub fn field_count(&self) -> usize {
        self.tables.iter().map(Table::field_count).sum()
    }

    /// Run a packet through the pipeline.
    ///
    /// The input packet is not mutated; modifications happen on a copy whose
    /// final state feeds the verdict.
    pub fn run(&self, packet: &Packet) -> Result<Verdict, EvalError> {
        let index: HashMap<&str, usize> = self
            .tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.as_str(), i))
            .collect();
        self.run_indexed(packet, &index)
    }

    /// Like [`Pipeline::run`] with a caller-supplied name index, for hot
    /// loops that evaluate many packets.
    pub fn run_indexed(
        &self,
        packet: &Packet,
        index: &HashMap<&str, usize>,
    ) -> Result<Verdict, EvalError> {
        mapro_obs::counter!("core.pipeline.runs").inc();
        let _eval_t = mapro_obs::time!("core.pipeline.eval_ns");
        let limit = self.tables.len().saturating_mul(2) + 8;
        let mut pkt = packet.clone();
        let mut touched: Vec<AttrId> = Vec::new();
        let mut v = Verdict {
            output: None,
            dropped: false,
            to_controller: false,
            header_mods: Vec::new(),
            opaque: Vec::new(),
            path: Vec::new(),
            hits: Vec::new(),
            lookups: 0,
        };
        let mut cur = Some(self.start.as_str());
        let mut steps = 0usize;
        while let Some(name) = cur {
            steps += 1;
            if steps > limit {
                return Err(EvalError::GotoCycle { limit });
            }
            let &ti = index
                .get(name)
                .ok_or_else(|| EvalError::UnknownTable(name.to_owned()))?;
            let t = &self.tables[ti];
            v.path.push(t.name.clone());
            v.lookups += 1;
            let hit = t.lookup_with(&self.catalog, |a| pkt.get(a));
            v.hits.push(hit);
            match hit {
                None => match &t.miss {
                    MissPolicy::Drop => {
                        v.dropped = true;
                        cur = None;
                    }
                    MissPolicy::Controller => {
                        v.to_controller = true;
                        cur = None;
                    }
                    MissPolicy::Fall(nxt) => {
                        // Borrow gymnastics: continue at the fall-through table.
                        cur = Some(self.resolve_name(nxt, index)?);
                    }
                },
                Some(row) => {
                    let mut goto: Option<&str> = None;
                    for (col, &attr) in t.action_attrs.iter().enumerate() {
                        let param = &t.entries[row].actions[col];
                        if matches!(param, Value::Any) {
                            continue; // no-op slot
                        }
                        let a = self.catalog.attr(attr);
                        let sem = match &a.kind {
                            AttrKind::Action(s) => s,
                            _ => unreachable!("action column with non-action attr"),
                        };
                        match sem {
                            ActionSem::Output => match param {
                                Value::Sym(s) => v.output = Some(s.clone()),
                                _ => {
                                    return Err(EvalError::BadActionParam {
                                        table: t.name.clone(),
                                        attr: a.name.clone(),
                                    })
                                }
                            },
                            ActionSem::Goto => match param {
                                Value::Sym(s) => goto = Some(s.as_ref()),
                                _ => {
                                    return Err(EvalError::BadActionParam {
                                        table: t.name.clone(),
                                        attr: a.name.clone(),
                                    })
                                }
                            },
                            ActionSem::SetField(target) => match param {
                                Value::Int(x) => {
                                    pkt.set(*target, *x);
                                    if !touched.contains(target) {
                                        touched.push(*target);
                                    }
                                }
                                _ => {
                                    return Err(EvalError::BadActionParam {
                                        table: t.name.clone(),
                                        attr: a.name.clone(),
                                    })
                                }
                            },
                            ActionSem::Opaque => {
                                v.opaque.push((a.name.clone(), param.clone()));
                            }
                        }
                    }
                    cur = match goto {
                        Some(g) => Some(self.resolve_name(g, index)?),
                        None => match &t.next {
                            Some(n) => Some(self.resolve_name(n, index)?),
                            None => None,
                        },
                    };
                }
            }
        }
        // Externally visible header modifications: touched non-meta fields.
        let mut mods: Vec<(AttrId, u64)> = touched
            .into_iter()
            .filter(|&a| matches!(self.catalog.attr(a).kind, AttrKind::Field))
            .map(|a| (a, pkt.get(a)))
            .collect();
        mods.sort_unstable_by_key(|&(a, _)| a);
        v.header_mods = mods;
        v.opaque.sort();
        mapro_obs::counter!("core.pipeline.table_lookups").add(v.lookups as u64);
        mapro_obs::histogram!("core.pipeline.path_len").record(v.path.len() as u64);
        Ok(v)
    }

    fn resolve_name<'a>(
        &self,
        name: &str,
        index: &HashMap<&'a str, usize>,
    ) -> Result<&'a str, EvalError> {
        index
            .get_key_value(name)
            .map(|(k, _)| *k)
            .ok_or_else(|| EvalError::UnknownTable(name.to_owned()))
    }

    /// Build the table-name index used by [`Pipeline::run_indexed`].
    pub fn name_index(&self) -> HashMap<&str, usize> {
        self.tables
            .iter()
            .enumerate()
            .map(|(i, t)| (t.name.as_str(), i))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::ActionSem;

    /// Two-stage pipeline: t0 matches f, writes meta and gotos t1;
    /// t1 matches meta and outputs.
    fn two_stage() -> Pipeline {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let m = c.meta("m", 8);
        let set_m = c.action("set_m", ActionSem::SetField(m));
        let goto = c.action("goto", ActionSem::Goto);
        let out = c.action("out", ActionSem::Output);

        let mut t0 = Table::new("t0", vec![f], vec![set_m, goto]);
        t0.row(vec![Value::Int(1)], vec![Value::Int(10), Value::sym("t1")]);
        t0.row(vec![Value::Int(2)], vec![Value::Int(20), Value::sym("t1")]);

        let mut t1 = Table::new("t1", vec![m], vec![out]);
        t1.row(vec![Value::Int(10)], vec![Value::sym("p1")]);
        t1.row(vec![Value::Int(20)], vec![Value::sym("p2")]);

        Pipeline::new(c, vec![t0, t1], "t0")
    }

    #[test]
    fn goto_and_metadata_flow() {
        let p = two_stage();
        let pkt = Packet::from_fields(&p.catalog, &[("f", 1)]);
        let v = p.run(&pkt).unwrap();
        assert_eq!(v.output.as_deref(), Some("p1"));
        assert_eq!(v.path, vec!["t0", "t1"]);
        assert_eq!(v.lookups, 2);
        assert!(!v.dropped);
        // Metadata writes are not externally visible.
        assert!(v.header_mods.is_empty());
    }

    #[test]
    fn miss_drops() {
        let p = two_stage();
        let pkt = Packet::from_fields(&p.catalog, &[("f", 9)]);
        let v = p.run(&pkt).unwrap();
        assert!(v.dropped);
        assert_eq!(v.output, None);
        assert_eq!(v.lookups, 1);
    }

    #[test]
    fn miss_to_controller() {
        let mut p = two_stage();
        p.table_mut("t0").unwrap().miss = MissPolicy::Controller;
        let pkt = Packet::from_fields(&p.catalog, &[("f", 9)]);
        let v = p.run(&pkt).unwrap();
        assert!(v.to_controller);
        assert!(!v.dropped);
    }

    #[test]
    fn implicit_next_chaining() {
        let mut p = two_stage();
        // Drop the explicit gotos; chain t0 -> t1 implicitly instead.
        {
            let t0 = p.table_mut("t0").unwrap();
            for e in &mut t0.entries {
                e.actions[1] = Value::Any; // goto slot becomes no-op
            }
            t0.next = Some("t1".into());
        }
        let pkt = Packet::from_fields(&p.catalog, &[("f", 2)]);
        let v = p.run(&pkt).unwrap();
        assert_eq!(v.output.as_deref(), Some("p2"));
    }

    #[test]
    fn goto_cycle_detected() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let goto = c.action("goto", ActionSem::Goto);
        let mut t0 = Table::new("t0", vec![f], vec![goto]);
        t0.row(vec![Value::Any], vec![Value::sym("t0")]);
        let p = Pipeline::new(c, vec![t0], "t0");
        let pkt = Packet::zero(&p.catalog);
        assert!(matches!(p.run(&pkt), Err(EvalError::GotoCycle { .. })));
    }

    #[test]
    fn unknown_goto_target() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let goto = c.action("goto", ActionSem::Goto);
        let mut t0 = Table::new("t0", vec![f], vec![goto]);
        t0.row(vec![Value::Any], vec![Value::sym("nope")]);
        let p = Pipeline::new(c, vec![t0], "t0");
        let pkt = Packet::zero(&p.catalog);
        assert_eq!(p.run(&pkt), Err(EvalError::UnknownTable("nope".to_owned())));
    }

    #[test]
    fn header_mods_visible_meta_mods_not() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let ttl = c.field("ttl", 8);
        let m = c.meta("m", 8);
        let set_ttl = c.action("set_ttl", ActionSem::SetField(ttl));
        let set_m = c.action("set_m", ActionSem::SetField(m));
        let mut t = Table::new("t", vec![f], vec![set_ttl, set_m]);
        t.row(vec![Value::Any], vec![Value::Int(63), Value::Int(5)]);
        let p = Pipeline::single(c, t);
        let v = p.run(&Packet::zero(&p.catalog)).unwrap();
        assert_eq!(v.header_mods, vec![(ttl, 63)]);
    }

    #[test]
    fn opaque_actions_sorted_for_commutativity() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let a1 = c.action("zeta", ActionSem::Opaque);
        let a2 = c.action("alpha", ActionSem::Opaque);
        let mut t = Table::new("t", vec![f], vec![a1, a2]);
        t.row(vec![Value::Any], vec![Value::sym("x"), Value::sym("y")]);
        let p = Pipeline::single(c, t);
        let v = p.run(&Packet::zero(&p.catalog)).unwrap();
        assert_eq!(
            v.opaque,
            vec![
                ("alpha".to_owned(), Value::sym("y")),
                ("zeta".to_owned(), Value::sym("x"))
            ]
        );
    }

    #[test]
    fn bad_action_param_reported() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f], vec![out]);
        t.row(vec![Value::Any], vec![Value::Int(3)]); // output wants a Sym
        let p = Pipeline::single(c, t);
        assert!(matches!(
            p.run(&Packet::zero(&p.catalog)),
            Err(EvalError::BadActionParam { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "start table")]
    fn bad_start_rejected() {
        let c = Catalog::new();
        let _ = Pipeline::new(c, vec![], "zzz");
    }
}
