//! Finite packet domains for exhaustive semantic checking.
//!
//! Every match predicate we admit in program sources (exact, prefix,
//! wildcard) denotes an *interval* of field values. A pipeline's behaviour
//! on a packet therefore depends only on which elementary interval each
//! field value falls into, where the elementary intervals are induced by
//! the endpoints of all predicates mentioning that field. Evaluating one
//! representative per elementary interval — and taking the Cartesian
//! product across fields — is thus a sound *and complete* equivalence
//! check for such programs (fields are matched independently within an
//! entry, and entries combine per-field predicates conjunctively).
//!
//! General ternary predicates are not interval-shaped; they only occur
//! inside datapath caches, never in the programs normalization manipulates,
//! and [`Domain::from_pipelines`] rejects them.

use crate::attr::{AttrId, AttrKind};
use crate::pipeline::{Packet, Pipeline};
use std::collections::BTreeMap;

/// Per-field representative values covering all elementary intervals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    /// For each participating header field: its representative values,
    /// sorted ascending. Metadata fields are excluded — they start at zero
    /// and are written by the program, so they are not free inputs.
    pub fields: Vec<(AttrId, Vec<u64>)>,
}

/// Error building a domain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DomainError {
    /// A match cell held a non-interval predicate (general ternary) or a
    /// symbolic value.
    NonIntervalPredicate {
        /// Offending table name.
        table: String,
        /// Offending field name.
        attr: String,
    },
}

impl std::fmt::Display for DomainError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DomainError::NonIntervalPredicate { table, attr } => write!(
                f,
                "table {table:?}, field {attr:?}: predicate is not interval-shaped"
            ),
        }
    }
}

impl std::error::Error for DomainError {}

impl Domain {
    /// Derive the joint domain of several pipelines (they must share a
    /// catalog layout for the header fields; in practice the compared
    /// pipelines come from transformations of one source program whose
    /// catalogs agree on all `Field` attributes).
    pub fn from_pipelines(pipelines: &[&Pipeline]) -> Result<Domain, DomainError> {
        assert!(!pipelines.is_empty(), "need at least one pipeline");
        // endpoint set per field attr id
        let mut points: BTreeMap<AttrId, Vec<u64>> = BTreeMap::new();
        let mut widths: BTreeMap<AttrId, u32> = BTreeMap::new();
        for p in pipelines {
            for t in &p.tables {
                for (col, &attr) in t.match_attrs.iter().enumerate() {
                    let a = p.catalog.attr(attr);
                    if !matches!(a.kind, AttrKind::Field) {
                        continue; // metadata: internal, not a free input
                    }
                    let width = a.width;
                    widths.insert(attr, width);
                    let pts = points.entry(attr).or_default();
                    for e in &t.entries {
                        let v = &e.matches[col];
                        let (lo, hi) =
                            v.interval(width)
                                .ok_or_else(|| DomainError::NonIntervalPredicate {
                                    table: t.name.clone(),
                                    attr: a.name.clone(),
                                })?;
                        // Elementary-interval boundaries: the interval start,
                        // and the first value after it.
                        pts.push(lo);
                        if hi < crate::value::low_mask(width) {
                            pts.push(hi + 1);
                        }
                    }
                }
            }
        }
        let mut fields = Vec::new();
        for (attr, mut pts) in points {
            pts.push(0); // the leftmost elementary interval
            pts.sort_unstable();
            pts.dedup();
            let _ = widths;
            fields.push((attr, pts));
        }
        Ok(Domain { fields })
    }

    /// Number of packets in the full Cartesian product, saturating at
    /// `u128::MAX`.
    ///
    /// Saturation (rather than `Iterator::product`, which panics in debug
    /// builds and wraps in release) keeps the exhaustive-vs-sampling mode
    /// decision in the equivalence checker correct for programs with many
    /// wide fields: a wrapped product could land *under* `max_exhaustive`
    /// and trigger a doomed exhaustive enumeration.
    pub fn product_size(&self) -> u128 {
        self.fields
            .iter()
            .fold(1u128, |acc, (_, vs)| acc.saturating_mul(vs.len() as u128))
    }

    /// Iterate the full Cartesian product of representatives as packets.
    pub fn packets<'a>(&'a self, proto: &'a Packet) -> DomainIter<'a> {
        DomainIter {
            domain: self,
            proto,
            idx: vec![0; self.fields.len()],
            done: self.fields.iter().any(|(_, v)| v.is_empty()),
            remaining: None,
        }
    }

    /// Iterate `len` packets of the Cartesian product starting at product
    /// index `start` (mixed-radix, last field varying fastest — the same
    /// order [`Domain::packets`] enumerates). This is the random-access
    /// entry point the parallel equivalence checker uses to hand disjoint
    /// index ranges to pool workers; concatenating the ranges
    /// `[0,c), [c,2c), …` reproduces the serial enumeration exactly.
    pub fn packets_range<'a>(
        &'a self,
        proto: &'a Packet,
        start: u128,
        len: usize,
    ) -> DomainIter<'a> {
        let size = self.product_size();
        let mut idx = vec![0usize; self.fields.len()];
        let done = start >= size || len == 0 || self.fields.iter().any(|(_, v)| v.is_empty());
        if !done {
            // Mixed-radix decode of `start`: the last field is the least
            // significant digit (the iterator's odometer increments it
            // first).
            let mut rem = start;
            for k in (0..self.fields.len()).rev() {
                let base = self.fields[k].1.len() as u128;
                idx[k] = (rem % base) as usize;
                rem /= base;
            }
        }
        DomainIter {
            domain: self,
            proto,
            idx,
            done,
            remaining: Some(len),
        }
    }

    /// Deterministically sample up to `n` packets from the product using a
    /// splitmix64 stream seeded with `seed`. Used when the product is too
    /// large to enumerate.
    pub fn sample(&self, proto: &Packet, n: usize, seed: u64) -> Vec<Packet> {
        let mut s = seed;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let mut p = proto.clone();
            for (attr, vs) in &self.fields {
                s = splitmix64(s);
                p.set(*attr, vs[(s % vs.len() as u64) as usize]);
            }
            out.push(p);
        }
        out
    }
}

/// Iterator over the Cartesian product of a [`Domain`].
pub struct DomainIter<'a> {
    domain: &'a Domain,
    proto: &'a Packet,
    idx: Vec<usize>,
    done: bool,
    /// Packet budget for range iteration (`None` = the full product).
    remaining: Option<usize>,
}

impl Iterator for DomainIter<'_> {
    type Item = Packet;

    fn next(&mut self) -> Option<Packet> {
        if self.done {
            return None;
        }
        if let Some(rem) = &mut self.remaining {
            if *rem == 0 {
                self.done = true;
                return None;
            }
            *rem -= 1;
        }
        let mut p = self.proto.clone();
        for (k, (attr, vs)) in self.domain.fields.iter().enumerate() {
            p.set(*attr, vs[self.idx[k]]);
        }
        // Odometer increment.
        let mut k = self.domain.fields.len();
        loop {
            if k == 0 {
                self.done = true;
                break;
            }
            k -= 1;
            self.idx[k] += 1;
            if self.idx[k] < self.domain.fields[k].1.len() {
                break;
            }
            self.idx[k] = 0;
        }
        if self.domain.fields.is_empty() {
            self.done = true;
        }
        Some(p)
    }
}

#[inline]
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{ActionSem, Catalog};
    use crate::table::Table;
    use crate::value::Value;

    fn pipeline_with(values: Vec<Value>) -> Pipeline {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f], vec![out]);
        for v in values {
            t.row(vec![v], vec![Value::sym("p")]);
        }
        Pipeline::single(c, t)
    }

    #[test]
    fn exact_values_yield_boundaries() {
        let p = pipeline_with(vec![Value::Int(5), Value::Int(9)]);
        let d = Domain::from_pipelines(&[&p]).unwrap();
        assert_eq!(d.fields.len(), 1);
        // {0, 5, 6, 9, 10}
        assert_eq!(d.fields[0].1, vec![0, 5, 6, 9, 10]);
    }

    #[test]
    fn prefix_boundaries() {
        let p = pipeline_with(vec![Value::prefix(0b1000_0000, 1, 8)]);
        let d = Domain::from_pipelines(&[&p]).unwrap();
        // [128,255] → {0, 128}; 255+1 overflows the width and is dropped.
        assert_eq!(d.fields[0].1, vec![0, 128]);
    }

    #[test]
    fn product_enumeration_covers_all_combinations() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let g = c.field("g", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f, g], vec![out]);
        t.row(vec![Value::Int(1), Value::Int(2)], vec![Value::sym("p")]);
        let p = Pipeline::single(c, t);
        let d = Domain::from_pipelines(&[&p]).unwrap();
        // f: {0,1,2}, g: {0,2,3}
        assert_eq!(d.product_size(), 9);
        let proto = Packet::zero(&p.catalog);
        let pkts: Vec<_> = d.packets(&proto).collect();
        assert_eq!(pkts.len(), 9);
        // All distinct.
        for i in 0..pkts.len() {
            for j in i + 1..pkts.len() {
                assert_ne!(pkts[i], pkts[j]);
            }
        }
    }

    #[test]
    fn metadata_excluded() {
        let mut c = Catalog::new();
        let m = c.meta("m", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![m], vec![out]);
        t.row(vec![Value::Int(1)], vec![Value::sym("p")]);
        let p = Pipeline::single(c, t);
        let d = Domain::from_pipelines(&[&p]).unwrap();
        assert!(d.fields.is_empty());
    }

    #[test]
    fn general_ternary_rejected() {
        let p = pipeline_with(vec![Value::Ternary {
            bits: 0b101,
            mask: 0b101,
        }]);
        assert!(matches!(
            Domain::from_pipelines(&[&p]),
            Err(DomainError::NonIntervalPredicate { .. })
        ));
    }

    /// Regression: a product exceeding 2^128 must saturate, not wrap (or
    /// panic in debug builds), so the sampling-mode trigger in the
    /// equivalence checker stays robust for many-wide-field programs.
    #[test]
    fn product_size_saturates_instead_of_overflowing() {
        // 13 fields × 1000 representatives each: 1000^13 ≈ 2^129.5 > 2^128.
        let fields: Vec<(AttrId, Vec<u64>)> = (0..13)
            .map(|i| (AttrId(i), (0..1000u64).collect()))
            .collect();
        let d = Domain { fields };
        assert_eq!(d.product_size(), u128::MAX);
        // The saturated size is still usable: sampling works and range
        // iteration treats any in-range start as valid.
        let mut c = Catalog::new();
        for i in 0..13 {
            c.field(format!("f{i}"), 32);
        }
        let proto = Packet::zero(&c);
        assert_eq!(d.sample(&proto, 5, 1).len(), 5);
        assert_eq!(d.packets_range(&proto, 0, 3).count(), 3);
    }

    #[test]
    fn sampling_is_deterministic() {
        let p = pipeline_with(vec![Value::Int(5), Value::Int(9)]);
        let d = Domain::from_pipelines(&[&p]).unwrap();
        let proto = Packet::zero(&p.catalog);
        let a = d.sample(&proto, 10, 42);
        let b = d.sample(&proto, 10, 42);
        assert_eq!(a, b);
        let c = d.sample(&proto, 10, 43);
        assert_ne!(a, c);
    }

    #[test]
    fn range_iteration_tiles_the_product() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let g = c.field("g", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f, g], vec![out]);
        t.row(vec![Value::Int(1), Value::Int(2)], vec![Value::sym("p")]);
        t.row(vec![Value::Int(7), Value::Int(9)], vec![Value::sym("p")]);
        let p = Pipeline::single(c, t);
        let d = Domain::from_pipelines(&[&p]).unwrap();
        let proto = Packet::zero(&p.catalog);
        let serial: Vec<_> = d.packets(&proto).collect();
        let n = serial.len();
        assert_eq!(n as u128, d.product_size());
        // Any chunking concatenates back to the serial enumeration.
        for chunk in [1usize, 2, 3, n, n + 5] {
            let mut tiled = Vec::new();
            let mut start = 0usize;
            while start < n {
                tiled.extend(d.packets_range(&proto, start as u128, chunk));
                start += chunk;
            }
            assert_eq!(tiled, serial, "chunk={chunk}");
        }
        // Out-of-range start and zero budget are empty.
        assert_eq!(d.packets_range(&proto, n as u128, 4).count(), 0);
        assert_eq!(d.packets_range(&proto, 0, 0).count(), 0);
    }

    #[test]
    fn empty_domain_yields_single_proto_packet() {
        // A pipeline matching only metadata has no free fields; the product
        // is the single prototype packet.
        let mut c = Catalog::new();
        let m = c.meta("m", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![m], vec![out]);
        t.row(vec![Value::Int(0)], vec![Value::sym("p")]);
        let p = Pipeline::single(c, t);
        let d = Domain::from_pipelines(&[&p]).unwrap();
        let proto = Packet::zero(&p.catalog);
        let pkts: Vec<_> = d.packets(&proto).collect();
        assert_eq!(pkts.len(), 1);
    }
}
