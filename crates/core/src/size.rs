//! Data-plane encoding-size accounting (§2 "Redundancy").
//!
//! The paper quantifies redundancy by the number of *match-action fields* a
//! representation occupies: Fig. 1a's universal table holds 6 entries × 4
//! attributes = 24 fields, the goto-normalized pipeline of Fig. 1b only 21;
//! parametrically, `N` services × `M` backends cost `4MN` fields universal
//! vs `N(3 + 2M)` normalized. This module computes those counts, plus a
//! TCAM-bit estimate (entries × total match width, the unit of [21, 23]'s
//! space concerns).

use crate::pipeline::Pipeline;
use crate::table::Table;

/// Size of one table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSize {
    /// Table name.
    pub name: String,
    /// Number of entries.
    pub entries: usize,
    /// Number of match columns.
    pub match_attrs: usize,
    /// Number of action columns.
    pub action_attrs: usize,
    /// entries × (match + action columns) — the §2 metric.
    pub fields: usize,
    /// entries × Σ match-column widths: bits of TCAM value array consumed
    /// (mask bits double this on real hardware; the factor is representation-
    /// independent so we report value bits).
    pub tcam_bits: usize,
}

/// Size of a whole pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SizeReport {
    /// Per-table breakdown, in pipeline order.
    pub tables: Vec<TableSize>,
}

impl SizeReport {
    /// Measure a pipeline.
    pub fn of(p: &Pipeline) -> SizeReport {
        SizeReport {
            tables: p.tables.iter().map(|t| table_size(p, t)).collect(),
        }
    }

    /// Total §2 field count.
    pub fn fields(&self) -> usize {
        self.tables.iter().map(|t| t.fields).sum()
    }

    /// Total entries.
    pub fn entries(&self) -> usize {
        self.tables.iter().map(|t| t.entries).sum()
    }

    /// Total TCAM value bits.
    pub fn tcam_bits(&self) -> usize {
        self.tables.iter().map(|t| t.tcam_bits).sum()
    }
}

fn table_size(p: &Pipeline, t: &Table) -> TableSize {
    let match_width: usize = t
        .match_attrs
        .iter()
        .map(|&a| p.catalog.attr(a).width as usize)
        .sum();
    TableSize {
        name: t.name.clone(),
        entries: t.len(),
        match_attrs: t.match_attrs.len(),
        action_attrs: t.action_attrs.len(),
        fields: t.field_count(),
        tcam_bits: t.len() * match_width,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{ActionSem, Catalog};
    use crate::table::Table;
    use crate::value::Value;

    #[test]
    fn counts_fields_and_bits() {
        let mut c = Catalog::new();
        let f = c.field("f", 32);
        let g = c.field("g", 16);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f, g], vec![out]);
        for i in 0..5 {
            t.row(vec![Value::Int(i), Value::Int(i)], vec![Value::sym("p")]);
        }
        let p = Pipeline::single(c, t);
        let r = SizeReport::of(&p);
        assert_eq!(r.entries(), 5);
        assert_eq!(r.fields(), 15); // 5 × (2 + 1)
        assert_eq!(r.tcam_bits(), 5 * 48);
        assert_eq!(r.tables[0].match_attrs, 2);
        assert_eq!(r.tables[0].action_attrs, 1);
    }
}
