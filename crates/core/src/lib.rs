//! # mapro-core — the relational model of match-action programs
//!
//! This crate is the foundation of the `mapro` workspace, a reproduction of
//! *Németh, Chiesa, Rétvári: "Normal Forms for Match-Action Programs"*
//! (CoNEXT 2019). It models packet-processing programs the way §3 of the
//! paper does:
//!
//! * **Attributes** ([`Catalog`], [`Attribute`]) — header fields, metadata
//!   fields and actions, treated uniformly so that relational analysis can
//!   put actions inside keys and functional dependencies.
//! * **Tables** ([`Table`], [`Entry`]) — relations whose match cells are
//!   predicates-as-values and whose action cells are action parameters,
//!   with classifier semantics (priority order, miss policy) layered on top.
//! * **Pipelines** ([`Pipeline`]) — chained tables with OpenFlow-style
//!   `goto_table`, metadata writes, and implicit sequential chaining; a
//!   deterministic evaluator yields a [`Verdict`] per packet.
//! * **Equivalence** ([`equiv`], [`domain`]) — complete observational
//!   equivalence checking over derived finite domains, the mechanical
//!   counterpart of the paper's Theorem 1.
//! * **Size accounting** ([`size`]) — the §2 "number of match-action fields"
//!   redundancy metric and TCAM-bit estimates.
//!
//! Higher layers build on this: `mapro-fd` (dependency theory), and
//! `mapro-normalize` (the 1NF/2NF/3NF transformation engine).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attr;
pub mod display;
pub mod domain;
pub mod equiv;
pub mod export;
pub mod pipeline;
pub mod size;
pub mod table;
pub mod text;
pub mod value;

pub use attr::{ActionSem, AttrId, AttrKind, Attribute, Catalog};
pub use domain::{Domain, DomainError};
pub use equiv::{
    assert_equivalent, check_equivalent, CheckMethod, Counterexample, EquivConfig, EquivError,
    EquivMode, EquivOutcome,
};
pub use pipeline::{EvalError, Packet, Pipeline, Verdict};
pub use size::{SizeReport, TableSize};
pub use table::{Entry, MissPolicy, Overlap, Table};
pub use text::{format_program, parse_program};
pub use value::Value;
