//! Paper-figure-style rendering of tables and pipelines.
//!
//! The examples and the `repro` binary print programs the way the paper's
//! figures draw them: a header row of attribute names with a `|` separating
//! match columns from action columns, then one line per entry.

use crate::attr::AttrId;
use crate::pipeline::Pipeline;
use crate::table::Table;
use crate::value::Value;

/// Render a cell the way the paper's figures write it: IPv4-looking
/// 32-bit fields as dotted quads, short prefixes in the binary-star
/// notation (`0*`, `10*`), everything else via [`Value`]'s `Display`.
pub fn render_cell(p: &Pipeline, attr: AttrId, v: &Value) -> String {
    // A set-field action's parameter lives in the *target* field's domain;
    // borrow its rendering rules (a NAT rewrite shows as a dotted quad).
    let a = match &p.catalog.attr(attr).kind {
        crate::attr::AttrKind::Action(crate::attr::ActionSem::SetField(t)) => p.catalog.attr(*t),
        _ => p.catalog.attr(attr),
    };
    let ipish = a.width == 32 && (a.name.contains("ip") || a.name.contains("nw"));
    match v {
        Value::Int(x) if ipish => format!(
            "{}.{}.{}.{}",
            (x >> 24) & 0xff,
            (x >> 16) & 0xff,
            (x >> 8) & 0xff,
            x & 0xff
        ),
        Value::Prefix { bits, len } if ipish && *len <= 4 => {
            // Paper notation: top bits in binary followed by a star.
            let mut s = String::new();
            for i in 0..*len {
                s.push(if (bits >> (31 - i)) & 1 == 1 {
                    '1'
                } else {
                    '0'
                });
            }
            s.push('*');
            s
        }
        Value::Prefix { bits, len } if ipish => format!(
            "{}.{}.{}.{}/{}",
            (bits >> 24) & 0xff,
            (bits >> 16) & 0xff,
            (bits >> 8) & 0xff,
            bits & 0xff,
            len
        ),
        other => other.to_string(),
    }
}

/// Render one table.
pub fn render_table(p: &Pipeline, t: &Table) -> String {
    let mut cols: Vec<String> = Vec::new();
    let mut rows: Vec<Vec<String>> = Vec::new();
    for &a in &t.match_attrs {
        cols.push(p.catalog.name(a).to_owned());
    }
    for &a in &t.action_attrs {
        cols.push(p.catalog.name(a).to_owned());
    }
    for e in &t.entries {
        let mut r = Vec::new();
        for (i, v) in e.matches.iter().enumerate() {
            r.push(render_cell(p, t.match_attrs[i], v));
        }
        for (i, v) in e.actions.iter().enumerate() {
            r.push(render_cell(p, t.action_attrs[i], v));
        }
        rows.push(r);
    }
    let nm = t.match_attrs.len();
    let widths: Vec<usize> = cols
        .iter()
        .enumerate()
        .map(|(i, c)| {
            rows.iter()
                .map(|r| r[i].len())
                .chain(std::iter::once(c.len()))
                .max()
                .unwrap_or(0)
        })
        .collect();

    let fmt_row = |cells: &[String]| -> String {
        let mut s = String::from("| ");
        for (i, cell) in cells.iter().enumerate() {
            if i == nm && nm > 0 && i < cells.len() {
                s.push_str("| ");
            }
            s.push_str(&format!("{:width$} ", cell, width = widths[i]));
        }
        s.push('|');
        s
    };

    let mut out = String::new();
    let header = fmt_row(&cols);
    out.push_str(&format!("table {}:\n", t.name));
    out.push_str(&header);
    out.push('\n');
    out.push_str(&"-".repeat(header.len()));
    out.push('\n');
    for r in &rows {
        out.push_str(&fmt_row(r));
        out.push('\n');
    }
    if let Some(n) = &t.next {
        out.push_str(&format!("(then: {n})\n"));
    }
    out
}

/// Render a whole pipeline, start table first.
pub fn render_pipeline(p: &Pipeline) -> String {
    let mut out = format!("pipeline (start: {}):\n", p.start);
    for t in &p.tables {
        out.push_str(&render_table(p, t));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{ActionSem, Catalog};
    use crate::table::Table;
    use crate::value::Value;

    #[test]
    fn renders_header_and_rows() {
        let mut c = Catalog::new();
        let f = c.field("ip_dst", 32);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t0", vec![f], vec![out]);
        t.row(vec![Value::Int(1)], vec![Value::sym("vm1")]);
        let p = Pipeline::single(c, t);
        let s = render_pipeline(&p);
        assert!(s.contains("table t0:"));
        assert!(s.contains("ip_dst"));
        assert!(s.contains("vm1"));
        assert!(s.contains("0.0.0.1")); // ip-named 32-bit fields render dotted
    }

    #[test]
    fn ip_fields_rendered_like_the_paper() {
        let mut c = Catalog::new();
        let src = c.field("ip_src", 32);
        let dst = c.field("ip_dst", 32);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t0", vec![src, dst], vec![out]);
        t.row(
            vec![Value::prefix(0x8000_0000, 1, 32), Value::Int(0xc000_0201)],
            vec![Value::sym("vm2")],
        );
        t.row(
            vec![Value::prefix(0x0a00_0000, 8, 32), Value::Int(0xc000_0202)],
            vec![Value::sym("vm3")],
        );
        let p = Pipeline::single(c, t);
        let s = render_pipeline(&p);
        assert!(s.contains("1*"), "{s}");
        assert!(s.contains("192.0.2.1"), "{s}");
        assert!(s.contains("10.0.0.0/8"), "{s}");
    }

    #[test]
    fn set_field_params_render_in_target_domain() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let ip = c.field("ip_dst", 32);
        let set = c.action("set_ip", ActionSem::SetField(ip));
        let mut t = Table::new("t", vec![f], vec![set]);
        t.row(vec![Value::Int(1)], vec![Value::Int(0x0a00_0001)]);
        let p = Pipeline::single(c, t);
        assert!(render_pipeline(&p).contains("10.0.0.1"));
    }

    #[test]
    fn next_annotation_rendered() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let mut t = Table::new("t0", vec![f], vec![]);
        t.row(vec![Value::Any], vec![]);
        t.next = Some("t1".into());
        let mut t1 = Table::new("t1", vec![f], vec![]);
        t1.row(vec![Value::Any], vec![]);
        let p = Pipeline::new(c, vec![t, t1], "t0");
        assert!(render_pipeline(&p).contains("(then: t1)"));
    }
}
