//! A human-writable text format for match-action programs (`.mat`).
//!
//! JSON (serde) is the machine format; this is the one you type. Example —
//! Fig. 1b in eleven lines:
//!
//! ```text
//! field ip_src 32
//! field ip_dst 32
//! field tcp_dst 16
//! action jump goto
//! action out output
//!
//! table t0 [ip_dst tcp_dst | jump]
//!   192.0.2.1 80  | t1
//!   192.0.2.3 22  | t3
//! table t1 [ip_src | out]
//!   0*            | vm1
//!   1*            | vm2
//! table t3 [ip_src | out]
//!   *             | vm6
//! start t0
//! ```
//!
//! Cell syntax: `*` (any), decimal / `0x…` integers, dotted quads,
//! `addr/len` prefixes, `10*` binary prefixes (left-aligned at the field's
//! width), and bare words for symbolic action parameters. `-` in an action
//! column means "no-op in this entry". Declarations:
//! `field NAME WIDTH`, `meta NAME WIDTH`,
//! `action NAME output|goto|opaque|set TARGET`,
//! `table NAME [matches | actions] [miss=drop|controller|fall:TBL] [next=TBL]`,
//! and `start NAME`. `#` starts a comment.

use crate::attr::{ActionSem, AttrId, AttrKind, Catalog};
use crate::pipeline::Pipeline;
use crate::table::{MissPolicy, Table};
use crate::value::Value;
use std::fmt;

/// A parse failure with its line number (1-based).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for ParseError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, ParseError> {
    Err(ParseError {
        line,
        msg: msg.into(),
    })
}

/// Parse a `.mat` program.
///
/// ```
/// let p = mapro_core::parse_program(r#"
///     field dst 8
///     action out output
///     table t0 [dst | out]
///       1 | left
///       2 | right
/// "#).unwrap();
/// let pkt = mapro_core::Packet::from_fields(&p.catalog, &[("dst", 2)]);
/// assert_eq!(p.run(&pkt).unwrap().output.as_deref(), Some("right"));
/// ```
pub fn parse_program(src: &str) -> Result<Pipeline, ParseError> {
    let mut catalog = Catalog::new();
    let mut tables: Vec<Table> = Vec::new();
    let mut start: Option<String> = None;

    for (ln, raw) in src.lines().enumerate() {
        let ln = ln + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        match toks[0] {
            "field" | "meta" => {
                if toks.len() != 3 {
                    return err(ln, format!("{} NAME WIDTH", toks[0]));
                }
                let width: u32 = toks[2].parse().map_err(|_| ParseError {
                    line: ln,
                    msg: format!("bad width {:?}", toks[2]),
                })?;
                if width > 64 {
                    return err(ln, "width exceeds 64");
                }
                if catalog.lookup(toks[1]).is_some() {
                    return err(ln, format!("duplicate attribute {:?}", toks[1]));
                }
                let kind = if toks[0] == "field" {
                    AttrKind::Field
                } else {
                    AttrKind::Meta
                };
                catalog.add(toks[1], kind, width);
            }
            "action" => {
                if toks.len() < 3 {
                    return err(ln, "action NAME output|goto|opaque|set TARGET");
                }
                if catalog.lookup(toks[1]).is_some() {
                    return err(ln, format!("duplicate attribute {:?}", toks[1]));
                }
                let sem = match toks[2] {
                    "output" => ActionSem::Output,
                    "goto" => ActionSem::Goto,
                    "opaque" => ActionSem::Opaque,
                    "set" => {
                        let target = toks.get(3).ok_or(ParseError {
                            line: ln,
                            msg: "set needs a TARGET field".into(),
                        })?;
                        let id = catalog.lookup(target).ok_or(ParseError {
                            line: ln,
                            msg: format!("unknown set target {target:?}"),
                        })?;
                        if !catalog.attr(id).kind.is_matchable() {
                            return err(ln, format!("set target {target:?} is not a field"));
                        }
                        ActionSem::SetField(id)
                    }
                    other => return err(ln, format!("unknown action kind {other:?}")),
                };
                catalog.action(toks[1], sem);
            }
            "table" => {
                // table NAME [a b | c d] miss=… next=…
                let open = line.find('[').ok_or(ParseError {
                    line: ln,
                    msg: "table needs a [matches | actions] schema".into(),
                })?;
                let close = line.find(']').ok_or(ParseError {
                    line: ln,
                    msg: "unterminated schema".into(),
                })?;
                let name = line[5..open].trim();
                if name.is_empty() {
                    return err(ln, "table needs a name");
                }
                let schema = &line[open + 1..close];
                let (ms, as_) = match schema.split_once('|') {
                    Some((m, a)) => (m, a),
                    None => (schema, ""),
                };
                let resolve = |names: &str, want_match: bool| -> Result<Vec<AttrId>, ParseError> {
                    names
                        .split_whitespace()
                        .map(|n| {
                            let id = catalog.lookup(n).ok_or(ParseError {
                                line: ln,
                                msg: format!("unknown attribute {n:?}"),
                            })?;
                            let is_match = catalog.attr(id).kind.is_matchable();
                            if is_match != want_match {
                                return err(
                                    ln,
                                    format!(
                                        "{n:?} is {} the | separator's wrong side",
                                        if want_match {
                                            "an action on"
                                        } else {
                                            "a field on"
                                        }
                                    ),
                                );
                            }
                            Ok(id)
                        })
                        .collect()
                };
                let mut t = Table::new(name, resolve(ms, true)?, resolve(as_, false)?);
                for opt in line[close + 1..].split_whitespace() {
                    if let Some(m) = opt.strip_prefix("miss=") {
                        t.miss = match m {
                            "drop" => MissPolicy::Drop,
                            "controller" => MissPolicy::Controller,
                            other => match other.strip_prefix("fall:") {
                                Some(tbl) => MissPolicy::Fall(tbl.to_owned()),
                                None => return err(ln, format!("bad miss policy {m:?}")),
                            },
                        };
                    } else if let Some(n) = opt.strip_prefix("next=") {
                        t.next = Some(n.to_owned());
                    } else {
                        return err(ln, format!("unknown table option {opt:?}"));
                    }
                }
                tables.push(t);
            }
            "start" => {
                if toks.len() != 2 {
                    return err(ln, "start NAME");
                }
                start = Some(toks[1].to_owned());
            }
            _ => {
                // An entry row of the most recent table.
                let Some(t) = tables.last_mut() else {
                    return err(ln, "entry before any table declaration");
                };
                let (ms, as_) = match line.split_once('|') {
                    Some((m, a)) => (m, a),
                    None => (line, ""),
                };
                let mcells: Vec<&str> = ms.split_whitespace().collect();
                let acells: Vec<&str> = as_.split_whitespace().collect();
                if mcells.len() != t.match_attrs.len() || acells.len() != t.action_attrs.len() {
                    return err(
                        ln,
                        format!(
                            "entry arity: expected {} match + {} action cells, got {} + {}",
                            t.match_attrs.len(),
                            t.action_attrs.len(),
                            mcells.len(),
                            acells.len()
                        ),
                    );
                }
                let matches = mcells
                    .iter()
                    .zip(&t.match_attrs)
                    .map(|(c, &a)| parse_cell(c, catalog.attr(a).width, true, ln))
                    .collect::<Result<Vec<_>, _>>()?;
                let actions = acells
                    .iter()
                    .zip(&t.action_attrs)
                    .map(|(c, _)| parse_cell(c, 64, false, ln))
                    .collect::<Result<Vec<_>, _>>()?;
                t.push(crate::table::Entry::new(matches, actions));
            }
        }
    }

    if tables.is_empty() {
        return err(0, "no tables declared");
    }
    let start = start.unwrap_or_else(|| tables[0].name.clone());
    if !tables.iter().any(|t| t.name == start) {
        return err(0, format!("start table {start:?} does not exist"));
    }
    Ok(Pipeline::new(catalog, tables, start))
}

fn parse_cell(tok: &str, width: u32, is_match: bool, ln: usize) -> Result<Value, ParseError> {
    if tok == "*" {
        return Ok(Value::Any);
    }
    if !is_match && tok == "-" {
        return Ok(Value::Any); // action no-op
    }
    // Binary prefix: 10*
    if let Some(bits_str) = tok.strip_suffix('*') {
        if !bits_str.is_empty() && bits_str.chars().all(|c| c == '0' || c == '1') {
            let len = bits_str.len() as u8;
            if u32::from(len) > width {
                return err(ln, format!("prefix {tok:?} longer than field width"));
            }
            let bits = u64::from_str_radix(bits_str, 2).expect("binary digits");
            return Ok(Value::prefix(bits << (width - u32::from(len)), len, width));
        }
    }
    // Dotted quad, optionally /len.
    if tok.contains('.') {
        let (addr, len) = match tok.split_once('/') {
            Some((a, l)) => (
                a,
                Some(l.parse::<u8>().map_err(|_| ParseError {
                    line: ln,
                    msg: format!("bad prefix length in {tok:?}"),
                })?),
            ),
            None => (tok, None),
        };
        let parts: Vec<&str> = addr.split('.').collect();
        if parts.len() == 4 && parts.iter().all(|p| p.parse::<u64>().is_ok()) {
            let mut v = 0u64;
            for p in parts {
                let o: u64 = p.parse().expect("checked");
                if o > 255 {
                    return err(ln, format!("bad octet in {tok:?}"));
                }
                v = (v << 8) | o;
            }
            return Ok(match len {
                Some(l) => {
                    if u32::from(l) > width {
                        return err(ln, format!("prefix {tok:?} longer than field width"));
                    }
                    Value::prefix(v, l, width)
                }
                None => Value::Int(v),
            });
        }
    }
    // addr/len on plain integers.
    if let Some((a, l)) = tok.split_once('/') {
        if let (Ok(v), Ok(len)) = (parse_int(a), l.parse::<u8>()) {
            if u32::from(len) > width {
                return err(ln, format!("prefix {tok:?} longer than field width"));
            }
            return Ok(Value::prefix(v, len, width));
        }
    }
    if let Ok(v) = parse_int(tok) {
        if width < 64 && v >= (1u64 << width) && is_match {
            return err(ln, format!("{tok:?} exceeds the field's {width} bits"));
        }
        return Ok(Value::Int(v));
    }
    if is_match {
        return err(ln, format!("{tok:?} is not a predicate"));
    }
    Ok(Value::sym(tok))
}

fn parse_int(tok: &str) -> Result<u64, std::num::ParseIntError> {
    if let Some(hex) = tok.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        tok.parse()
    }
}

/// Render a pipeline back into `.mat` text (parse ∘ format = identity up
/// to formatting; property-tested).
pub fn format_program(p: &Pipeline) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    for (_, a) in p.catalog.iter() {
        match &a.kind {
            AttrKind::Field => {
                let _ = writeln!(out, "field {} {}", a.name, a.width);
            }
            AttrKind::Meta => {
                let _ = writeln!(out, "meta {} {}", a.name, a.width);
            }
            AttrKind::Action(sem) => {
                let k = match sem {
                    ActionSem::Output => "output".to_owned(),
                    ActionSem::Goto => "goto".to_owned(),
                    ActionSem::Opaque => "opaque".to_owned(),
                    ActionSem::SetField(t) => format!("set {}", p.catalog.name(*t)),
                };
                let _ = writeln!(out, "action {} {}", a.name, k);
            }
        }
    }
    for t in &p.tables {
        let ms = t
            .match_attrs
            .iter()
            .map(|&a| p.catalog.name(a).to_owned())
            .collect::<Vec<_>>()
            .join(" ");
        let as_ = t
            .action_attrs
            .iter()
            .map(|&a| p.catalog.name(a).to_owned())
            .collect::<Vec<_>>()
            .join(" ");
        let mut hdr = format!("table {} [{ms} | {as_}]", t.name);
        match &t.miss {
            MissPolicy::Drop => {}
            MissPolicy::Controller => hdr.push_str(" miss=controller"),
            MissPolicy::Fall(n) => {
                let _ = write!(hdr, " miss=fall:{n}");
            }
        }
        if let Some(n) = &t.next {
            let _ = write!(hdr, " next={n}");
        }
        let _ = writeln!(out, "\n{hdr}");
        for e in &t.entries {
            let m = e
                .matches
                .iter()
                .map(format_cell)
                .collect::<Vec<_>>()
                .join(" ");
            let a = e
                .actions
                .iter()
                .map(|v| match v {
                    Value::Any => "-".to_owned(),
                    other => format_cell(other),
                })
                .collect::<Vec<_>>()
                .join(" ");
            let _ = writeln!(out, "  {m} | {a}");
        }
    }
    let _ = writeln!(out, "\nstart {}", p.start);
    out
}

fn format_cell(v: &Value) -> String {
    match v {
        Value::Any => "*".to_owned(),
        Value::Int(x) => format!("{x}"),
        Value::Prefix { bits, len } => format!("{bits:#x}/{len}"),
        Value::Ternary { bits, mask } => format!("{bits:#x}&{mask:#x}"),
        Value::Sym(s) => s.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::equiv::assert_equivalent;
    use crate::pipeline::Packet;

    const FIG1B: &str = r#"
# Fig. 1b, goto join
field ip_src 32
field ip_dst 32
field tcp_dst 16
action jump goto
action out output

table t0 [ip_dst tcp_dst | jump]
  192.0.2.1 80  | t1
  192.0.2.3 22  | t3

table t1 [ip_src | out]
  0* | vm1
  1* | vm2

table t3 [ip_src | out]
  *  | vm6

start t0
"#;

    #[test]
    fn parses_fig1b_flavour() {
        let p = parse_program(FIG1B).unwrap();
        assert_eq!(p.tables.len(), 3);
        assert_eq!(p.start, "t0");
        let pkt = Packet::from_fields(
            &p.catalog,
            &[("ip_src", 7), ("ip_dst", 0xc000_0201), ("tcp_dst", 80)],
        );
        let v = p.run(&pkt).unwrap();
        assert_eq!(v.output.as_deref(), Some("vm1"));
        let pkt = Packet::from_fields(
            &p.catalog,
            &[
                ("ip_src", 1 << 31),
                ("ip_dst", 0xc000_0201),
                ("tcp_dst", 80),
            ],
        );
        assert_eq!(p.run(&pkt).unwrap().output.as_deref(), Some("vm2"));
    }

    #[test]
    fn format_parse_roundtrip_is_equivalent() {
        let p = parse_program(FIG1B).unwrap();
        let text = format_program(&p);
        let q = parse_program(&text).unwrap();
        assert_equivalent(&p, &q);
        assert_eq!(p.catalog, q.catalog);
    }

    #[test]
    fn cell_kinds() {
        let src = r#"
field a 8
field b 32
field c 16
meta m 32
action set_m set m
action ttl opaque
table t [a b c | set_m ttl] miss=controller next=t2
  * 10.0.0.0/8 0x2a | 7 dec
  5 1.2.3.4 10/4    | - -
table t2 [a | ]
  * |
"#;
        let p = parse_program(src).unwrap();
        let t = p.table("t").unwrap();
        assert_eq!(t.entries[0].matches[0], Value::Any);
        assert_eq!(t.entries[0].matches[1], Value::prefix(0x0a00_0000, 8, 32));
        assert_eq!(t.entries[0].matches[2], Value::Int(0x2a));
        assert_eq!(t.entries[0].actions[0], Value::Int(7));
        assert_eq!(t.entries[0].actions[1], Value::sym("dec"));
        assert_eq!(t.entries[1].matches[1], Value::Int(0x0102_0304));
        assert_eq!(t.entries[1].matches[2], Value::prefix(10, 4, 16));
        assert_eq!(t.entries[1].actions[0], Value::Any);
        assert_eq!(t.miss, MissPolicy::Controller);
        assert_eq!(t.next.as_deref(), Some("t2"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let cases = [
            ("field f 99", "width exceeds"),
            ("action a set nope", "unknown set target"),
            ("table t [x | ]", "unknown attribute"),
            ("zork", "entry before any table"),
            ("field f 8\ntable t [f | ]\n  1 2 |", "entry arity"),
            ("field f 8\ntable t [f | ]\n  512 |", "exceeds the field"),
            (
                "field f 8\ntable t [f | ]\n  111111111* |",
                "longer than field width",
            ),
        ];
        for (src, want) in cases {
            let e = parse_program(src).unwrap_err();
            assert!(e.msg.contains(want), "{src:?} → {e}");
            assert!(e.line > 0);
        }
    }

    #[test]
    fn unknown_start_rejected() {
        let e = parse_program("field f 8\ntable t [f | ]\nstart zzz").unwrap_err();
        assert!(e.msg.contains("start table"));
    }

    #[test]
    fn binary_prefix_alignment() {
        let p = parse_program("field f 8\ntable t [f | ]\n  10* |").unwrap();
        assert_eq!(
            p.table("t").unwrap().entries[0].matches[0],
            Value::prefix(0b1000_0000, 2, 8)
        );
    }

    #[test]
    fn workload_pipelines_roundtrip_via_text() {
        // The GWLB universal table and its decompositions all survive
        // format → parse with semantics intact.
        let mut c = Catalog::new();
        let f = c.field("ip_src", 32);
        let g = c.field("ip_dst", 32);
        let m = c.meta("mm", 32);
        let set = c.action("tag", ActionSem::SetField(m));
        let out = c.action("out", ActionSem::Output);
        let mut t0 = Table::new("t0", vec![g], vec![set]);
        t0.row(vec![Value::Int(1)], vec![Value::Int(5)]);
        t0.next = Some("t1".into());
        let mut t1 = Table::new("t1", vec![m, f], vec![out]);
        t1.row(
            vec![Value::Int(5), Value::prefix(0, 1, 32)],
            vec![Value::sym("a")],
        );
        let p = Pipeline::new(c, vec![t0, t1], "t0");
        let q = parse_program(&format_program(&p)).unwrap();
        assert_equivalent(&p, &q);
    }
}
