//! Cell values of match-action tables.
//!
//! The paper's theory (§3) assumes exact-match predicates and treats every
//! distinct match expression as an opaque relational value; its examples use
//! prefixes (`0*`, `192.0.2.0/24`). We follow both conventions: [`Value`]
//! equality/hashing is *structural* — two cells holding `0.0.0.0/1` are the
//! same relational value, a cell holding `0.0.0.0/1` and one holding
//! `0.0.0.0/2` are different values — while the packet evaluator interprets
//! prefixes and ternary masks as the wildcard matches they denote.

use std::fmt;
use std::sync::Arc;

/// A single cell of a match-action table.
///
/// In a match column the value denotes a predicate over a `width`-bit packet
/// field; in an action column it is the action's parameter (an output port
/// name, a goto target, a value to write).
#[derive(
    Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub enum Value {
    /// Exact value: matches packets whose field equals `0`th variant payload.
    Int(u64),
    /// Prefix match: the top `len` bits of the field must equal the top
    /// `len` bits of `bits` (interpreted at the attribute's width). The low
    /// `width - len` bits of `bits` must be zero (enforced by [`Value::prefix`]).
    Prefix {
        /// Prefix bits, left-aligned within the attribute's width.
        bits: u64,
        /// Prefix length in bits.
        len: u8,
    },
    /// Ternary match: `packet & mask == bits & mask`. Only produced
    /// internally (e.g. by flow-cache collapse); program sources use
    /// `Int`/`Prefix`/`Any`.
    Ternary {
        /// Value bits; bits outside `mask` are ignored.
        bits: u64,
        /// Care mask: `1` bits participate in the comparison.
        mask: u64,
    },
    /// Wildcard: matches anything. As an action parameter, denotes "no-op".
    Any,
    /// Symbolic value: output port names (`vm1`), goto targets, next-hop
    /// labels. Never valid as a match predicate on a numeric field.
    Sym(Arc<str>),
}

impl Value {
    /// Construct a symbolic value.
    pub fn sym(s: impl AsRef<str>) -> Self {
        Value::Sym(Arc::from(s.as_ref()))
    }

    /// Construct a prefix value, normalizing the bits below the prefix
    /// length to zero so that structural equality coincides with predicate
    /// equality.
    ///
    /// # Panics
    /// Panics if `len > width` or `width > 64`.
    pub fn prefix(bits: u64, len: u8, width: u32) -> Self {
        assert!(width <= 64, "width {width} exceeds 64");
        assert!(
            u32::from(len) <= width,
            "prefix length {len} exceeds field width {width}"
        );
        let mask = prefix_mask(len, width);
        Value::Prefix {
            bits: bits & mask,
            len,
        }
    }

    /// True if this value may appear in a match column.
    pub fn is_predicate(&self) -> bool {
        !matches!(self, Value::Sym(_))
    }

    /// Does this predicate match the concrete field value `v`?
    ///
    /// `width` is the attribute's bit width; `v` must fit in it.
    pub fn matches(&self, v: u64, width: u32) -> bool {
        debug_assert!(width == 64 || v < (1u64 << width), "value out of range");
        match *self {
            Value::Int(x) => v == x,
            Value::Prefix { bits, len } => {
                let m = prefix_mask(len, width);
                v & m == bits
            }
            Value::Ternary { bits, mask } => (v ^ bits) & mask == 0,
            Value::Any => true,
            Value::Sym(_) => false,
        }
    }

    /// Do the packet sets denoted by two predicates intersect?
    ///
    /// Used by the 1NF *order-independence* check (§3): a table is
    /// order-independent iff no two entries can match the same packet, i.e.
    /// every entry pair has at least one field with disjoint predicates.
    pub fn intersects(&self, other: &Value, width: u32) -> bool {
        use Value::*;
        match (self, other) {
            (Sym(_), _) | (_, Sym(_)) => false,
            (Any, _) | (_, Any) => true,
            (Int(a), Int(b)) => a == b,
            (Int(v), p @ Prefix { .. }) | (p @ Prefix { .. }, Int(v)) => p.matches(*v, width),
            (Int(v), t @ Ternary { .. }) | (t @ Ternary { .. }, Int(v)) => t.matches(*v, width),
            (Prefix { bits: b1, len: l1 }, Prefix { bits: b2, len: l2 }) => {
                // Two prefixes overlap iff one is a prefix of the other.
                let l = (*l1).min(*l2);
                let m = prefix_mask(l, width);
                b1 & m == b2 & m
            }
            (Prefix { bits, len }, Ternary { bits: tb, mask })
            | (Ternary { bits: tb, mask }, Prefix { bits, len }) => {
                let pm = prefix_mask(*len, width);
                (bits ^ tb) & pm & mask == 0
            }
            (Ternary { bits: b1, mask: m1 }, Ternary { bits: b2, mask: m2 }) => {
                (b1 ^ b2) & m1 & m2 == 0
            }
        }
    }

    /// Intersection of two predicates as a predicate, if representable.
    ///
    /// Returns `None` when the intersection is empty. Used by pipeline
    /// flattening (denormalization) to conjoin successive matches on the
    /// same field.
    pub fn intersect(&self, other: &Value, width: u32) -> Option<Value> {
        use Value::*;
        if !self.intersects(other, width) {
            return None;
        }
        Some(match (self, other) {
            (Any, v) | (v, Any) => v.clone(),
            (Int(a), _) => Int(*a),
            (_, Int(b)) => Int(*b),
            (a @ Prefix { len: l1, .. }, b @ Prefix { len: l2, .. }) => {
                if l1 >= l2 {
                    a.clone()
                } else {
                    b.clone()
                }
            }
            (Prefix { bits, len }, Ternary { bits: tb, mask })
            | (Ternary { bits: tb, mask }, Prefix { bits, len }) => {
                let pm = prefix_mask(*len, width);
                Ternary {
                    bits: (bits & pm) | (tb & mask & !pm),
                    mask: pm | mask,
                }
            }
            (Ternary { bits: b1, mask: m1 }, Ternary { bits: b2, mask: m2 }) => Ternary {
                bits: (b1 & m1) | (b2 & m2 & !m1),
                mask: m1 | m2,
            },
            (Sym(_), _) | (_, Sym(_)) => unreachable!("intersects() rejected syms"),
        })
    }

    /// The `(bits, mask)` ternary form of this predicate: it matches `v`
    /// iff `v & mask == bits`. Every predicate kind has one (`Int` with a
    /// full mask, `Prefix` with a prefix mask, `Any` with an empty mask);
    /// symbolic values, which match nothing, have none.
    ///
    /// The returned mask is trimmed to the low `width` bits and the bits
    /// are trimmed to the mask, so two predicates denote the same packet
    /// set iff their ternary forms are equal. This canonical form is the
    /// basis of the cover/subsumption algebra used by the static analyzer
    /// and reusable by ternary classifiers.
    pub fn as_ternary(&self, width: u32) -> Option<(u64, u64)> {
        let full = low_mask(width);
        match *self {
            Value::Int(x) => Some((x & full, full)),
            Value::Prefix { bits, len } => {
                let m = prefix_mask(len, width);
                Some((bits & m, m))
            }
            Value::Ternary { bits, mask } => {
                let m = mask & full;
                Some((bits & m, m))
            }
            Value::Any => Some((0, 0)),
            Value::Sym(_) => None,
        }
    }

    /// Does this predicate *cover* `other` — i.e. does every `width`-bit
    /// value matching `other` also match `self`?
    ///
    /// In ternary form, `A ⊇ B` iff `A` cares about a subset of `B`'s bits
    /// and agrees with `B` on all of them. Symbolic values match nothing,
    /// so everything subsumes them and they subsume only each other.
    ///
    /// This is the subsumption half of the ternary-cover algebra that
    /// shadowed-/dead-entry detection in `mapro-lint` is built on
    /// (property-tested against enumeration in `tests/value_properties.rs`).
    pub fn subsumes(&self, other: &Value, width: u32) -> bool {
        match (self.as_ternary(width), other.as_ternary(width)) {
            // `other` matches nothing: vacuously covered.
            (_, None) => true,
            // `self` matches nothing but `other` is satisfiable (every
            // ternary form matches at least one value).
            (None, Some(_)) => false,
            (Some((sb, sm)), Some((ob, om))) => sm & om == sm && (sb ^ ob) & sm == 0,
        }
    }

    /// The interval `[lo, hi]` of field values this predicate covers, if it
    /// is interval-shaped (exact values, prefixes, and wildcards are; general
    /// ternary masks are not).
    ///
    /// Interval endpoints drive the derivation of per-field representative
    /// packet values for exhaustive equivalence checking (see
    /// [`crate::domain`]).
    pub fn interval(&self, width: u32) -> Option<(u64, u64)> {
        match *self {
            Value::Int(x) => Some((x, x)),
            Value::Prefix { bits, len } => {
                let span = if u32::from(len) == width {
                    0
                } else {
                    low_mask(width - u32::from(len))
                };
                Some((bits, bits | span))
            }
            Value::Any => Some((0, low_mask(width))),
            Value::Ternary { bits, mask } => {
                // A ternary whose mask is a prefix mask (within the field
                // width) is interval-shaped.
                let full = low_mask(width);
                let m = mask & full;
                let is_prefix_mask = m == 0
                    || (64 - m.leading_zeros() == width // ones start at the top bit
                        && (m >> m.trailing_zeros()).wrapping_add(1).is_power_of_two());
                if is_prefix_mask {
                    Some((bits & m, (bits & m) | (full & !m)))
                } else {
                    None
                }
            }
            Value::Sym(_) => None,
        }
    }
}

/// Mask selecting the top `len` bits of a `width`-bit field.
#[inline]
pub fn prefix_mask(len: u8, width: u32) -> u64 {
    let len = u32::from(len);
    debug_assert!(len <= width && width <= 64);
    if len == 0 {
        0
    } else {
        (!0u64 << (width - len)) & low_mask(width)
    }
}

/// Mask of the low `n` bits.
#[inline]
pub fn low_mask(n: u32) -> u64 {
    if n >= 64 {
        !0
    } else {
        (1u64 << n) - 1
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(x) => write!(f, "{x}"),
            Value::Prefix { bits, len } => write!(f, "{bits:#x}/{len}"),
            Value::Ternary { bits, mask } => write!(f, "{bits:#x}&{mask:#x}"),
            Value::Any => write!(f, "*"),
            Value::Sym(s) => write!(f, "{s}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_match() {
        assert!(Value::Int(5).matches(5, 16));
        assert!(!Value::Int(5).matches(6, 16));
    }

    #[test]
    fn prefix_match_and_normalization() {
        // 10* on a 4-bit field: matches 0b1000..0b1011.
        let p = Value::prefix(0b1010, 2, 4); // low bits normalized away
        assert_eq!(
            p,
            Value::Prefix {
                bits: 0b1000,
                len: 2
            }
        );
        assert!(p.matches(0b1000, 4));
        assert!(p.matches(0b1011, 4));
        assert!(!p.matches(0b0100, 4));
        assert!(!p.matches(0b1100, 4));
    }

    #[test]
    fn zero_length_prefix_matches_everything() {
        let p = Value::prefix(0, 0, 32);
        assert!(p.matches(0, 32));
        assert!(p.matches(u32::MAX as u64, 32));
    }

    #[test]
    fn full_length_prefix_is_exact() {
        let p = Value::prefix(0xdeadbeef, 32, 32);
        assert!(p.matches(0xdeadbeef, 32));
        assert!(!p.matches(0xdeadbee0, 32));
    }

    #[test]
    fn ternary_match() {
        let t = Value::Ternary {
            bits: 0b1010,
            mask: 0b1110,
        };
        assert!(t.matches(0b1010, 4));
        assert!(t.matches(0b1011, 4));
        assert!(!t.matches(0b0010, 4));
    }

    #[test]
    fn any_matches_everything_sym_matches_nothing() {
        assert!(Value::Any.matches(123, 32));
        assert!(!Value::sym("vm1").matches(0, 32));
    }

    #[test]
    fn prefix_intersection_is_prefix_containment() {
        let w = 32;
        let a = Value::prefix(0x8000_0000, 1, w); // 1*
        let b = Value::prefix(0xc000_0000, 2, w); // 11*
        let c = Value::prefix(0x0000_0000, 1, w); // 0*
        assert!(a.intersects(&b, w));
        assert!(b.intersects(&a, w));
        assert!(!a.intersects(&c, w));
        assert_eq!(a.intersect(&b, w), Some(b.clone()));
        assert_eq!(a.intersect(&c, w), None);
    }

    #[test]
    fn int_prefix_intersection() {
        let w = 32;
        let p = Value::prefix(0x0a00_0000, 8, w); // 10.0.0.0/8
        assert!(p.intersects(&Value::Int(0x0a01_0203), w));
        assert!(!p.intersects(&Value::Int(0x0b01_0203), w));
        assert_eq!(
            p.intersect(&Value::Int(0x0a01_0203), w),
            Some(Value::Int(0x0a01_0203))
        );
    }

    #[test]
    fn any_intersection_yields_other() {
        let v = Value::Int(7);
        assert_eq!(Value::Any.intersect(&v, 8), Some(v.clone()));
        assert_eq!(v.intersect(&Value::Any, 8), Some(v));
    }

    #[test]
    fn sym_never_intersects() {
        assert!(!Value::sym("a").intersects(&Value::Any, 8));
        assert!(!Value::Any.intersects(&Value::sym("a"), 8));
    }

    #[test]
    fn intervals() {
        assert_eq!(Value::Int(9).interval(8), Some((9, 9)));
        assert_eq!(Value::Any.interval(8), Some((0, 255)));
        assert_eq!(
            Value::prefix(0b1000_0000, 1, 8).interval(8),
            Some((128, 255))
        );
        // Non-contiguous ternary has no interval.
        let t = Value::Ternary {
            bits: 0b101,
            mask: 0b101,
        };
        assert_eq!(t.interval(8), None);
        // Prefix-shaped ternary does.
        let t = Value::Ternary {
            bits: 0xf0,
            mask: 0xf0,
        };
        assert_eq!(t.interval(8), Some((0xf0, 0xff)));
    }

    #[test]
    fn ternary_ternary_intersection() {
        let a = Value::Ternary {
            bits: 0b1100,
            mask: 0b1100,
        };
        let b = Value::Ternary {
            bits: 0b0011,
            mask: 0b0011,
        };
        let i = a.intersect(&b, 4).unwrap();
        assert!(i.matches(0b1111, 4));
        assert!(!i.matches(0b1110, 4));
        assert!(!i.matches(0b0111, 4));
    }

    #[test]
    fn structural_equality_treats_prefixes_as_opaque_values() {
        // §3: the relational layer treats 0/1 and 0/2 as *different* values
        // even though one contains the other.
        let a = Value::prefix(0, 1, 32);
        let b = Value::prefix(0, 2, 32);
        assert_ne!(a, b);
    }

    #[test]
    fn ternary_form_is_canonical() {
        let w = 8;
        assert_eq!(Value::Int(5).as_ternary(w), Some((5, 0xff)));
        assert_eq!(Value::Any.as_ternary(w), Some((0, 0)));
        assert_eq!(
            Value::prefix(0b1100_0000, 2, w).as_ternary(w),
            Some((0b1100_0000, 0b1100_0000))
        );
        // Don't-care bits and out-of-width mask bits are trimmed away.
        assert_eq!(
            Value::Ternary {
                bits: 0xffff,
                mask: 0x10f
            }
            .as_ternary(w),
            Some((0x0f, 0x0f))
        );
        assert_eq!(Value::sym("p").as_ternary(w), None);
    }

    #[test]
    fn subsumption_is_cover() {
        let w = 8;
        let any = Value::Any;
        let p = Value::prefix(0b1000_0000, 1, w); // 1*
        let q = Value::prefix(0b1100_0000, 2, w); // 11*
        let x = Value::Int(0b1100_0001);
        assert!(any.subsumes(&p, w) && !p.subsumes(&any, w));
        assert!(p.subsumes(&q, w) && !q.subsumes(&p, w));
        assert!(q.subsumes(&x, w) && !x.subsumes(&q, w));
        assert!(x.subsumes(&x, w));
        // Disjoint prefixes subsume in neither direction.
        let z = Value::prefix(0, 1, w); // 0*
        assert!(!z.subsumes(&q, w) && !q.subsumes(&z, w));
        // Syms match nothing: subsumed by anything, subsume only syms.
        assert!(x.subsumes(&Value::sym("a"), w));
        assert!(Value::sym("a").subsumes(&Value::sym("b"), w));
        assert!(!Value::sym("a").subsumes(&x, w));
    }

    #[test]
    fn prefix_mask_limits() {
        assert_eq!(prefix_mask(0, 32), 0);
        assert_eq!(prefix_mask(32, 32), 0xffff_ffff);
        assert_eq!(prefix_mask(64, 64), !0);
        assert_eq!(prefix_mask(1, 32), 0x8000_0000);
    }
}
