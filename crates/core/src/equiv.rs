//! Semantic-equivalence checking between pipeline representations.
//!
//! §4 of the paper proves (Theorem 1) that decomposition along a functional
//! dependency preserves semantics. This module provides the *mechanical*
//! counterpart used throughout the test suite and by the transformation
//! engine's verification mode: evaluate both pipelines over the derived
//! finite domain (see [`crate::domain`]) and compare observable verdicts.

use crate::attr::AttrId;
use crate::domain::{Domain, DomainError};
use crate::pipeline::{EvalError, Packet, Pipeline, Verdict};
use mapro_par::{CancelToken, Pool};

/// How an equivalence verdict was reached.
///
/// Only [`CheckMethod::Sampled`] verdicts are incomplete; the other two are
/// proofs. Surfaced in CLI/repro output so a sampled "equivalent" is never
/// mistaken for one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMethod {
    /// Every packet of the derived Cartesian domain was evaluated.
    Exhaustive,
    /// The domain was too large; a deterministic sample was evaluated.
    Sampled,
    /// Behavior covers were compared symbolically (every packet is covered
    /// by exactly one ternary atom, so this is a complete check).
    Symbolic,
}

impl std::fmt::Display for CheckMethod {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckMethod::Exhaustive => write!(f, "exhaustive"),
            CheckMethod::Sampled => write!(f, "sampled"),
            CheckMethod::Symbolic => write!(f, "symbolic"),
        }
    }
}

/// Outcome of an equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivOutcome {
    /// No distinguishing packet exists in the checked set.
    Equivalent {
        /// How many packets were evaluated (for [`CheckMethod::Symbolic`]:
        /// how many non-empty atom intersections were compared).
        packets_checked: usize,
        /// True if the full Cartesian product was enumerated (complete
        /// check); false if the product was sampled.
        exhaustive: bool,
        /// How the verdict was decided.
        method: CheckMethod,
    },
    /// A packet on which the two pipelines disagree.
    Counterexample(Box<Counterexample>),
}

impl EquivOutcome {
    /// True for [`EquivOutcome::Equivalent`].
    pub fn is_equivalent(&self) -> bool {
        matches!(self, EquivOutcome::Equivalent { .. })
    }
}

/// A distinguishing packet and the two verdicts.
#[derive(Debug, Clone, PartialEq)]
pub struct Counterexample {
    /// The input packet.
    pub packet: Packet,
    /// Human-readable field assignment of the packet.
    pub fields: Vec<(String, u64)>,
    /// Verdict of the first pipeline.
    pub left: Verdict,
    /// Verdict of the second pipeline.
    pub right: Verdict,
}

/// Errors during an equivalence check.
#[derive(Debug, Clone, PartialEq)]
pub enum EquivError {
    /// A pipeline contains predicates outside the decidable fragment.
    Domain(DomainError),
    /// A pipeline failed to evaluate (goto cycle, bad action parameters).
    Eval(EvalError),
    /// The two pipelines disagree on what a header field id means, so a
    /// shared packet cannot be constructed (comparing unrelated programs).
    IncompatibleCatalogs {
        /// The disagreeing attribute id.
        attr: AttrId,
        /// Its name in the left catalog (if present).
        left: Option<String>,
        /// Its name in the right catalog (if present).
        right: Option<String>,
    },
    /// [`EquivMode::Symbolic`] was requested but the program contains a
    /// construct the symbolic compiler cannot express (reachable goto
    /// cycle, unknown goto target, malformed action parameter, or an
    /// exhausted atom/partition budget). Under [`EquivMode::Auto`] these
    /// cases silently fall back to the enumerative engine instead.
    SymbolicUnsupported(String),
}

impl From<DomainError> for EquivError {
    fn from(e: DomainError) -> Self {
        EquivError::Domain(e)
    }
}

impl From<EvalError> for EquivError {
    fn from(e: EvalError) -> Self {
        EquivError::Eval(e)
    }
}

impl std::fmt::Display for EquivError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EquivError::Domain(e) => write!(f, "domain derivation failed: {e}"),
            EquivError::Eval(e) => write!(f, "evaluation failed: {e}"),
            EquivError::IncompatibleCatalogs { attr, left, right } => write!(
                f,
                "programs are not comparable: field {attr} is {left:?} on the left but {right:?} on the right"
            ),
            EquivError::SymbolicUnsupported(why) => {
                write!(f, "symbolic equivalence unsupported: {why}")
            }
        }
    }
}

impl std::error::Error for EquivError {}

/// Which engine decides an equivalence query.
///
/// This crate only implements the enumerative engine; the symbolic one
/// lives in `mapro-sym`, whose `check_equivalent` front door dispatches on
/// this mode (and is what the umbrella `mapro` prelude re-exports).
/// Calling [`check_equivalent`] here directly treats `Auto` as the
/// enumerative fallback and rejects an explicit `Symbolic` request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EquivMode {
    /// Prefer the symbolic engine; fall back to enumeration for constructs
    /// the cube compiler cannot express.
    #[default]
    Auto,
    /// Symbolic only: unsupported constructs are an error
    /// ([`EquivError::SymbolicUnsupported`]), never silently enumerated.
    Symbolic,
    /// Enumerative only (the cross-check oracle): exhaustive up to
    /// [`EquivConfig::max_exhaustive`], sampled beyond it.
    Enumerate,
}

/// Configuration for [`check_equivalent`].
#[derive(Debug, Clone)]
pub struct EquivConfig {
    /// Enumerate the full product only if it has at most this many packets;
    /// otherwise fall back to deterministic sampling.
    pub max_exhaustive: u128,
    /// Sample size when the product is too large.
    pub samples: usize,
    /// Seed for the sampling fallback.
    pub seed: u64,
    /// Engine selection (see [`EquivMode`]).
    pub mode: EquivMode,
}

impl Default for EquivConfig {
    fn default() -> Self {
        EquivConfig {
            max_exhaustive: 2_000_000,
            samples: 200_000,
            seed: 0x6d61_7072_6f31_3919, // "mapro19" tag — any fixed value works
            mode: EquivMode::Auto,
        }
    }
}

/// A chunk scan's terminating event: the first counterexample or the
/// first evaluation error in that chunk's index range. Combined across
/// chunks by lowest-chunk-wins, which reproduces serial domain order.
enum ChunkEvent {
    Cx(Box<Counterexample>),
    Fail(EquivError),
}

/// How many product indices one pool task scans. Fixed — never derived
/// from the thread count — so the chunk grid (and therefore which packet
/// each task sees) is identical at any pool size.
const EQUIV_CHUNK: usize = 4096;

/// How often a chunk scan polls for supersession/cancellation.
const POLL_EVERY: usize = 512;

/// Check whether two pipelines are observationally equivalent on all packets
/// of their joint derived domain.
///
/// Completeness holds when the check is exhaustive (see
/// [`EquivOutcome::Equivalent::exhaustive`]) and both pipelines draw match
/// predicates from the interval-shaped fragment.
///
/// The scan runs on the global [`Pool`] (sized by `--threads` /
/// `MAPRO_THREADS`, defaulting to all cores): the domain product is split
/// into fixed index ranges, ranges are checked in parallel with
/// cancel-on-counterexample, and the reported counterexample is always the
/// **first in domain enumeration order** — output is byte-identical at any
/// thread count.
pub fn check_equivalent(
    left: &Pipeline,
    right: &Pipeline,
    cfg: &EquivConfig,
) -> Result<EquivOutcome, EquivError> {
    if cfg.mode == EquivMode::Symbolic {
        return Err(EquivError::SymbolicUnsupported(
            "the enumerative engine cannot honor EquivMode::Symbolic; \
             use the mode-dispatching front door in mapro-sym"
                .to_owned(),
        ));
    }
    let domain = Domain::from_pipelines(&[left, right])?;
    // The packets we construct assign values by attribute id; both programs
    // must agree on what each participating field id denotes.
    for (attr, _) in &domain.fields {
        let l = (attr.index() < left.catalog.len()).then(|| left.catalog.attr(*attr));
        let r = (attr.index() < right.catalog.len()).then(|| right.catalog.attr(*attr));
        let same = matches!((l, r), (Some(a), Some(b)) if a.name == b.name && a.width == b.width);
        if !same {
            return Err(EquivError::IncompatibleCatalogs {
                attr: *attr,
                left: l.map(|a| a.name.clone()),
                right: r.map(|a| a.name.clone()),
            });
        }
    }
    let proto_l = Packet::zero(&left.catalog);
    let li = left.name_index();
    let ri = right.name_index();

    let check_one = |pkt: &Packet| -> Result<Option<Counterexample>, EquivError> {
        // The two catalogs agree on Field attributes by construction of the
        // transformations (fields are never renumbered); run the same packet
        // through both.
        let vl = left.run_indexed(pkt, &li)?;
        let vr = right.run_indexed(pkt, &ri)?;
        if vl.observable() != vr.observable() {
            let fields = domain
                .fields
                .iter()
                .map(|(a, _)| (left.catalog.name(*a).to_owned(), pkt.get(*a)))
                .collect();
            return Ok(Some(Counterexample {
                packet: pkt.clone(),
                fields,
                left: vl,
                right: vr,
            }));
        }
        Ok(None)
    };

    mapro_obs::counter!("equiv.checks").inc();
    let _sp = mapro_obs::trace::span("enumerate");
    let pool = Pool::current();
    let size = domain.product_size();
    if size <= cfg.max_exhaustive && size <= usize::MAX as u128 {
        let n = size as usize;
        mapro_obs::counter!("equiv.packets").add(n as u64);
        let chunks = mapro_par::chunk_ranges(n, EQUIV_CHUNK);
        let hit = pool.find_first(chunks.len(), &CancelToken::new(), |ci, ctl| {
            let _t = mapro_obs::time!("equiv.chunk_ns");
            let _c = mapro_obs::trace::span_kv("chunk", vec![("chunk", ci.into())]);
            let range = &chunks[ci];
            let mut scanned = 0usize;
            for pkt in domain.packets_range(&proto_l, range.start as u128, range.len()) {
                scanned += 1;
                if scanned.is_multiple_of(POLL_EVERY) && ctl.superseded(ci) {
                    return None; // a lower-indexed chunk already hit
                }
                match check_one(&pkt) {
                    Ok(None) => {}
                    Ok(Some(cx)) => return Some(ChunkEvent::Cx(Box::new(cx))),
                    Err(e) => return Some(ChunkEvent::Fail(e)),
                }
            }
            None
        });
        match hit {
            None => Ok(EquivOutcome::Equivalent {
                packets_checked: n,
                exhaustive: true,
                method: CheckMethod::Exhaustive,
            }),
            Some(ChunkEvent::Cx(cx)) => Ok(EquivOutcome::Counterexample(cx)),
            Some(ChunkEvent::Fail(e)) => Err(e),
        }
    } else {
        // Deduplicate the drawn packets before checking: the splitmix64
        // stream may repeat representatives (it *will* on small per-field
        // domains), and duplicates both waste checking work and overstate
        // `packets_checked`. First-occurrence order is kept so the
        // reported counterexample matches the draw order at any thread
        // count.
        let pkts = domain.sample(&proto_l, cfg.samples, cfg.seed);
        let mut seen = std::collections::HashSet::with_capacity(pkts.len());
        let pkts: Vec<Packet> = pkts
            .into_iter()
            .filter(|p| {
                let key: Vec<u64> = domain.fields.iter().map(|(a, _)| p.get(*a)).collect();
                seen.insert(key)
            })
            .collect();
        mapro_obs::counter!("equiv.packets").add(pkts.len() as u64);
        let chunks = mapro_par::chunk_ranges(pkts.len(), EQUIV_CHUNK);
        let hit = pool.find_first(chunks.len(), &CancelToken::new(), |ci, ctl| {
            let _t = mapro_obs::time!("equiv.chunk_ns");
            let _c = mapro_obs::trace::span_kv("chunk", vec![("chunk", ci.into())]);
            for (off, pkt) in pkts[chunks[ci].clone()].iter().enumerate() {
                if off % POLL_EVERY == POLL_EVERY - 1 && ctl.superseded(ci) {
                    return None;
                }
                match check_one(pkt) {
                    Ok(None) => {}
                    Ok(Some(cx)) => return Some(ChunkEvent::Cx(Box::new(cx))),
                    Err(e) => return Some(ChunkEvent::Fail(e)),
                }
            }
            None
        });
        match hit {
            None => Ok(EquivOutcome::Equivalent {
                packets_checked: pkts.len(),
                exhaustive: false,
                method: CheckMethod::Sampled,
            }),
            Some(ChunkEvent::Cx(cx)) => Ok(EquivOutcome::Counterexample(cx)),
            Some(ChunkEvent::Fail(e)) => Err(e),
        }
    }
}

/// Convenience wrapper asserting equivalence with default configuration.
///
/// # Panics
/// Panics with a readable counterexample if the pipelines differ, or on
/// evaluation errors. Intended for tests and transformation verification.
pub fn assert_equivalent(left: &Pipeline, right: &Pipeline) {
    match check_equivalent(left, right, &EquivConfig::default()) {
        Ok(EquivOutcome::Equivalent { .. }) => {}
        Ok(EquivOutcome::Counterexample(cx)) => {
            panic!(
                "pipelines differ on packet {:?}:\n left: {:?}\n right: {:?}",
                cx.fields, cx.left, cx.right
            );
        }
        Err(e) => panic!("equivalence check failed: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{ActionSem, Catalog};
    use crate::table::Table;
    use crate::value::Value;

    fn out_table(rows: &[(u64, &str)]) -> Pipeline {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f], vec![out]);
        for &(v, port) in rows {
            t.row(vec![Value::Int(v)], vec![Value::sym(port)]);
        }
        Pipeline::single(c, t)
    }

    #[test]
    fn identical_pipelines_equivalent() {
        let a = out_table(&[(1, "x"), (2, "y")]);
        let b = out_table(&[(1, "x"), (2, "y")]);
        let r = check_equivalent(&a, &b, &EquivConfig::default()).unwrap();
        assert!(r.is_equivalent());
        if let EquivOutcome::Equivalent {
            packets_checked,
            exhaustive,
            method,
        } = r
        {
            assert!(exhaustive);
            assert_eq!(method, CheckMethod::Exhaustive);
            assert_eq!(packets_checked, 4); // boundary values {0, 1, 2, 3}
        }
    }

    #[test]
    fn entry_order_irrelevant_when_disjoint() {
        let a = out_table(&[(1, "x"), (2, "y")]);
        let b = out_table(&[(2, "y"), (1, "x")]);
        assert!(check_equivalent(&a, &b, &EquivConfig::default())
            .unwrap()
            .is_equivalent());
    }

    #[test]
    fn differing_output_found() {
        let a = out_table(&[(1, "x")]);
        let b = out_table(&[(1, "y")]);
        let r = check_equivalent(&a, &b, &EquivConfig::default()).unwrap();
        match r {
            EquivOutcome::Counterexample(cx) => {
                assert_eq!(cx.fields, vec![("f".to_owned(), 1)]);
                assert_eq!(cx.left.output.as_deref(), Some("x"));
                assert_eq!(cx.right.output.as_deref(), Some("y"));
            }
            _ => panic!("expected counterexample"),
        }
    }

    #[test]
    fn missing_entry_found() {
        let a = out_table(&[(1, "x"), (2, "y")]);
        let b = out_table(&[(1, "x")]);
        let r = check_equivalent(&a, &b, &EquivConfig::default()).unwrap();
        assert!(!r.is_equivalent());
    }

    #[test]
    #[should_panic(expected = "pipelines differ")]
    fn assert_equivalent_panics_with_counterexample() {
        let a = out_table(&[(1, "x")]);
        let b = out_table(&[(1, "y")]);
        assert_equivalent(&a, &b);
    }

    #[test]
    fn incompatible_catalogs_rejected() {
        let a = out_table(&[(1, "x")]);
        let mut c = Catalog::new();
        c.field("completely_different", 16);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new(
            "t",
            vec![c.lookup("completely_different").unwrap()],
            vec![out],
        );
        t.row(vec![Value::Int(1)], vec![Value::sym("x")]);
        let b = Pipeline::single(c, t);
        assert!(matches!(
            check_equivalent(&a, &b, &EquivConfig::default()),
            Err(EquivError::IncompatibleCatalogs { .. })
        ));
    }

    #[test]
    fn sampling_mode_triggers_on_huge_products() {
        let a = out_table(&[(1, "x")]);
        let b = out_table(&[(1, "x")]);
        let cfg = EquivConfig {
            max_exhaustive: 0,
            samples: 50,
            seed: 7,
            ..EquivConfig::default()
        };
        match check_equivalent(&a, &b, &cfg).unwrap() {
            EquivOutcome::Equivalent {
                exhaustive,
                packets_checked,
                method,
            } => {
                assert!(!exhaustive);
                assert_eq!(method, CheckMethod::Sampled);
                // The derived domain has 3 representatives ({0,1,2}); 50
                // draws collapse to the distinct packets actually checked.
                assert_eq!(packets_checked, 3);
            }
            _ => panic!(),
        }
    }

    /// The enumerative engine cannot satisfy an explicit symbolic-only
    /// request; it must refuse rather than silently enumerate.
    #[test]
    fn explicit_symbolic_mode_rejected_by_enumerative_engine() {
        let a = out_table(&[(1, "x")]);
        let b = out_table(&[(1, "x")]);
        let cfg = EquivConfig {
            mode: EquivMode::Symbolic,
            ..EquivConfig::default()
        };
        assert!(matches!(
            check_equivalent(&a, &b, &cfg),
            Err(EquivError::SymbolicUnsupported(_))
        ));
    }

    /// Regression: sampled draws are deduplicated before checking, so
    /// `packets_checked` reports distinct packets, never the raw draw
    /// count (which used to overstate coverage on small domains).
    #[test]
    fn sampling_deduplicates_drawn_packets() {
        let a = out_table(&[(1, "x"), (2, "y")]);
        let b = out_table(&[(1, "x"), (2, "y")]);
        // Domain of f: {0, 1, 2, 3} — 4 distinct representatives.
        let cfg = EquivConfig {
            max_exhaustive: 0,
            samples: 10_000,
            seed: 99,
            ..EquivConfig::default()
        };
        match check_equivalent(&a, &b, &cfg).unwrap() {
            EquivOutcome::Equivalent {
                exhaustive,
                packets_checked,
                ..
            } => {
                assert!(!exhaustive);
                assert!(
                    packets_checked <= 4,
                    "only distinct packets count (got {packets_checked})"
                );
                assert_eq!(packets_checked, 4, "10k draws surely cover all 4");
            }
            _ => panic!("expected equivalence"),
        }
        // Dedup must not mask a counterexample reachable by sampling.
        let c = out_table(&[(1, "x"), (2, "z")]);
        assert!(!check_equivalent(&a, &c, &cfg).unwrap().is_equivalent());
    }
}
