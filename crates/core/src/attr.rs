//! Attributes of a match-action program.
//!
//! Following §3 of the paper, *header fields and actions are collectively
//! called attributes*. A match-action table is a relation over a set of
//! attributes; an action attribute's "value" in a row is the action's
//! parameter (e.g. `out = vm1`). This uniform treatment is what allows
//! candidate keys to contain actions (the `(out)` key of Fig. 1a) and
//! functional dependencies to relate actions to fields.

use std::collections::HashMap;
use std::fmt;

/// Index of an attribute in a [`Catalog`].
///
/// Attribute ids are program-wide: every table of a pipeline draws its match
/// and action columns from the same catalog, so ids can be compared across
/// tables (as decomposition requires).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, serde::Serialize, serde::Deserialize,
)]
pub struct AttrId(pub u32);

impl AttrId {
    /// The attribute's position in its catalog.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AttrId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}", self.0)
    }
}

/// What an action attribute *does* when its row is selected.
///
/// The relational theory of the paper never inspects these semantics — rows
/// are just tuples of opaque values — but the pipeline evaluator needs them
/// to compute a packet's fate, and the decomposition engine needs to know
/// which attributes are `Goto`/`WriteMeta` plumbing it may introduce.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum ActionSem {
    /// Forward the packet on the port named by the cell value
    /// (NetKAT `out(r)`).
    Output,
    /// Continue processing at the table named by the cell value
    /// (OpenFlow `goto_table`).
    Goto,
    /// Write the cell value into the given (metadata or header) field
    /// (NetKAT `f ← v`). Used both for explicit metadata tags (Fig. 1c)
    /// and for header rewrites such as `mod_smac` (Fig. 2).
    SetField(AttrId),
    /// An action the evaluator applies as an opaque packet transformation
    /// identified by `(attribute name, cell value)`; it participates in
    /// equivalence checking as part of the externally visible verdict.
    Opaque,
}

/// The kind of an attribute: a matchable field or an action column.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum AttrKind {
    /// A header field carried by packets on the wire.
    Field,
    /// A metadata (scratch) field: matchable like a header field, but not
    /// part of the externally visible packet, hence excluded from
    /// equivalence verdicts. Introduced by metadata-based joins (§4).
    Meta,
    /// An action column with the given semantics.
    Action(ActionSem),
}

impl AttrKind {
    /// True for `Field` and `Meta` — anything a table may match on.
    #[inline]
    pub fn is_matchable(&self) -> bool {
        matches!(self, AttrKind::Field | AttrKind::Meta)
    }

    /// True for action columns.
    #[inline]
    pub fn is_action(&self) -> bool {
        matches!(self, AttrKind::Action(_))
    }
}

/// A named, typed attribute.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Attribute {
    /// Human-readable name (`ip_dst`, `out`, …). Unique within a catalog.
    pub name: String,
    /// Field / metadata / action.
    pub kind: AttrKind,
    /// Bit width of the value domain for matchable attributes (≤ 64).
    /// For action attributes the width is informational only.
    pub width: u32,
}

/// The program-wide dictionary of attributes.
///
/// A catalog is owned by a [`crate::Pipeline`]; transformations that
/// introduce new attributes (metadata tags, goto columns) extend it.
#[derive(Debug, Clone, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct Catalog {
    attrs: Vec<Attribute>,
    by_name: HashMap<String, AttrId>,
}

impl Catalog {
    /// Create an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an attribute, returning its id.
    ///
    /// # Panics
    /// Panics if an attribute with the same name already exists (attribute
    /// names are the stable identity used by program text and tests) or if
    /// `width > 64`.
    pub fn add(&mut self, name: impl Into<String>, kind: AttrKind, width: u32) -> AttrId {
        let name = name.into();
        assert!(width <= 64, "field width {width} exceeds 64 bits");
        assert!(
            !self.by_name.contains_key(&name),
            "duplicate attribute name {name:?}"
        );
        let id = AttrId(self.attrs.len() as u32);
        self.by_name.insert(name.clone(), id);
        self.attrs.push(Attribute { name, kind, width });
        id
    }

    /// Register a header field.
    pub fn field(&mut self, name: impl Into<String>, width: u32) -> AttrId {
        self.add(name, AttrKind::Field, width)
    }

    /// Register a metadata field.
    pub fn meta(&mut self, name: impl Into<String>, width: u32) -> AttrId {
        self.add(name, AttrKind::Meta, width)
    }

    /// Register an action attribute.
    pub fn action(&mut self, name: impl Into<String>, sem: ActionSem) -> AttrId {
        self.add(name, AttrKind::Action(sem), 0)
    }

    /// Look up an attribute by name.
    pub fn lookup(&self, name: &str) -> Option<AttrId> {
        self.by_name.get(name).copied()
    }

    /// Access an attribute's metadata.
    ///
    /// # Panics
    /// Panics if `id` does not belong to this catalog.
    pub fn attr(&self, id: AttrId) -> &Attribute {
        &self.attrs[id.index()]
    }

    /// The attribute's name.
    pub fn name(&self, id: AttrId) -> &str {
        &self.attr(id).name
    }

    /// Number of registered attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True if no attributes are registered.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Iterate over `(id, attribute)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (AttrId, &Attribute)> {
        self.attrs
            .iter()
            .enumerate()
            .map(|(i, a)| (AttrId(i as u32), a))
    }

    /// Ids of all matchable (field or metadata) attributes.
    pub fn matchable_ids(&self) -> Vec<AttrId> {
        self.iter()
            .filter(|(_, a)| a.kind.is_matchable())
            .map(|(id, _)| id)
            .collect()
    }

    /// Register `name` if absent, with the given kind/width; return its id.
    ///
    /// Used by transformations that may run repeatedly over the same catalog
    /// (e.g. introducing the `meta` tag field once).
    pub fn add_or_lookup(&mut self, name: &str, kind: AttrKind, width: u32) -> AttrId {
        match self.lookup(name) {
            Some(id) => id,
            None => self.add(name.to_owned(), kind, width),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_registers_and_looks_up() {
        let mut c = Catalog::new();
        let ip = c.field("ip_dst", 32);
        let out = c.action("out", ActionSem::Output);
        assert_eq!(c.lookup("ip_dst"), Some(ip));
        assert_eq!(c.lookup("out"), Some(out));
        assert_eq!(c.lookup("nope"), None);
        assert_eq!(c.name(ip), "ip_dst");
        assert_eq!(c.len(), 2);
        assert!(c.attr(ip).kind.is_matchable());
        assert!(c.attr(out).kind.is_action());
    }

    #[test]
    #[should_panic(expected = "duplicate attribute name")]
    fn duplicate_names_rejected() {
        let mut c = Catalog::new();
        c.field("f", 8);
        c.field("f", 8);
    }

    #[test]
    #[should_panic(expected = "exceeds 64 bits")]
    fn oversized_width_rejected() {
        let mut c = Catalog::new();
        c.field("f", 65);
    }

    #[test]
    fn add_or_lookup_is_idempotent() {
        let mut c = Catalog::new();
        let a = c.add_or_lookup("meta", AttrKind::Meta, 32);
        let b = c.add_or_lookup("meta", AttrKind::Meta, 32);
        assert_eq!(a, b);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn matchable_ids_excludes_actions() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let m = c.meta("m", 8);
        c.action("a", ActionSem::Output);
        assert_eq!(c.matchable_ids(), vec![f, m]);
    }
}
