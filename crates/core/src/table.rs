//! Match-action tables.
//!
//! A [`Table`] is simultaneously two things, mirroring the paper's dual view:
//!
//! 1. **A relation** (§3): a set of rows over an attribute set drawn from a
//!    [`Catalog`], where match columns hold predicates-as-values and action
//!    columns hold action parameters. The relational operations used by
//!    normalization — projection with duplicate elimination, constant-column
//!    detection, key/FD analysis (in `mapro-fd`) — see this view.
//! 2. **A packet classifier**: entries are consulted in order (order implies
//!    priority); the first entry whose predicates all match fires, otherwise
//!    the table's miss policy applies.
//!
//! The *first normal form* (1NF) requires the two views to coincide: rows
//! must be unique on the match columns and **order-independent** (no packet
//! can match two entries), so that the classifier's behaviour does not
//! depend on entry order. [`Table::order_independence`] checks this.

use crate::attr::{AttrId, Catalog};
use crate::value::Value;
use std::collections::HashSet;

/// One row of a match-action table.
#[derive(Debug, Clone, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Entry {
    /// Predicates, parallel to [`Table::match_attrs`].
    pub matches: Vec<Value>,
    /// Action parameters, parallel to [`Table::action_attrs`].
    /// [`Value::Any`] denotes "this action is a no-op in this entry".
    pub actions: Vec<Value>,
}

impl Entry {
    /// Build an entry from match and action cells.
    pub fn new(matches: Vec<Value>, actions: Vec<Value>) -> Self {
        Entry { matches, actions }
    }
}

/// What a table does with packets that match no entry.
#[derive(Debug, Clone, PartialEq, Eq, Default, serde::Serialize, serde::Deserialize)]
pub enum MissPolicy {
    /// Drop the packet (OpenFlow default).
    #[default]
    Drop,
    /// Punt the packet to the controller.
    Controller,
    /// Continue processing at the named table (OVS `resubmit` style).
    Fall(String),
}

/// A match-action table.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Table {
    /// Table name; unique within a pipeline, referenced by `Goto` actions.
    pub name: String,
    /// Match columns (field/meta attributes).
    pub match_attrs: Vec<AttrId>,
    /// Action columns (action attributes).
    pub action_attrs: Vec<AttrId>,
    /// Rows, in priority order (earlier = higher priority).
    pub entries: Vec<Entry>,
    /// Behaviour on miss.
    pub miss: MissPolicy,
    /// Table to continue at after a hit whose entry performs no `Goto`
    /// (implicit sequential chaining, as in Fig. 1c/1d where the goto jumps
    /// are omitted). `None` means processing ends after this table.
    pub next: Option<String>,
}

/// A violation of 1NF order-independence: two entries whose predicates
/// overlap, so some packet would match both.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Overlap {
    /// Index of the higher-priority entry.
    pub first: usize,
    /// Index of the lower-priority entry.
    pub second: usize,
}

impl Table {
    /// Create an empty table.
    pub fn new(
        name: impl Into<String>,
        match_attrs: Vec<AttrId>,
        action_attrs: Vec<AttrId>,
    ) -> Self {
        Table {
            name: name.into(),
            match_attrs,
            action_attrs,
            entries: Vec::new(),
            miss: MissPolicy::Drop,
            next: None,
        }
    }

    /// Append an entry (lowest priority so far).
    ///
    /// # Panics
    /// Panics if the cell counts do not line up with the schema.
    pub fn push(&mut self, entry: Entry) {
        assert_eq!(
            entry.matches.len(),
            self.match_attrs.len(),
            "table {}: match arity mismatch",
            self.name
        );
        assert_eq!(
            entry.actions.len(),
            self.action_attrs.len(),
            "table {}: action arity mismatch",
            self.name
        );
        self.entries.push(entry);
    }

    /// Convenience: append an entry from raw cell vectors.
    pub fn row(&mut self, matches: Vec<Value>, actions: Vec<Value>) {
        self.push(Entry::new(matches, actions));
    }

    /// All attributes of the relation, match columns first.
    pub fn attrs(&self) -> Vec<AttrId> {
        let mut v = self.match_attrs.clone();
        v.extend_from_slice(&self.action_attrs);
        v
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The cell of row `row` at attribute `attr`.
    ///
    /// # Panics
    /// Panics if `attr` is not a column of this table.
    pub fn cell(&self, row: usize, attr: AttrId) -> &Value {
        if let Some(i) = self.match_attrs.iter().position(|&a| a == attr) {
            &self.entries[row].matches[i]
        } else if let Some(i) = self.action_attrs.iter().position(|&a| a == attr) {
            &self.entries[row].actions[i]
        } else {
            panic!("attribute {attr} is not a column of table {}", self.name)
        }
    }

    /// The full tuple of row `row` over the given attribute list.
    pub fn tuple(&self, row: usize, attrs: &[AttrId]) -> Vec<Value> {
        attrs.iter().map(|&a| self.cell(row, a).clone()).collect()
    }

    /// Index of the column holding `attr`, if present, along with whether it
    /// is a match column.
    pub fn column_of(&self, attr: AttrId) -> Option<(usize, bool)> {
        if let Some(i) = self.match_attrs.iter().position(|&a| a == attr) {
            Some((i, true))
        } else {
            self.action_attrs
                .iter()
                .position(|&a| a == attr)
                .map(|i| (i, false))
        }
    }

    /// First (highest-priority) entry matching the packet's field values.
    ///
    /// `field` maps a match attribute to the packet's value for it.
    pub fn lookup_with(&self, catalog: &Catalog, field: impl Fn(AttrId) -> u64) -> Option<usize> {
        'entry: for (i, e) in self.entries.iter().enumerate() {
            for (j, &attr) in self.match_attrs.iter().enumerate() {
                let width = catalog.attr(attr).width;
                if !e.matches[j].matches(field(attr), width) {
                    continue 'entry;
                }
            }
            return Some(i);
        }
        None
    }

    /// Check 1NF *order-independence*: return every pair of entries whose
    /// predicates overlap on all match columns (§3, and the failure mode of
    /// Fig. 3).
    ///
    /// Quadratic in the number of entries; the tables normalization handles
    /// are control-plane-sized, not datapath-cache-sized.
    pub fn order_independence(&self, catalog: &Catalog) -> Vec<Overlap> {
        let widths: Vec<u32> = self
            .match_attrs
            .iter()
            .map(|&a| catalog.attr(a).width)
            .collect();
        let mut out = Vec::new();
        for i in 0..self.entries.len() {
            for j in i + 1..self.entries.len() {
                let overlap = self.match_attrs.iter().enumerate().all(|(k, _)| {
                    self.entries[i].matches[k].intersects(&self.entries[j].matches[k], widths[k])
                });
                if overlap {
                    out.push(Overlap {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        out
    }

    /// True iff no two entries share identical match tuples (row uniqueness,
    /// the weaker of the two 1NF conditions).
    pub fn rows_unique(&self) -> bool {
        let mut seen = HashSet::new();
        self.entries.iter().all(|e| seen.insert(&e.matches))
    }

    /// Project the relation onto `attrs`, eliminating duplicate rows while
    /// preserving first-occurrence order.
    ///
    /// This is the relational π of Heath's theorem (§4): decomposing `T`
    /// along `X → Y` builds `π_{X∪Y}(T)` and `π_{X∪Z}(T)`.
    ///
    /// The projected table keeps each attribute's role (match vs action) and
    /// inherits nothing else: miss policy and chaining are the decomposer's
    /// business.
    pub fn project(&self, catalog: &Catalog, name: impl Into<String>, attrs: &[AttrId]) -> Table {
        let match_attrs: Vec<AttrId> = attrs
            .iter()
            .copied()
            .filter(|&a| catalog.attr(a).kind.is_matchable())
            .collect();
        let action_attrs: Vec<AttrId> = attrs
            .iter()
            .copied()
            .filter(|&a| catalog.attr(a).kind.is_action())
            .collect();
        let mut t = Table::new(name, match_attrs, action_attrs);
        let mut seen = HashSet::new();
        for row in 0..self.entries.len() {
            let m = t
                .match_attrs
                .iter()
                .map(|&a| self.cell(row, a).clone())
                .collect::<Vec<_>>();
            let a = t
                .action_attrs
                .iter()
                .map(|&a| self.cell(row, a).clone())
                .collect::<Vec<_>>();
            if seen.insert((m.clone(), a.clone())) {
                t.push(Entry::new(m, a));
            }
        }
        t
    }

    /// Attributes whose cell holds the same value in every row, with that
    /// value. Empty tables have no constant columns.
    ///
    /// Constant columns are what the Cartesian-product factoring of Fig. 2c
    /// extracts into a standalone single-row table.
    pub fn constant_columns(&self) -> Vec<(AttrId, Value)> {
        if self.entries.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        for &attr in self.attrs().iter() {
            let v0 = self.cell(0, attr);
            if (1..self.entries.len()).all(|r| self.cell(r, attr) == v0) {
                out.push((attr, v0.clone()));
            }
        }
        out
    }

    /// Total number of match-action *fields* (cells) in the table — the
    /// paper's §2 encoding-size metric (Fig. 1a has 6 × 4 = 24 fields).
    pub fn field_count(&self) -> usize {
        self.entries.len() * (self.match_attrs.len() + self.action_attrs.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attr::{ActionSem, Catalog};

    fn tiny() -> (Catalog, Table) {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let g = c.field("g", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f, g], vec![out]);
        t.row(vec![Value::Int(1), Value::Int(10)], vec![Value::sym("a")]);
        t.row(vec![Value::Int(2), Value::Int(10)], vec![Value::sym("b")]);
        t.row(vec![Value::Int(3), Value::Int(20)], vec![Value::sym("a")]);
        (c, t)
    }

    #[test]
    fn lookup_first_match_wins() {
        let (c, mut t) = tiny();
        // Add an overlapping lower-priority row.
        t.row(vec![Value::Any, Value::Any], vec![Value::sym("z")]);
        let hit = t.lookup_with(&c, |a| match c.name(a) {
            "f" => 1,
            "g" => 10,
            _ => 0,
        });
        assert_eq!(hit, Some(0));
        let miss_all = t.lookup_with(&c, |_| 99);
        assert_eq!(miss_all, Some(3)); // wildcard row
    }

    #[test]
    fn lookup_miss() {
        let (c, t) = tiny();
        assert_eq!(t.lookup_with(&c, |_| 99), None);
    }

    #[test]
    fn order_independence_detects_overlap() {
        let (c, mut t) = tiny();
        assert!(t.order_independence(&c).is_empty());
        t.row(vec![Value::Int(1), Value::Any], vec![Value::sym("z")]);
        let ov = t.order_independence(&c);
        assert_eq!(
            ov,
            vec![Overlap {
                first: 0,
                second: 3
            }]
        );
    }

    #[test]
    fn rows_unique_detects_duplicates() {
        let (_, mut t) = tiny();
        assert!(t.rows_unique());
        t.row(vec![Value::Int(1), Value::Int(10)], vec![Value::sym("q")]);
        assert!(!t.rows_unique());
    }

    #[test]
    fn projection_deduplicates() {
        let (c, t) = tiny();
        let g = c.lookup("g").unwrap();
        let out = c.lookup("out").unwrap();
        let p = t.project(&c, "p", &[g, out]);
        assert_eq!(p.match_attrs, vec![g]);
        assert_eq!(p.action_attrs, vec![out]);
        assert_eq!(p.len(), 3); // (10,a),(10,b),(20,a) — all distinct
        let p2 = t.project(&c, "p2", &[g]);
        assert_eq!(p2.len(), 2); // 10, 20
    }

    #[test]
    fn constant_columns_found() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let k = c.field("k", 8);
        let mut t = Table::new("t", vec![f, k], vec![]);
        t.row(vec![Value::Int(1), Value::Int(7)], vec![]);
        t.row(vec![Value::Int(2), Value::Int(7)], vec![]);
        assert_eq!(t.constant_columns(), vec![(k, Value::Int(7))]);
    }

    #[test]
    fn field_count_matches_paper_metric() {
        let (_, t) = tiny();
        assert_eq!(t.field_count(), 9); // 3 entries × 3 attrs
    }

    #[test]
    #[should_panic(expected = "match arity mismatch")]
    fn arity_checked() {
        let (_, mut t) = tiny();
        t.row(vec![Value::Int(1)], vec![Value::sym("a")]);
    }

    #[test]
    fn cell_and_tuple_access() {
        let (c, t) = tiny();
        let f = c.lookup("f").unwrap();
        let out = c.lookup("out").unwrap();
        assert_eq!(t.cell(1, f), &Value::Int(2));
        assert_eq!(t.cell(1, out), &Value::sym("b"));
        assert_eq!(t.tuple(0, &[out, f]), vec![Value::sym("a"), Value::Int(1)]);
    }
}
