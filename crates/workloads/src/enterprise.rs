//! A composed enterprise edge pipeline: ACL → DNAT → L3.
//!
//! The paper's examples are single-purpose tables; production pipelines
//! chain several functions, and normalization applies *per stage*. This
//! workload exercises that setting, plus the spiciest interaction in the
//! evaluator: the NAT stage **rewrites** `ip_dst`, and the L3 stage then
//! *matches on the rewritten value* — any bug in how transformations
//! handle write-then-match ordering shows up here as an equivalence
//! failure.
//!
//! Structure (all stages drop on miss):
//!
//! * `acl` — allowed `(ip_src prefix, ip_dst)` pairs, falls through to NAT;
//! * `nat` — public `(ip_dst, tcp_dst)` → rewrite to the private backend
//!   `(ip_dst ← priv_ip, tcp_dst ← priv_port)`. Services of the same kind
//!   share the private port (`tcp_dst → set_port`, an FD from a match
//!   field to a set-field action — decomposition shape B);
//! * `l3` — private prefixes → output port.

use mapro_core::{ActionSem, AttrId, Catalog, Pipeline, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The composed workload.
#[derive(Debug, Clone)]
pub struct Enterprise {
    /// The three-stage pipeline.
    pub pipeline: Pipeline,
    /// `ip_src` attribute.
    pub ip_src: AttrId,
    /// `ip_dst` attribute.
    pub ip_dst: AttrId,
    /// `tcp_dst` attribute.
    pub tcp_dst: AttrId,
    /// The NAT stage's IP-rewrite action.
    pub set_ip: AttrId,
    /// The NAT stage's port-rewrite action.
    pub set_port: AttrId,
    /// The L3 output action.
    pub out: AttrId,
    /// Public services: `(public ip, public port, private ip, private port)`.
    pub services: Vec<(u32, u16, u32, u16)>,
}

impl Enterprise {
    /// Build a random instance: `n` public services NATted onto private
    /// `10.0.x.y` backends; the private port is a function of the public
    /// one (80→8080, 443→8443, …); backends spread over `racks` L3 routes.
    pub fn random(n: usize, racks: usize, seed: u64) -> Enterprise {
        assert!((1..=256).contains(&racks) && n >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut c = Catalog::new();
        let ip_src = c.field("ip_src", 32);
        let ip_dst = c.field("ip_dst", 32);
        let tcp_dst = c.field("tcp_dst", 16);
        let set_ip = c.action("set_ip", ActionSem::SetField(ip_dst));
        let set_port = c.action("set_port", ActionSem::SetField(tcp_dst));
        let out = c.action("out", ActionSem::Output);

        let priv_port = |p: u16| -> u16 {
            match p {
                80 => 8080,
                443 => 8443,
                _ => 9000,
            }
        };

        let mut used = std::collections::HashSet::new();
        let mut services = Vec::with_capacity(n);
        for i in 0..n {
            let pub_ip = loop {
                // Public space: anything outside 10/8.
                let cand: u32 = rng.gen_range(0x2000_0000..0xdfff_ffff);
                if used.insert(cand) {
                    break cand;
                }
            };
            let pub_port = *[80u16, 443, 22].get(rng.gen_range(0..3usize)).unwrap();
            let rack = (i % racks) as u32;
            let host = (i / racks) as u32 + 1;
            let priv_ip = (10 << 24) | (rack << 16) | host;
            services.push((pub_ip, pub_port, priv_ip, priv_port(pub_port)));
        }

        // ACL: each service admits two client prefixes (0*, 1* split), so
        // the ACL also carries the redundant (ip_dst ↔ service) coupling.
        let mut acl = Table::new("acl", vec![ip_src, ip_dst], vec![]);
        for &(pub_ip, _, _, _) in &services {
            acl.row(
                vec![Value::prefix(0, 1, 32), Value::Int(pub_ip as u64)],
                vec![],
            );
            acl.row(
                vec![Value::prefix(0x8000_0000, 1, 32), Value::Int(pub_ip as u64)],
                vec![],
            );
        }
        acl.next = Some("nat".into());

        let mut nat = Table::new("nat", vec![ip_dst, tcp_dst], vec![set_ip, set_port]);
        for &(pub_ip, pub_port, priv_ip, priv_p) in &services {
            nat.row(
                vec![Value::Int(pub_ip as u64), Value::Int(pub_port as u64)],
                vec![Value::Int(priv_ip as u64), Value::Int(priv_p as u64)],
            );
        }
        nat.next = Some("l3".into());

        let mut l3 = Table::new("l3", vec![ip_dst], vec![out]);
        for rack in 0..racks as u64 {
            l3.row(
                vec![Value::prefix((10 << 24) | (rack << 16), 16, 32)],
                vec![Value::sym(format!("rack{rack}"))],
            );
        }

        Enterprise {
            pipeline: Pipeline::new(c, vec![acl, nat, l3], "acl"),
            ip_src,
            ip_dst,
            tcp_dst,
            set_ip,
            set_port,
            out,
            services,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::{assert_equivalent, Packet};
    use mapro_normalize::{decompose, normalize, DecomposeOpts, NormalizeOpts};

    fn probe(e: &Enterprise, p: &Pipeline, svc: usize, src: u64) -> Option<String> {
        let (pub_ip, pub_port, _, _) = e.services[svc];
        let pkt = Packet::from_fields(
            &p.catalog,
            &[
                ("ip_src", src),
                ("ip_dst", pub_ip as u64),
                ("tcp_dst", pub_port as u64),
            ],
        );
        p.run(&pkt).unwrap().output.map(|s| s.to_string())
    }

    #[test]
    fn pipeline_routes_through_rewrites() {
        let e = Enterprise::random(6, 3, 7);
        for (i, &(_, _, priv_ip, _)) in e.services.iter().enumerate() {
            let rack = (priv_ip >> 16) & 0xff;
            assert_eq!(
                probe(&e, &e.pipeline, i, 5).as_deref(),
                Some(format!("rack{rack}").as_str())
            );
        }
        // Unlisted destination dies at the ACL.
        let pkt = Packet::from_fields(
            &e.pipeline.catalog,
            &[("ip_src", 5), ("ip_dst", 1), ("tcp_dst", 80)],
        );
        let v = e.pipeline.run(&pkt).unwrap();
        assert!(v.dropped);
        assert_eq!(v.lookups, 1);
    }

    #[test]
    fn nat_stage_decomposes_along_port_fd_mid_pipeline() {
        // tcp_dst → set_port: a field-to-action dependency inside a stage
        // whose rewrites feed the following stage's matches.
        let e = Enterprise::random(8, 2, 3);
        let q = decompose(
            &e.pipeline,
            "nat",
            &[e.tcp_dst],
            &[e.set_port],
            &DecomposeOpts::default(),
        )
        .unwrap();
        assert_eq!(q.tables.len(), 4);
        assert_equivalent(&e.pipeline, &q);
        // The port-rewrite table has one row per *service kind*, not per
        // service.
        let kinds: std::collections::HashSet<u16> = e.services.iter().map(|s| s.1).collect();
        assert_eq!(q.table("nat_r").unwrap().len(), kinds.len());
    }

    #[test]
    fn full_normalizer_handles_the_composed_pipeline() {
        let e = Enterprise::random(8, 2, 11);
        let n = normalize(&e.pipeline, &NormalizeOpts::default());
        assert_equivalent(&e.pipeline, &n.pipeline);
        // At minimum the NAT port coupling is factored out.
        assert!(n.pipeline.tables.len() >= 4, "{}", n.pipeline.tables.len());
    }

    #[test]
    fn acl_stage_carries_the_same_partial_dependency_as_fig1() {
        // (ip_src, ip_dst) key with the dst-per-service coupling spread
        // over two rows per service — the ACL is GWLB-shaped and the
        // analyzer sees it.
        let e = Enterprise::random(8, 2, 5);
        let rep = mapro_fd::analyze(e.pipeline.table("acl").unwrap(), &e.pipeline.catalog);
        assert!(rep.first_issues.is_empty());
    }

    #[test]
    fn deterministic_and_serializable() {
        let a = Enterprise::random(5, 2, 9);
        let b = Enterprise::random(5, 2, 9);
        assert_eq!(a.pipeline, b.pipeline);
        let json = serde_json::to_string(&a.pipeline).unwrap();
        let back: Pipeline = serde_json::from_str(&json).unwrap();
        assert_eq!(a.pipeline, back);
    }
}
