//! Random tables with *planted* functional dependencies, for property
//! testing the mining/normalization stack end to end.

use mapro_core::{ActionSem, AttrId, Catalog, Pipeline, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Specification of a random table.
#[derive(Debug, Clone)]
pub struct RandomSpec {
    /// Number of match-field columns (`f0`, `f1`, …).
    pub fields: usize,
    /// Number of rows.
    pub rows: usize,
    /// Value domain per column (small domains breed accidental FDs, large
    /// domains suppress them).
    pub domain: u64,
    /// Planted dependencies: `(determinant column, dependent column)` —
    /// the dependent's value is a function of the determinant's.
    pub planted: Vec<(usize, usize)>,
}

/// A generated random workload.
#[derive(Debug, Clone)]
pub struct RandomTable {
    /// The pipeline (one table `rt` plus an `out` action keyed uniquely
    /// per row so the table is trivially 1NF-keyable).
    pub pipeline: Pipeline,
    /// The field attribute ids, by column.
    pub field_ids: Vec<AttrId>,
    /// The `out` attribute id.
    pub out: AttrId,
}

/// Generate a table satisfying `spec` (best effort: rows are deduplicated
/// on match columns, so fewer than `spec.rows` rows may result).
pub fn random_table(spec: &RandomSpec, seed: u64) -> RandomTable {
    assert!(spec.fields >= 1 && spec.domain >= 1);
    for &(a, b) in &spec.planted {
        assert!(
            a < spec.fields && b < spec.fields && a != b,
            "bad planted FD"
        );
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut c = Catalog::new();
    let field_ids: Vec<AttrId> = (0..spec.fields)
        .map(|i| c.field(format!("f{i}"), 16))
        .collect();
    let out = c.action("out", ActionSem::Output);
    let mut t = Table::new("rt", field_ids.clone(), vec![out]);

    // Planted dependency functions, built lazily: dep value = g(det value).
    let mut maps: HashMap<(usize, usize), HashMap<u64, u64>> = HashMap::new();
    let mut seen = std::collections::HashSet::new();
    for row in 0..spec.rows {
        let mut vals: Vec<u64> = (0..spec.fields)
            .map(|_| rng.gen_range(0..spec.domain))
            .collect();
        // Enforce planted FDs in declaration order (chains supported:
        // later rules see earlier rewrites).
        for &(det, dep) in &spec.planted {
            let m = maps.entry((det, dep)).or_default();
            let key = vals[det];
            let next = rng.gen_range(0..spec.domain);
            let v = *m.entry(key).or_insert(next);
            vals[dep] = v;
        }
        let matches: Vec<Value> = vals.iter().map(|&v| Value::Int(v)).collect();
        if seen.insert(matches.clone()) {
            t.row(matches, vec![Value::sym(format!("p{row}"))]);
        }
    }
    RandomTable {
        pipeline: Pipeline::single(c, t),
        field_ids,
        out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::assert_equivalent;
    use mapro_fd::mine_fds;
    use mapro_normalize::{normalize, NormalizeOpts};
    use proptest::prelude::*;

    #[test]
    fn planted_fd_is_mined() {
        let spec = RandomSpec {
            fields: 4,
            rows: 60,
            domain: 8,
            planted: vec![(0, 1)],
        };
        let rt = random_table(&spec, 5);
        let t = rt.pipeline.table("rt").unwrap();
        let mined = mine_fds(t, &rt.pipeline.catalog);
        let u = &mined.fds.universe;
        let fd = mapro_fd::Fd::new(u.encode(&[rt.field_ids[0]]), u.encode(&[rt.field_ids[1]]));
        assert!(mined.fds.implies(fd));
    }

    #[test]
    fn generation_deterministic() {
        let spec = RandomSpec {
            fields: 3,
            rows: 30,
            domain: 10,
            planted: vec![],
        };
        assert_eq!(
            random_table(&spec, 1).pipeline,
            random_table(&spec, 1).pipeline
        );
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]
        #[test]
        fn normalization_preserves_semantics_on_random_tables(
            seed in 0u64..5000,
            fields in 3usize..5,
            rows in 8usize..28,
            det in 0usize..3,
        ) {
            let dep = (det + 1) % fields.max(2);
            let spec = RandomSpec {
                fields,
                rows,
                domain: 5,
                planted: if det < fields && dep < fields && det != dep {
                    vec![(det, dep)]
                } else {
                    vec![]
                },
            };
            let rt = random_table(&spec, seed);
            let n = normalize(&rt.pipeline, &NormalizeOpts::default());
            assert_equivalent(&rt.pipeline, &n.pipeline);
        }
    }
}
