//! The cloud access-gateway & load-balancer pipeline (Fig. 1, §2, §5).
//!
//! `N` tenant services, each reachable at a public `(ip_dst, tcp_dst)`
//! pair, each load-balanced across `M` backends by disjoint `ip_src`
//! prefixes. The universal table holds `N·M` rows over
//! `(ip_src, ip_dst, tcp_dst | out)`; the functional dependency
//! `ip_dst → tcp_dst` drives the Fig. 1b–d decompositions. This module
//! also hosts the representation-aware *intent compilers* (§2
//! controllability), counter placement (§2 monitorability) and the §5
//! traffic description (20 random services × 8 backends, 64-byte packets).

use mapro_control::{RuleUpdate, UpdatePlan};
use mapro_core::{ActionSem, AttrId, Catalog, Pipeline, Table, Value};
use mapro_normalize::{decompose, DecomposeError, DecomposeOpts, JoinKind};
use mapro_packet::{FlowSpec, TraceSpec};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// One tenant service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Service {
    /// Public IPv4 address.
    pub ip: u32,
    /// Public TCP port.
    pub port: u16,
    /// Backends: `(ip_src prefix, vm name)`, prefixes disjoint and
    /// covering.
    pub backends: Vec<(Value, String)>,
}

/// The generated workload: the universal pipeline plus its blueprint.
#[derive(Debug, Clone)]
pub struct Gwlb {
    /// The universal (single-table) representation.
    pub universal: Pipeline,
    /// The services the table encodes.
    pub services: Vec<Service>,
    /// `ip_src` attribute id.
    pub ip_src: AttrId,
    /// `ip_dst` attribute id.
    pub ip_dst: AttrId,
    /// `tcp_dst` attribute id.
    pub tcp_dst: AttrId,
    /// `out` attribute id.
    pub out: AttrId,
}

/// Split the `ip_src` space into `m` equal disjoint prefixes
/// (`m` must be a power of two).
pub fn even_split(m: usize) -> Vec<Value> {
    assert!(m.is_power_of_two() && m > 0, "m must be a power of two");
    let len = m.trailing_zeros() as u8;
    (0..m as u64)
        .map(|i| {
            let bits = if len == 0 {
                0
            } else {
                i << (32 - u32::from(len))
            };
            Value::prefix(bits, len, 32)
        })
        .collect()
}

/// Split the `ip_src` space into prefixes proportional to `weights`
/// (each weight a power of two, total a power of two) — the 1:1:2 pattern
/// of Fig. 1's tenant 2. Returns one prefix per weight, in input order.
///
/// # Panics
/// Panics if any weight is zero or not a power of two, or the sum is not
/// a power of two (such splits need several prefixes per backend, which a
/// single `ip_src` cell cannot hold).
pub fn weighted_split(weights: &[u64]) -> Vec<Value> {
    assert!(!weights.is_empty());
    let total: u64 = weights.iter().sum();
    assert!(total.is_power_of_two(), "weight sum must be a power of two");
    for &w in weights {
        assert!(
            w > 0 && w.is_power_of_two(),
            "weights must be powers of two"
        );
    }
    let k = total.trailing_zeros(); // the split operates on the top k bits
                                    // Allocate large blocks first so every block lands aligned; remember
                                    // the original positions.
    let mut order: Vec<usize> = (0..weights.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(weights[i]));
    let mut out = vec![Value::Any; weights.len()];
    let mut addr = 0u64; // in 1/total units of the 32-bit space
    for &i in &order {
        let w = weights[i];
        debug_assert_eq!(addr % w, 0, "alignment invariant");
        let len = (k - w.trailing_zeros()) as u8;
        let bits = if k == 0 {
            0
        } else {
            (addr / w) << (32 - u64::from(len))
        };
        out[i] = Value::prefix(if len == 0 { 0 } else { bits }, len, 32);
        addr += w;
    }
    debug_assert_eq!(addr, total);
    out
}

impl Gwlb {
    /// Build a workload from explicit services.
    pub fn from_services(services: Vec<Service>) -> Gwlb {
        let mut c = Catalog::new();
        let ip_src = c.field("ip_src", 32);
        let ip_dst = c.field("ip_dst", 32);
        let tcp_dst = c.field("tcp_dst", 16);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t0", vec![ip_src, ip_dst, tcp_dst], vec![out]);
        for s in &services {
            for (pfx, vm) in &s.backends {
                t.row(
                    vec![
                        pfx.clone(),
                        Value::Int(s.ip as u64),
                        Value::Int(s.port as u64),
                    ],
                    vec![Value::sym(vm)],
                );
            }
        }
        Gwlb {
            universal: Pipeline::single(c, t),
            services,
            ip_src,
            ip_dst,
            tcp_dst,
            out,
        }
    }

    /// The exact instance of Fig. 1a: tenant 1 at 192.0.2.1:80 split 1:1,
    /// tenant 2 at 192.0.2.2:443 split 1:1:2, tenant 3 at 192.0.2.3:22
    /// unsplit.
    pub fn fig1() -> Gwlb {
        let ip = |s: &str| mapro_packet::ipv4(s);
        Gwlb::from_services(vec![
            Service {
                ip: ip("192.0.2.1"),
                port: 80,
                backends: vec![
                    (Value::prefix(0, 1, 32), "vm1".into()),
                    (Value::prefix(0x8000_0000, 1, 32), "vm2".into()),
                ],
            },
            Service {
                ip: ip("192.0.2.2"),
                port: 443,
                backends: vec![
                    (Value::prefix(0, 2, 32), "vm3".into()),
                    (Value::prefix(0x4000_0000, 2, 32), "vm4".into()),
                    (Value::prefix(0x8000_0000, 1, 32), "vm5".into()),
                ],
            },
            Service {
                ip: ip("192.0.2.3"),
                port: 22,
                backends: vec![(Value::Any, "vm6".into())],
            },
        ])
    }

    /// The §5 benchmark configuration: `n` random services × `m` backends
    /// (even split; `m` a power of two), deterministic under `seed`.
    pub fn random(n: usize, m: usize, seed: u64) -> Gwlb {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut used_ips = HashSet::new();
        let mut services = Vec::with_capacity(n);
        let mut vm = 0usize;
        for _ in 0..n {
            let ip = loop {
                let cand: u32 = rng.gen();
                if used_ips.insert(cand) {
                    break cand;
                }
            };
            // Random well-known-ish port; collisions across services are
            // realistic (many tenants run HTTPS) and keep tcp_dst from
            // spuriously determining ip_dst.
            let port = *[80u16, 443, 22, 8080, 53]
                .get(rng.gen_range(0..5usize))
                .unwrap();
            let backends = even_split(m)
                .into_iter()
                .map(|pfx| {
                    vm += 1;
                    (pfx, format!("vm{vm}"))
                })
                .collect();
            services.push(Service { ip, port, backends });
        }
        Gwlb::from_services(services)
    }

    /// Like [`Gwlb::random`] but with a shared weighted backend split
    /// (e.g. `&[1, 1, 2]` reproduces Fig. 1's tenant-2 proportions for
    /// every service).
    pub fn random_weighted(n: usize, weights: &[u64], seed: u64) -> Gwlb {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut used_ips = HashSet::new();
        let prefixes = weighted_split(weights);
        let mut services = Vec::with_capacity(n);
        let mut vm = 0usize;
        for _ in 0..n {
            let ip = loop {
                let cand: u32 = rng.gen();
                if used_ips.insert(cand) {
                    break cand;
                }
            };
            let port = *[80u16, 443, 22, 8080, 53]
                .get(rng.gen_range(0..5usize))
                .unwrap();
            let backends = prefixes
                .iter()
                .map(|pfx| {
                    vm += 1;
                    (pfx.clone(), format!("vm{vm}"))
                })
                .collect();
            services.push(Service { ip, port, backends });
        }
        Gwlb::from_services(services)
    }

    /// The *model-level* dependencies of §3: `ip_dst → tcp_dst` (a service
    /// lives at one port — "an intrinsic consequence of the way the access
    /// gateway service is defined"), `(ip_src, ip_dst)` identifies an
    /// entry, and `out` identifies an entry (each VM serves one flow
    /// aggregate). Declared FDs matter because tiny instances (like the
    /// 6-row Fig. 1a) also satisfy *transient* data-level dependencies
    /// (e.g. `tcp_dst → ip_dst`) that "may easily disappear during the
    /// next update" (§3) and would distort the key structure.
    pub fn declared_fds(&self) -> mapro_fd::FdSet {
        let t = self.universal.table("t0").expect("t0 exists");
        let universe = mapro_fd::Universe::new(t.attrs());
        let mut fds = mapro_fd::FdSet::new(universe);
        let all = [self.ip_src, self.ip_dst, self.tcp_dst, self.out];
        fds.add_ids(&[self.ip_dst], &[self.tcp_dst]);
        fds.add_ids(&[self.ip_src, self.ip_dst], &all);
        fds.add_ids(&[self.out], &all);
        fds
    }

    /// Decompose along `ip_dst → tcp_dst` with the given join — Fig. 1b
    /// (goto), Fig. 1c (metadata) or Fig. 1d (rematch).
    pub fn normalized(&self, join: JoinKind) -> Result<Pipeline, DecomposeError> {
        decompose(
            &self.universal,
            "t0",
            &[self.ip_dst],
            &[self.tcp_dst],
            &DecomposeOpts {
                join,
                ..Default::default()
            },
        )
    }

    /// §2 controllability: compile "move service `idx` to `new_port`"
    /// against an arbitrary representation of this workload. Touches every
    /// entry that encodes the service's `(ip_dst, tcp_dst)` association —
    /// `M` entries of the universal table, one entry of a normalized form.
    pub fn move_service_port(&self, repr: &Pipeline, idx: usize, new_port: u16) -> UpdatePlan {
        let svc = &self.services[idx];
        let mut updates = Vec::new();
        for t in &repr.tables {
            let (Some((ip_col, true)), Some((port_col, true))) =
                (t.column_of(self.ip_dst), t.column_of(self.tcp_dst))
            else {
                continue; // table doesn't re-encode the association
            };
            let _ = port_col;
            for e in &t.entries {
                if e.matches[ip_col] == Value::Int(svc.ip as u64) {
                    updates.push(RuleUpdate::Modify {
                        table: t.name.clone(),
                        matches: e.matches.clone(),
                        set: vec![(self.tcp_dst, Value::Int(new_port as u64))],
                    });
                }
            }
        }
        UpdatePlan {
            intent: format!("move service {idx} to port {new_port}"),
            updates,
        }
    }

    /// §2 controllability: compile "renumber service `idx` to `new_ip`".
    pub fn change_public_ip(&self, repr: &Pipeline, idx: usize, new_ip: u32) -> UpdatePlan {
        let svc = &self.services[idx];
        let mut updates = Vec::new();
        for t in &repr.tables {
            let Some((ip_col, true)) = t.column_of(self.ip_dst) else {
                continue;
            };
            for e in &t.entries {
                if e.matches[ip_col] == Value::Int(svc.ip as u64) {
                    updates.push(RuleUpdate::Modify {
                        table: t.name.clone(),
                        matches: e.matches.clone(),
                        set: vec![(self.ip_dst, Value::Int(new_ip as u64))],
                    });
                }
            }
        }
        UpdatePlan {
            intent: format!("renumber service {idx}"),
            updates,
        }
    }

    /// Compile "replace service `idx`'s backend split with `new_backends`"
    /// against an arbitrary representation.
    ///
    /// The affected rows are located *representation-independently*: a
    /// probe packet of the service is traced through the pipeline, the
    /// table that matched on `ip_src` is the one carrying the split, and
    /// the matched row's non-`ip_src` cells (the tenant's selector — `(ip,
    /// port)` in the universal table, the metadata tag in Fig. 1c, nothing
    /// in a per-tenant goto table) identify its siblings.
    ///
    /// Note the shape of the result: `M` deletes + `M'` inserts in *every*
    /// representation — unlike the move-port intent, resplitting is
    /// inherently multi-update, so normalization does not buy atomicity
    /// here (a negative result worth stating).
    pub fn reweight_backends(
        &self,
        repr: &Pipeline,
        idx: usize,
        new_backends: &[(Value, String)],
    ) -> UpdatePlan {
        let svc = &self.services[idx];
        // Probe: any source address, the service's (ip, port).
        let mut probe = mapro_core::Packet::zero(&repr.catalog);
        probe.set(self.ip_src, 0);
        probe.set(self.ip_dst, svc.ip as u64);
        probe.set(self.tcp_dst, svc.port as u64);
        let v = repr.run(&probe).expect("probe evaluates");
        let mut updates = Vec::new();
        for (tname, hit) in v.path.iter().zip(&v.hits) {
            let Some(row) = hit else { continue };
            let t = repr.table(tname).expect("visited table exists");
            let Some((src_col, true)) = t.column_of(self.ip_src) else {
                continue;
            };
            // Selector: the matched row's cells in every other match column.
            let selector: Vec<(usize, Value)> = (0..t.match_attrs.len())
                .filter(|&c| c != src_col)
                .map(|c| (c, t.entries[*row].matches[c].clone()))
                .collect();
            for e in &t.entries {
                if selector.iter().all(|(c, v)| &e.matches[*c] == v) {
                    updates.push(RuleUpdate::Delete {
                        table: tname.clone(),
                        matches: e.matches.clone(),
                    });
                }
            }
            for (pfx, vm) in new_backends {
                let mut matches = t.entries[*row].matches.clone();
                matches[src_col] = pfx.clone();
                let mut actions = t.entries[*row].actions.clone();
                // The out column (if this table carries it) gets the VM.
                if let Some((out_col, false)) = t.column_of(self.out) {
                    actions[out_col] = Value::sym(vm);
                }
                updates.push(RuleUpdate::Insert {
                    table: tname.clone(),
                    entry: mapro_core::Entry::new(matches, actions),
                });
            }
            break; // the split lives in exactly one table per path
        }
        UpdatePlan {
            intent: format!("reweight service {idx} to {} backends", new_backends.len()),
            updates,
        }
    }

    /// §2 monitorability: counters capturing *all* of service `idx`'s
    /// traffic, placed in the first table (from the entry point) that
    /// matches `ip_dst` — `M` rules on the universal table, one on a
    /// normalized pipeline's first stage.
    pub fn tenant_counters(&self, repr: &Pipeline, idx: usize) -> Vec<(String, usize)> {
        let svc = &self.services[idx];
        // Walk tables in execution order from the start (start, then
        // breadth over next/goto). The first ip_dst-matching table sees
        // every tenant packet exactly once.
        let mut order: Vec<&Table> = Vec::new();
        if let Some(t) = repr.table(&repr.start) {
            order.push(t);
        }
        for t in &repr.tables {
            if t.name != repr.start {
                order.push(t);
            }
        }
        for t in order {
            let Some((ip_col, true)) = t.column_of(self.ip_dst) else {
                continue;
            };
            let rules: Vec<(String, usize)> = t
                .entries
                .iter()
                .enumerate()
                .filter(|(_, e)| e.matches[ip_col] == Value::Int(svc.ip as u64))
                .map(|(row, _)| (t.name.clone(), row))
                .collect();
            if !rules.is_empty() {
                return rules;
            }
        }
        Vec::new()
    }

    /// §2 consistency invariant: every public IP is exposed on at most one
    /// TCP port across all tables that encode the association.
    pub fn one_port_per_ip(&self) -> impl Fn(&Pipeline) -> Result<(), String> + '_ {
        let ip_dst = self.ip_dst;
        let tcp_dst = self.tcp_dst;
        move |p: &Pipeline| {
            let mut seen: std::collections::HashMap<Value, Value> = Default::default();
            for t in &p.tables {
                let (Some((ipc, true)), Some((pc, true))) =
                    (t.column_of(ip_dst), t.column_of(tcp_dst))
                else {
                    continue;
                };
                for e in &t.entries {
                    let ip = e.matches[ipc].clone();
                    let port = e.matches[pc].clone();
                    match seen.get(&ip) {
                        Some(prev) if *prev != port => {
                            return Err(format!("IP {ip} exposed on ports {prev} and {port}"));
                        }
                        _ => {
                            seen.insert(ip, port);
                        }
                    }
                }
            }
            Ok(())
        }
    }

    /// The §5 traffic: one flow per (service, backend) pair, equal weight,
    /// with `ip_src` drawn inside the backend's prefix.
    pub fn trace_spec(&self) -> TraceSpec {
        let mut flows = Vec::new();
        for s in &self.services {
            for (pfx, _) in &s.backends {
                let src = match *pfx {
                    Value::Prefix { bits, .. } => bits | 0x0000_1234,
                    Value::Any => 0x0a00_0042,
                    Value::Int(v) => v,
                    _ => 0,
                };
                flows.push(FlowSpec {
                    fields: vec![
                        (self.ip_src, src),
                        (self.ip_dst, s.ip as u64),
                        (self.tcp_dst, s.port as u64),
                    ],
                    weight: 1,
                });
            }
        }
        TraceSpec::uniform(flows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::assert_equivalent;

    #[test]
    fn fig1_field_counts_match_paper() {
        let g = Gwlb::fig1();
        assert_eq!(g.universal.field_count(), 24);
        let goto = g.normalized(JoinKind::Goto).unwrap();
        assert_eq!(goto.field_count(), 21);
    }

    #[test]
    fn all_representations_equivalent() {
        let g = Gwlb::fig1();
        for join in [JoinKind::Goto, JoinKind::Metadata, JoinKind::Rematch] {
            let n = g.normalized(join).unwrap();
            assert_equivalent(&g.universal, &n);
        }
    }

    #[test]
    fn parametric_size_formulas() {
        // §2: universal 4MN fields; goto form N(3 + 2M).
        let (n, m) = (6, 4);
        let g = Gwlb::random(n, m, 42);
        assert_eq!(g.universal.field_count(), 4 * m * n);
        let goto = g.normalized(JoinKind::Goto).unwrap();
        assert_eq!(goto.field_count(), n * (3 + 2 * m));
    }

    #[test]
    fn move_port_touches_m_vs_1() {
        let g = Gwlb::fig1();
        // Tenant 1 (M=2): universal plan touches 2, goto plan touches 1.
        let uni = g.move_service_port(&g.universal, 0, 443);
        assert_eq!(uni.touched_entries(), 2);
        let goto = g.normalized(JoinKind::Goto).unwrap();
        let norm = g.move_service_port(&goto, 0, 443);
        assert_eq!(norm.touched_entries(), 1);
        // Tenant 3 association is stated thrice in the universal table.
        let uni2 = g.move_service_port(&g.universal, 1, 80);
        assert_eq!(uni2.touched_entries(), 3);
    }

    #[test]
    fn moved_port_plans_converge_semantically() {
        let g = Gwlb::fig1();
        let mut uni = g.universal.clone();
        mapro_control::apply_plan(&mut uni, &g.move_service_port(&g.universal, 0, 443)).unwrap();
        let goto0 = g.normalized(JoinKind::Goto).unwrap();
        let mut goto = goto0.clone();
        mapro_control::apply_plan(&mut goto, &g.move_service_port(&goto0, 0, 443)).unwrap();
        assert_equivalent(&uni, &goto);
    }

    #[test]
    fn halfway_exposed_hazard_only_in_universal() {
        let g = Gwlb::fig1();
        let inv = g.one_port_per_ip();
        // Universal: 2-entry plan has an exposed intermediate state.
        let plan = g.move_service_port(&g.universal, 0, 443);
        let r = mapro_control::exposure(&g.universal, &plan, &&inv).unwrap();
        assert!(!r.safe());
        // Normalized: single entry → no intermediate state.
        let goto = g.normalized(JoinKind::Goto).unwrap();
        let plan = g.move_service_port(&goto, 0, 443);
        let r = mapro_control::exposure(&goto, &plan, &&inv).unwrap();
        assert!(r.safe());
    }

    #[test]
    fn counters_3_vs_1_for_tenant2() {
        let g = Gwlb::fig1();
        // Paper: "installation of 3 counters into the universal table (for
        // entries 3-5)" vs monitoring "at a single point" in T0.
        assert_eq!(g.tenant_counters(&g.universal, 1).len(), 3);
        let goto = g.normalized(JoinKind::Goto).unwrap();
        assert_eq!(g.tenant_counters(&goto, 1).len(), 1);
    }

    #[test]
    fn counters_capture_all_tenant_traffic() {
        let g = Gwlb::fig1();
        let goto = g.normalized(JoinKind::Goto).unwrap();
        let spec = g.trace_spec();
        let trace = mapro_packet::generate(&g.universal.catalog, &spec, 600, 3);
        for (repr, expected_counters) in [(&g.universal, 3), (&goto, 1)] {
            let mut cs = mapro_control::CounterSet::new(g.tenant_counters(repr, 1));
            assert_eq!(cs.counters_needed(), expected_counters);
            let mut tenant_pkts = 0u64;
            for (_, pkt) in &trace.packets {
                let v = repr.run(pkt).unwrap();
                cs.observe(&v);
                if pkt.get(g.ip_dst) == g.services[1].ip as u64 {
                    tenant_pkts += 1;
                }
            }
            assert_eq!(cs.aggregate(), tenant_pkts, "{}", repr.start);
        }
    }

    #[test]
    fn declared_fds_reproduce_paper_classification() {
        // With the model-level dependencies, Fig. 1a is 1NF but not 2NF:
        // keys (ip_src, ip_dst) and (out); tcp_dst non-prime; the partial
        // dependency ip_dst → tcp_dst is the §3 witness.
        let g = Gwlb::fig1();
        let t = g.universal.table("t0").unwrap();
        let r = mapro_fd::analyze_with(t, &g.universal.catalog, g.declared_fds());
        assert_eq!(r.level, mapro_fd::NfLevel::First);
        let u = &r.fds.universe;
        assert_eq!(r.keys, {
            let mut k = vec![u.encode(&[g.ip_src, g.ip_dst]), u.encode(&[g.out])];
            k.sort();
            k
        });
        assert!(r.partial_deps.contains(&mapro_fd::Fd::new(
            u.encode(&[g.ip_dst]),
            u.encode(&[g.tcp_dst])
        )));
    }

    #[test]
    fn mined_fds_on_large_instance_match_declared_keys() {
        // On the §5-sized workload the transient dependencies vanish: the
        // mined keys coincide with the declared ones.
        let g = Gwlb::random(20, 8, 2019);
        let t = g.universal.table("t0").unwrap();
        let r = mapro_fd::analyze(t, &g.universal.catalog);
        assert_eq!(r.level, mapro_fd::NfLevel::First);
        let u = &r.fds.universe;
        assert!(r.keys.contains(&u.encode(&[g.ip_src, g.ip_dst])));
        assert!(r.keys.contains(&u.encode(&[g.out])));
        assert!(r.partial_deps.contains(&mapro_fd::Fd::new(
            u.encode(&[g.ip_dst]),
            u.encode(&[g.tcp_dst])
        )));
    }

    #[test]
    fn random_workload_deterministic_and_well_formed() {
        let a = Gwlb::random(20, 8, 7);
        let b = Gwlb::random(20, 8, 7);
        assert_eq!(a.universal, b.universal);
        assert_eq!(a.universal.table("t0").unwrap().len(), 160);
        // 1NF: unique + order independent.
        let t = a.universal.table("t0").unwrap();
        assert!(t.rows_unique());
        assert!(t.order_independence(&a.universal.catalog).is_empty());
    }

    #[test]
    fn trace_hits_every_backend() {
        let g = Gwlb::fig1();
        let trace = mapro_packet::generate(&g.universal.catalog, &g.trace_spec(), 2000, 9);
        let mut outs = HashSet::new();
        for (_, pkt) in &trace.packets {
            let v = g.universal.run(pkt).unwrap();
            assert!(!v.dropped, "benchmark traffic must hit");
            outs.insert(v.output.unwrap().to_string());
        }
        assert_eq!(outs.len(), 6); // vm1..vm6
    }

    #[test]
    fn even_split_is_disjoint_and_covering() {
        for m in [1usize, 2, 4, 8] {
            let parts = even_split(m);
            assert_eq!(parts.len(), m);
            for probe in [0u64, 1 << 31, u32::MAX as u64, 0x1234_5678] {
                let hits = parts.iter().filter(|p| p.matches(probe, 32)).count();
                assert_eq!(hits, 1, "m={m} probe={probe:#x}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn uneven_split_rejected() {
        even_split(3);
    }

    #[test]
    fn weighted_split_reproduces_fig1_tenant2_proportions() {
        // Canonical layout allocates the /1 block first; the proportions
        // (not the exact addresses) are what Fig. 1's 1:1:2 split fixes.
        let parts = weighted_split(&[1, 1, 2]);
        let lens: Vec<u8> = parts
            .iter()
            .map(|p| match p {
                Value::Prefix { len, .. } => *len,
                _ => panic!("expected prefixes"),
            })
            .collect();
        assert_eq!(lens, vec![2, 2, 1]);
    }

    #[test]
    fn weighted_split_disjoint_covering_and_proportional() {
        for weights in [vec![1u64, 1], vec![1, 1, 2], vec![2, 1, 4, 1], vec![8u64]] {
            let parts = weighted_split(&weights);
            let total: u64 = weights.iter().sum();
            // Probe a grid of source addresses: exactly one prefix matches,
            // and hit counts are proportional to the weights.
            let probes = 1u64 << 12;
            let mut hits = vec![0u64; parts.len()];
            for i in 0..probes {
                let v = i << 20; // spread over the top bits
                let matching: Vec<usize> = parts
                    .iter()
                    .enumerate()
                    .filter(|(_, p)| p.matches(v, 32))
                    .map(|(j, _)| j)
                    .collect();
                assert_eq!(matching.len(), 1, "weights {weights:?} probe {v:#x}");
                hits[matching[0]] += 1;
            }
            for (j, &w) in weights.iter().enumerate() {
                assert_eq!(hits[j], probes * w / total, "weights {weights:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "powers of two")]
    fn weighted_split_rejects_non_power_weights() {
        weighted_split(&[3, 1]);
    }

    #[test]
    fn reweight_backends_works_in_every_representation() {
        let g = Gwlb::fig1();
        let new_split: Vec<(Value, String)> = even_split(4)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, format!("nvm{i}")))
            .collect();
        // Expected post-state: rebuild the workload with tenant 1 resplit.
        let mut services = g.services.clone();
        services[0].backends = new_split.clone();
        let want = Gwlb::from_services(services);

        for repr in [
            g.universal.clone(),
            g.normalized(JoinKind::Goto).unwrap(),
            g.normalized(JoinKind::Metadata).unwrap(),
            g.normalized(JoinKind::Rematch).unwrap(),
        ] {
            let plan = g.reweight_backends(&repr, 0, &new_split);
            // M deletes + M' inserts, in every representation.
            assert_eq!(plan.touched_entries(), 2 + 4, "{}", repr.start);
            let mut after = repr.clone();
            mapro_control::apply_plan(&mut after, &plan).unwrap();
            mapro_core::assert_equivalent(&want.universal, &after);
        }
    }

    #[test]
    fn reweight_is_multi_update_everywhere_negative_result() {
        // Unlike move-port, the resplit has hazardous intermediate states
        // in the normalized forms too: after the deletes, part of the
        // source space is unserved.
        let g = Gwlb::fig1();
        let goto = g.normalized(JoinKind::Goto).unwrap();
        let new_split: Vec<(Value, String)> = even_split(2)
            .into_iter()
            .enumerate()
            .map(|(i, p)| (p, format!("nvm{i}")))
            .collect();
        let plan = g.reweight_backends(&goto, 0, &new_split);
        assert!(plan.needs_bundle(), "resplit cannot be a single flow-mod");
        // Intermediate state after the deletes: tenant-1 HTTP traffic drops.
        let mid = mapro_control::apply_prefix(&goto, &plan, 2).unwrap();
        let pkt = mapro_core::Packet::from_fields(
            &goto.catalog,
            &[
                ("ip_src", 7),
                ("ip_dst", mapro_packet::ipv4("192.0.2.1") as u64),
                ("tcp_dst", 80),
            ],
        );
        assert!(
            mid.run(&pkt).unwrap().dropped,
            "halfway state loses traffic"
        );
    }

    #[test]
    fn random_weighted_workload_equivalent_across_joins() {
        let g = Gwlb::random_weighted(4, &[1, 1, 2], 9);
        assert_eq!(g.universal.table("t0").unwrap().len(), 12);
        for join in [JoinKind::Goto, JoinKind::Metadata, JoinKind::Rematch] {
            let p = g.normalized(join).unwrap();
            assert_equivalent(&g.universal, &p);
        }
    }
}
