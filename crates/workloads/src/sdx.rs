//! The SDX appendix use case (Fig. 5): beyond the third normal form.
//!
//! A simplified software-defined IXP: member `A` ranks egress members per
//! (prefix, port) by its outbound policy restricted to actual BGP
//! announcements, and each egress member balances its ingress routers by
//! source prefix (inbound policy). The collapsed universal table encodes
//! announcement × outbound × inbound jointly; splitting it back into the
//! three policy tables is a *join dependency*, not derivable from
//! functional dependencies (4NF/5NF territory), and the naive chained
//! split is order-dependent — the appendix's point.

use mapro_core::{ActionSem, AttrId, Catalog, Pipeline, Table, Value};

/// The SDX workload.
#[derive(Debug, Clone)]
pub struct Sdx {
    /// The collapsed universal policy table.
    pub universal: Pipeline,
    /// `ip_dst` (announced prefix space).
    pub ip_dst: AttrId,
    /// `tcp_dst` (policy port space).
    pub tcp_dst: AttrId,
    /// `ip_src` (inbound balancing key).
    pub ip_src: AttrId,
    /// Selected egress member (opaque annotation — the `N`/`M` columns of
    /// Fig. 5).
    pub member: AttrId,
    /// Forwarding action (egress router).
    pub fwd: AttrId,
    /// Components of the announcement/outbound/inbound split.
    pub components: Vec<Vec<AttrId>>,
}

impl Sdx {
    /// The Fig. 5-flavoured instance: members C and D; C announces P₁
    /// only, D announces P₁ and P₂; A prefers C for HTTP to prefixes C
    /// announces; C balances ingress across routers c₁/c₂ by source
    /// prefix; everything else follows BGP ranking to D.
    pub fn fig5() -> Sdx {
        let mut c = Catalog::new();
        let ip_dst = c.field("ip_dst", 32);
        let tcp_dst = c.field("tcp_dst", 16);
        let ip_src = c.field("ip_src", 32);
        let member = c.action("member", ActionSem::Opaque);
        let fwd = c.action("fwd", ActionSem::Output);
        let p1 = mapro_packet::ipv4("203.0.113.0") as u64;
        let p2 = mapro_packet::ipv4("198.51.100.0") as u64;
        let mut t = Table::new("sdx", vec![ip_dst, tcp_dst, ip_src], vec![member, fwd]);
        let lo = Value::prefix(0, 1, 32);
        let hi = Value::prefix(0x8000_0000, 1, 32);
        let rows: Vec<(u64, u64, Value, &str, &str)> = vec![
            // P1 HTTP → C (announced by C), balanced c1/c2 by source.
            (p1, 80, lo.clone(), "C", "c1"),
            (p1, 80, hi.clone(), "C", "c2"),
            // P1 non-HTTP → BGP ranking: D, balanced d1/d2 by source
            // (each member's inbound policy is member-wide, which is what
            // makes the 3-way split a *join dependency*).
            (p1, 22, lo.clone(), "D", "d1"),
            (p1, 22, hi.clone(), "D", "d2"),
            // P2 (not announced by C) → D for every port.
            (p2, 80, lo.clone(), "D", "d1"),
            (p2, 80, hi.clone(), "D", "d2"),
            (p2, 22, lo, "D", "d1"),
            (p2, 22, hi, "D", "d2"),
        ];
        for (d, pt, s, m, f) in rows {
            t.row(
                vec![Value::Int(d), Value::Int(pt), s],
                vec![Value::sym(m), Value::sym(f)],
            );
        }
        let components = vec![
            // announcement: which members announce the prefix → candidate
            // member set is a function of (ip_dst, member) pairs.
            vec![ip_dst, member],
            // outbound policy: (prefix, port) → selected member.
            vec![ip_dst, tcp_dst, member],
            // inbound policy: member × source → router.
            vec![member, ip_src, fwd],
        ];
        Sdx {
            universal: Pipeline::single(c, t),
            ip_dst,
            tcp_dst,
            ip_src,
            member,
            fwd,
            components,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::{assert_equivalent, check_equivalent, EquivConfig};
    use mapro_fd::join_dependency_holds;
    use mapro_normalize::{chain_components_naive, decompose_jd};

    #[test]
    fn split_is_a_join_dependency_not_an_fd() {
        let s = Sdx::fig5();
        let t = s.universal.table("sdx").unwrap();
        assert!(join_dependency_holds(t, &s.components));
        // No FD justifies the inbound split: ip_src does not determine fwd
        // (c1 vs d1 depending on member), member alone does not determine
        // fwd (C → c1 or c2).
        let mined = mapro_fd::mine_fds(t, &s.universal.catalog);
        let u = &mined.fds.universe;
        assert!(!mined
            .fds
            .implies(mapro_fd::Fd::new(u.encode(&[s.member]), u.encode(&[s.fwd]))));
        assert!(!mined
            .fds
            .implies(mapro_fd::Fd::new(u.encode(&[s.ip_src]), u.encode(&[s.fwd]))));
    }

    #[test]
    fn naive_three_table_pipeline_is_incorrect() {
        let s = Sdx::fig5();
        let naive = chain_components_naive(&s.universal, "sdx", &s.components).unwrap();
        // The appendix: T_in is not order-independent.
        let t_in = naive.tables.last().unwrap();
        assert!(!t_in.order_independence(&naive.catalog).is_empty());
        let r = check_equivalent(&s.universal, &naive, &EquivConfig::default()).unwrap();
        assert!(!r.is_equivalent(), "naive SDX chain must misroute");
    }

    #[test]
    fn all_metadata_pipeline_is_correct() {
        let s = Sdx::fig5();
        let tagged = decompose_jd(&s.universal, "sdx", &s.components).unwrap();
        assert_eq!(tagged.tables.len(), 3);
        assert_equivalent(&s.universal, &tagged);
    }

    #[test]
    fn inbound_balancing_actually_balances() {
        let s = Sdx::fig5();
        let tagged = decompose_jd(&s.universal, "sdx", &s.components).unwrap();
        let p1 = mapro_packet::ipv4("203.0.113.0") as u64;
        for (src, want) in [(0u64, "c1"), (1u64 << 31, "c2")] {
            let pkt = mapro_core::Packet::from_fields(
                &tagged.catalog,
                &[("ip_dst", p1), ("tcp_dst", 80), ("ip_src", src)],
            );
            let v = tagged.run(&pkt).unwrap();
            assert_eq!(v.output.as_deref(), Some(want));
        }
    }
}
