//! The L3 forwarding pipeline (Fig. 2, §3).
//!
//! A universal table `(eth_type, ip_dst | mod_ttl, mod_smac, mod_dmac,
//! out)` with disjoint prefixes P₁–P₄ mapping to next-hops; several
//! prefixes share a next-hop (⇒ `mod_dmac → (mod_ttl, mod_smac, out)`,
//! violating 2NF) and several next-hops share an outgoing port
//! (⇒ `out → mod_smac`, violating 3NF). The 3NF pipeline factors the
//! constant `(eth_type | mod_ttl)` stage out as a Cartesian product
//! (Fig. 2c).

use mapro_core::{ActionSem, AttrId, Catalog, Pipeline, Table, Value};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The L3 workload: universal pipeline plus attribute handles.
#[derive(Debug, Clone)]
pub struct L3 {
    /// The universal (single-table) representation.
    pub universal: Pipeline,
    /// `eth_type` attribute.
    pub eth_type: AttrId,
    /// `ip_dst` attribute.
    pub ip_dst: AttrId,
    /// `mod_ttl` attribute (opaque TTL decrement).
    pub mod_ttl: AttrId,
    /// `mod_smac` attribute (source-MAC rewrite).
    pub mod_smac: AttrId,
    /// `mod_dmac` attribute (destination-MAC rewrite).
    pub mod_dmac: AttrId,
    /// `out` attribute.
    pub out: AttrId,
}

/// One route: `(prefix, next-hop dmac, smac, port)`.
pub type Route = (Value, u64, u64, String);

impl L3 {
    /// Build from explicit routes.
    pub fn from_routes(routes: Vec<Route>) -> L3 {
        let mut c = Catalog::new();
        let eth_type = c.field("eth_type", 16);
        let ip_dst = c.field("ip_dst", 32);
        let eth_src_f = c.field("eth_src", 48);
        let eth_dst_f = c.field("eth_dst", 48);
        let mod_ttl = c.action("mod_ttl", ActionSem::Opaque);
        let mod_smac = c.action("mod_smac", ActionSem::SetField(eth_src_f));
        let mod_dmac = c.action("mod_dmac", ActionSem::SetField(eth_dst_f));
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new(
            "l3",
            vec![eth_type, ip_dst],
            vec![mod_ttl, mod_smac, mod_dmac, out],
        );
        for (pfx, dmac, smac, port) in &routes {
            t.row(
                vec![Value::Int(0x0800), pfx.clone()],
                vec![
                    Value::sym("dec"),
                    Value::Int(*smac),
                    Value::Int(*dmac),
                    Value::sym(port),
                ],
            );
        }
        L3 {
            universal: Pipeline::single(c, t),
            eth_type,
            ip_dst,
            mod_ttl,
            mod_smac,
            mod_dmac,
            out,
        }
    }

    /// The exact instance of Fig. 2a: P₁, P₄ → D₁; P₂ → D₂ (same port and
    /// smac as D₁); P₃ → D₃ on a different port.
    pub fn fig2() -> L3 {
        let p = |bits: u64, len: u8| Value::prefix(bits << 24, len, 32);
        L3::from_routes(vec![
            (p(10, 8), 0xD1, 0x51, "p1".into()),
            (p(20, 8), 0xD2, 0x51, "p1".into()),
            (p(30, 8), 0xD3, 0x52, "p2".into()),
            (p(40, 8), 0xD1, 0x51, "p1".into()),
        ])
    }

    /// Random parametric instance: `n_prefixes` disjoint /16s distributed
    /// over `n_nexthops` next-hops over `n_ports` ports.
    pub fn random(n_prefixes: usize, n_nexthops: usize, n_ports: usize, seed: u64) -> L3 {
        assert!(n_prefixes <= 65_536, "at most 2^16 disjoint /16s");
        assert!(n_nexthops >= 1 && n_ports >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Next-hop k uses port (k mod n_ports); ports share smacs.
        let routes = (0..n_prefixes)
            .map(|i| {
                let nh = rng.gen_range(0..n_nexthops) as u64;
                let port = nh % n_ports as u64;
                (
                    Value::prefix((i as u64) << 16, 16, 32),
                    0xD000 + nh,
                    0x5000 + port,
                    format!("p{port}"),
                )
            })
            .collect();
        L3::from_routes(routes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::assert_equivalent;
    use mapro_fd::NfLevel;
    use mapro_normalize::{
        factor_constants, normalize, pipeline_level, FactorPlacement, NormalizeOpts,
    };

    #[test]
    fn fig2_universal_violates_2nf() {
        let l3 = L3::fig2();
        let lvl = pipeline_level(&l3.universal);
        assert!(lvl < NfLevel::Second, "level {lvl:?}");
    }

    #[test]
    fn fig2_normalizes_to_3nf_equivalently() {
        let l3 = L3::fig2();
        let n = normalize(&l3.universal, &NormalizeOpts::default());
        assert!(n.complete(), "skipped {:?}", n.skipped);
        assert!(pipeline_level(&n.pipeline) >= NfLevel::Third);
        assert_equivalent(&l3.universal, &n.pipeline);
        // Normalization produced a multi-stage pipeline (group tables).
        assert!(n.pipeline.tables.len() >= 2);
    }

    #[test]
    fn fig2c_cartesian_factoring() {
        let l3 = L3::fig2();
        // eth_type and mod_ttl are constant → factor them out first.
        let factored = factor_constants(
            &l3.universal,
            "l3",
            Some(&[l3.eth_type, l3.mod_ttl]),
            FactorPlacement::Before,
        )
        .unwrap();
        assert_eq!(factored.tables.len(), 2);
        assert_eq!(factored.tables[0].len(), 1);
        assert_equivalent(&l3.universal, &factored);
        // The remainder still normalizes.
        let n = normalize(&factored, &NormalizeOpts::default());
        assert!(n.complete());
        assert_equivalent(&l3.universal, &n.pipeline);
    }

    #[test]
    fn random_instance_normalizes() {
        let l3 = L3::random(32, 6, 3, 11);
        let n = normalize(&l3.universal, &NormalizeOpts::default());
        assert!(n.complete(), "skipped {:?}", n.skipped);
        assert_equivalent(&l3.universal, &n.pipeline);
    }

    #[test]
    fn random_is_deterministic() {
        let a = L3::random(16, 4, 2, 3);
        let b = L3::random(16, 4, 2, 3);
        assert_eq!(a.universal, b.universal);
    }
}
