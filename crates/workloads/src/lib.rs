//! # mapro-workloads — the paper's concrete programs
//!
//! Generators for every example and benchmark workload of the paper, each
//! packaged with its attribute handles and (where the paper discusses
//! them) intent compilers, counter placement and invariants:
//!
//! * [`gwlb`] — the cloud gateway & load balancer (Fig. 1, Table 1,
//!   Fig. 4): exact figure instance plus the §5 parametric N×M form.
//! * [`l3`] — the L3 forwarding pipeline (Fig. 2).
//! * [`vlan`] — the Fig. 3 counterexample table.
//! * [`sdx`] — the appendix's SDX use case (Fig. 5).
//! * [`random_tables`] — random tables with planted dependencies for
//!   property tests.
//! * [`enterprise`] — a composed ACL → NAT → L3 edge pipeline (extension):
//!   per-stage normalization in a program whose rewrites feed later
//!   matches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod enterprise;
pub mod gwlb;
pub mod l3;
pub mod random_tables;
pub mod sdx;
pub mod vlan;

pub use enterprise::Enterprise;
pub use gwlb::{even_split, weighted_split, Gwlb, Service};
pub use l3::{Route, L3};
pub use random_tables::{random_table, RandomSpec, RandomTable};
pub use sdx::Sdx;
pub use vlan::Vlan;
