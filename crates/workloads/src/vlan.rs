//! The VLAN access table of Fig. 3 — the paper's counterexample.
//!
//! `(in_port, vlan | out)` with the *action-to-match* dependency
//! `out → vlan`. Decomposing along it would need the first stage to pick
//! `out` from `in_port` alone, which is ambiguous (`in_port = 1` maps to
//! two outputs) — the produced stage violates 1NF order-independence and
//! the decomposition must be refused.

use mapro_core::{ActionSem, AttrId, Catalog, Pipeline, Table, Value};

/// The Fig. 3 workload.
#[derive(Debug, Clone)]
pub struct Vlan {
    /// The universal table.
    pub universal: Pipeline,
    /// `in_port` attribute.
    pub in_port: AttrId,
    /// `vlan` attribute.
    pub vlan: AttrId,
    /// `out` attribute.
    pub out: AttrId,
}

impl Vlan {
    /// The exact instance of Fig. 3a.
    pub fn fig3() -> Vlan {
        let mut c = Catalog::new();
        let in_port = c.field("in_port", 32);
        let vlan = c.field("vlan", 12);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t0", vec![in_port, vlan], vec![out]);
        for (ip, vl, o) in [(1u64, 1u64, "1"), (1, 2, "2"), (2, 1, "1"), (3, 1, "3")] {
            t.row(vec![Value::Int(ip), Value::Int(vl)], vec![Value::sym(o)]);
        }
        Vlan {
            universal: Pipeline::single(c, t),
            in_port,
            vlan,
            out,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_fd::mine_fds;
    use mapro_normalize::{decompose, DecomposeError, DecomposeOpts};

    #[test]
    fn out_determines_vlan_in_the_instance() {
        let v = Vlan::fig3();
        let t = v.universal.table("t0").unwrap();
        let mined = mine_fds(t, &v.universal.catalog);
        let u = &mined.fds.universe;
        let fd = mapro_fd::Fd::new(u.encode(&[v.out]), u.encode(&[v.vlan]));
        assert!(mined.fds.implies(fd));
    }

    #[test]
    fn fig3_decomposition_refused_for_every_join() {
        let v = Vlan::fig3();
        for join in [
            mapro_normalize::JoinKind::Metadata,
            mapro_normalize::JoinKind::Goto,
        ] {
            let err = decompose(
                &v.universal,
                "t0",
                &[v.out],
                &[v.vlan],
                &DecomposeOpts {
                    join,
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(err, DecomposeError::StageNot1NF { .. }),
                "{join}: {err:?}"
            );
        }
        // Rematch cannot even express an action-valued X.
        let err = decompose(
            &v.universal,
            "t0",
            &[v.out],
            &[v.vlan],
            &DecomposeOpts {
                join: mapro_normalize::JoinKind::Rematch,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(err, DecomposeError::RematchNeedsFieldX);
    }

    #[test]
    fn forced_fig3b_pipeline_misroutes() {
        // Reproduce Fig. 3b exactly (allow_non_1nf) and exhibit the broken
        // packet: in_port=1, vlan=2 matches T1's first row (tag for out=1)
        // and then dies or misroutes in T2.
        let v = Vlan::fig3();
        let broken = decompose(
            &v.universal,
            "t0",
            &[v.out],
            &[v.vlan],
            &DecomposeOpts {
                allow_non_1nf: true,
                ..Default::default()
            },
        )
        .unwrap();
        let r = mapro_core::check_equivalent(
            &v.universal,
            &broken,
            &mapro_core::EquivConfig::default(),
        )
        .unwrap();
        match r {
            mapro_core::EquivOutcome::Counterexample(cx) => {
                // The distinguishing packet involves the ambiguous in_port.
                let in_port = cx
                    .fields
                    .iter()
                    .find(|(n, _)| n == "in_port")
                    .map(|(_, v)| *v);
                assert_eq!(in_port, Some(1));
            }
            _ => panic!("Fig. 3b pipeline should be inequivalent"),
        }
    }
}
