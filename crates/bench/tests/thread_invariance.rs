//! End-to-end thread invariance: the binaries must produce byte-identical
//! output no matter how the pool is sized, and must reject malformed
//! thread counts as usage errors (exit 2).
//!
//! This drives the real `MAPRO_THREADS` fallback path — the same contract
//! the CI thread-matrix job enforces by diffing `repro` JSON across
//! thread counts.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn repro_json_is_byte_identical_across_thread_counts() {
    // fig5 exercises check_equivalent (the pool's chunked scan); table1
    // replays traces. Small --packets keeps the matrix cheap.
    for exp in ["fig5", "table1"] {
        let mut outputs = Vec::new();
        for threads in ["1", "2", "8"] {
            let out = repro()
                .args(["--experiment", exp, "--packets", "2000", "--json"])
                .env("MAPRO_THREADS", threads)
                .output()
                .expect("repro runs");
            assert!(
                out.status.success(),
                "{exp} at {threads} threads: {}",
                String::from_utf8_lossy(&out.stderr)
            );
            outputs.push(out.stdout);
        }
        assert_eq!(
            outputs[0], outputs[1],
            "{exp}: output differs between 1 and 2 threads"
        );
        assert_eq!(
            outputs[0], outputs[2],
            "{exp}: output differs between 1 and 8 threads"
        );
    }
}

#[test]
fn malformed_thread_counts_are_usage_errors() {
    for args in [
        vec!["--threads", "0"],
        vec!["--threads", "abc"],
        vec!["--threads"],
    ] {
        let out = repro().args(&args).output().expect("repro runs");
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
    }
    let out = repro()
        .args(["--experiment", "fig1"])
        .env("MAPRO_THREADS", "banana")
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2), "bad MAPRO_THREADS must exit 2");
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("MAPRO_THREADS"), "{err}");
}

#[test]
fn explicit_threads_flag_beats_bad_environment() {
    let out = repro()
        .args(["--experiment", "fig1", "--threads", "2"])
        .env("MAPRO_THREADS", "banana")
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "--threads must take precedence over MAPRO_THREADS: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn mapro_cli_accepts_and_validates_threads() {
    let mapro = env!("CARGO_BIN_EXE_mapro");
    let ok = Command::new(mapro)
        .args(["demo", "fig1", "--threads", "2"])
        .output()
        .expect("mapro runs");
    assert!(ok.status.success());
    let bad = Command::new(mapro)
        .args(["demo", "fig1", "--threads", "zero"])
        .output()
        .expect("mapro runs");
    assert_eq!(bad.status.code(), Some(2));
}
