//! Trace determinism: for a fixed-seed workload the collected span
//! *structure* — the sorted (path, count) table from
//! [`mapro_obs::trace::TraceData::structure`] — must be identical at any
//! thread count. Timing and track assignment may vary; which spans exist,
//! how they nest, and how many of each fire may not. This is the tracing
//! counterpart of the byte-identical-output contract in
//! `thread_invariance.rs`.
//!
//! Also pins down the ring-buffer overflow contract (oldest events drop
//! first, every drop is counted) and that concurrent emitters lose
//! nothing when the ring is large enough.

use mapro_core::{EquivConfig, EquivMode, EquivOutcome};
use mapro_normalize::JoinKind;
use mapro_obs::trace::{self, TraceConfig};
use mapro_switch::{OvsSim, Switch};
use mapro_workloads::Gwlb;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Trace sessions are process-global; serialize the tests touching them
/// (poisoning recovery keeps one failed test from cascading).
fn lock() -> MutexGuard<'static, ()> {
    static M: OnceLock<Mutex<()>> = OnceLock::new();
    match M.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Run `work` under a fresh trace session at `threads` pool threads and
/// return the collected span structure.
fn structure_at(threads: usize, work: impl FnOnce()) -> Vec<(String, usize)> {
    mapro_par::set_threads(threads);
    assert!(
        trace::start(&TraceConfig::default()),
        "a trace session leaked from another test"
    );
    work();
    let data = trace::stop();
    mapro_par::set_threads(0);
    data.structure()
}

#[test]
fn symbolic_check_structure_is_thread_invariant() {
    let _g = lock();
    // An *equivalent* pair: a counterexample would let the chunked cross
    // scan exit early, making chunk counts legitimately thread-dependent.
    let g = Gwlb::random(8, 4, 2019);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    let cfg = EquivConfig {
        mode: EquivMode::Symbolic,
        ..EquivConfig::default()
    };
    let run = |threads| {
        structure_at(threads, || {
            let out = mapro_sym::check_equivalent_with(
                &g.universal,
                &goto,
                &cfg,
                &mapro_sym::SymConfig::default(),
            )
            .expect("comparable");
            assert!(matches!(out, EquivOutcome::Equivalent { .. }));
        })
    };
    let s1 = run(1);
    let s4 = run(4);
    assert_eq!(s1, s4, "span structure differs between 1 and 4 threads");
    assert!(
        s1.iter().any(|(p, _)| p == "check.symbolic.cross.chunk"),
        "cross-intersection chunks missing from {s1:?}"
    );
}

#[test]
fn replay_structure_is_thread_invariant() {
    let _g = lock();
    let g = Gwlb::random(8, 4, 2019);
    let tr = mapro_packet::generate(&g.universal.catalog, &g.trace_spec(), 2_000, 7);
    let run = |threads| {
        structure_at(threads, || {
            let rep = mapro_switch::run_modeled_parallel(
                &|| Box::new(OvsSim::compile(&g.universal)) as Box<dyn Switch + Send>,
                &tr,
                4,
            );
            assert_eq!(rep.packets, 2_000);
        })
    };
    let s1 = run(1);
    let s4 = run(4);
    assert_eq!(s1, s4, "span structure differs between 1 and 4 threads");
    // The model keeps 4 shards regardless of thread count.
    let shards = s1
        .iter()
        .find(|(p, _)| p == "replay.shard")
        .map(|(_, n)| *n);
    assert_eq!(shards, Some(4), "expected 4 shard spans in {s1:?}");
}

#[test]
fn ring_overflow_drops_oldest_and_counts() {
    let _g = lock();
    assert!(trace::start(&TraceConfig { buffer_capacity: 8 }));
    for i in 0..100u64 {
        let mut sp = trace::span("tick");
        sp.set("i", i);
    }
    let data = trace::stop();
    assert_eq!(data.dropped, 92, "every overflow must be counted");
    assert_eq!(data.events.len(), 8);
    // Oldest-first eviction: the survivors are the last 8 spans.
    let is: Vec<u64> = data
        .events
        .iter()
        .filter_map(|e| match e.fields.as_slice() {
            [("i", mapro_obs::trace::FieldVal::U64(v))] => Some(*v),
            _ => None,
        })
        .collect();
    assert_eq!(is, (92..100).collect::<Vec<u64>>());
}

#[test]
fn concurrent_emitters_lose_nothing() {
    let _g = lock();
    assert!(trace::start(&TraceConfig::default()));
    std::thread::scope(|s| {
        for t in 0..8usize {
            s.spawn(move || {
                trace::set_track_name(&format!("emitter-{t}"));
                for i in 0..200u64 {
                    let mut sp = trace::span("work");
                    sp.set("i", i);
                }
            });
        }
    });
    let data = trace::stop();
    assert_eq!(data.dropped, 0);
    let works = data.events.iter().filter(|e| e.name == "work").count();
    assert_eq!(works, 8 * 200, "all concurrently emitted spans collected");
    // Each emitter got exactly one named track, and no default `t{n}`
    // clutter track was registered alongside it.
    let mut names: Vec<&str> = data
        .tracks
        .iter()
        .map(|t| t.name.as_str())
        .filter(|n| n.starts_with("emitter-"))
        .collect();
    names.sort_unstable();
    assert_eq!(names.len(), 8, "tracks: {:?}", data.tracks);
    assert!(
        !data.tracks.iter().any(|t| {
            let n = t.name.as_str();
            n.starts_with('t') && n[1..].chars().all(|c| c.is_ascii_digit())
        }),
        "auto-named clutter track registered: {:?}",
        data.tracks
    );
}
