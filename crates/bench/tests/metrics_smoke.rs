//! Smoke test of the `--metrics` plumbing: a real `repro` run must emit a
//! parseable JSON report with counters and histograms from the
//! instrumented crates.

use serde::Content;
use std::process::Command;

#[test]
fn repro_fig1_emits_parseable_metrics_json() {
    let dir = std::env::temp_dir().join(format!("mapro-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--experiment", "fig1", "--metrics", path.to_str().unwrap()])
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let doc = serde_json::parse(&text).expect("metrics JSON parses");
    let Some(Content::Map(metrics)) = doc.get("metrics") else {
        panic!("no metrics object in {text}");
    };

    // fig1 normalizes the GWLB pipeline, so the decompose instrumentation
    // must have fired (when built with the default `obs` feature).
    if cfg!(feature = "obs") {
        assert!(
            metrics
                .iter()
                .any(|(k, _)| k == "normalize.decompose.calls"),
            "expected decompose counters, got: {:?}",
            metrics.iter().map(|(k, _)| k).collect::<Vec<_>>()
        );
        // Every entry carries a kind tag and histograms carry quantiles.
        for (name, v) in metrics {
            let kind = match v.get("kind") {
                Some(Content::Str(s)) => s.clone(),
                other => panic!("metric {name} has no kind: {other:?}"),
            };
            if kind == "histogram" {
                for field in ["count", "sum", "p50", "p90", "p99", "max"] {
                    assert!(v.get(field).is_some(), "{name} missing {field}");
                }
            }
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn repro_chaos_emits_recovery_counters_and_summary() {
    let dir = std::env::temp_dir().join(format!("mapro-chaos-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("metrics.json");

    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args(["--experiment", "chaos", "--metrics", path.to_str().unwrap()])
        .output()
        .expect("repro runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // The driver prints a one-line summary per recovery, and the sweep
    // ends by judging the guardrail across all cells.
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("recovery: epoch"), "{stdout}");
    assert!(stdout.contains("guardrail: 0 failure(s)"), "{stdout}");

    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let doc = serde_json::parse(&text).expect("metrics JSON parses");
    let Some(Content::Map(metrics)) = doc.get("metrics") else {
        panic!("no metrics object in {text}");
    };

    if cfg!(feature = "obs") {
        let count = |name: &str| -> u64 {
            let v = metrics
                .iter()
                .find(|(k, _)| k == name)
                .unwrap_or_else(|| {
                    panic!(
                        "missing counter {name}; got: {:?}",
                        metrics.iter().map(|(k, _)| k).collect::<Vec<_>>()
                    )
                })
                .1
                .get("value");
            match v {
                Some(Content::U64(n)) => *n,
                other => panic!("counter {name} has no u64 value: {other:?}"),
            }
        };
        // The recovery control plane's own counters. All five must exist
        // (they are declared at construction); the sweep deterministically
        // exercises the WAL, failovers and the epoch fence.
        assert!(count("control.wal.appends") > 0);
        assert!(count("control.wal.replays") > 0);
        assert!(count("control.failovers") > 0);
        assert!(count("control.epoch.rejections") > 0);
        let _ = count("control.shed"); // declared even when nothing sheds
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn replay_cached_pre_registers_megaflow_and_compile_metrics() {
    let dir = std::env::temp_dir().join(format!("mapro-megaflow-metrics-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("fig1.json");
    let path = dir.join("metrics.json");

    let demo = Command::new(env!("CARGO_BIN_EXE_mapro"))
        .args(["demo", "fig1"])
        .output()
        .expect("demo runs");
    assert!(demo.status.success());
    std::fs::write(&prog, &demo.stdout).unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_mapro"))
        .args([
            "replay",
            prog.to_str().unwrap(),
            "--engine",
            "cached",
            "--packets",
            "2000",
            "--metrics",
            path.to_str().unwrap(),
        ])
        .output()
        .expect("replay runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let text = std::fs::read_to_string(&path).expect("metrics file written");
    let doc = serde_json::parse(&text).expect("metrics JSON parses");
    let Some(Content::Map(metrics)) = doc.get("metrics") else {
        panic!("no metrics object in {text}");
    };

    if cfg!(feature = "obs") {
        // The megaflow counters are registered when the cache is
        // constructed, not lazily on first event — `evictions` and
        // `invalidations` must be present even though this replay never
        // evicts or receives a flow-mod.
        let count = |name: &str| -> u64 {
            let v = metrics
                .iter()
                .find(|(k, _)| k == name)
                .unwrap_or_else(|| {
                    panic!(
                        "missing counter {name}; got: {:?}",
                        metrics.iter().map(|(k, _)| k).collect::<Vec<_>>()
                    )
                })
                .1
                .get("value");
            match v {
                Some(Content::U64(n)) => *n,
                other => panic!("counter {name} has no u64 value: {other:?}"),
            }
        };
        assert!(
            count("switch.megaflow.hits") > 0,
            "Zipf-free uniform trace still repeats flows"
        );
        assert!(
            count("switch.megaflow.misses") > 0,
            "first packet of each cube must miss"
        );
        let _ = count("switch.megaflow.evictions");
        let _ = count("switch.megaflow.invalidations");
        // The compiled tier's compile time is a histogram keyed by phase.
        assert!(
            metrics.iter().any(|(k, _)| k == "switch.compile.ns"),
            "expected compile-time histogram, got: {:?}",
            metrics.iter().map(|(k, _)| k).collect::<Vec<_>>()
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn incremental_session_pre_registers_sym_incr_metrics() {
    use mapro_sym::{CoverBackend, IncrementalChecker, SymConfig};

    // Opening a session must register the sym.incr.* family — a scrape
    // between construction and the first update already sees all four at
    // zero, so dashboards never miss the series.
    let p = mapro_workloads::Gwlb::fig1().universal;
    let cfg = SymConfig {
        backend: CoverBackend::Cube,
        ..SymConfig::default()
    };
    let _s = IncrementalChecker::new(&p, &p, &cfg).expect("session opens");

    if cfg!(feature = "obs") {
        let snap = mapro_obs::registry().snapshot();
        let names: Vec<&str> = snap.entries.iter().map(|e| e.name.as_str()).collect();
        for m in [
            "sym.incr.checks",
            "sym.incr.atoms_rechecked",
            "sym.incr.fallbacks",
            "sym.incr.proof_ns",
        ] {
            assert!(names.contains(&m), "missing {m}; got {names:?}");
        }
        for e in &snap.entries {
            match (e.name.as_str(), &e.value) {
                ("sym.incr.proof_ns", mapro_obs::MetricValue::Histogram(_)) => {}
                ("sym.incr.proof_ns", other) => {
                    panic!("sym.incr.proof_ns must be a histogram, got {other:?}")
                }
                (n, mapro_obs::MetricValue::Counter(_)) if n.starts_with("sym.incr.") => {}
                (n, other) if n.starts_with("sym.incr.") => {
                    panic!("{n} must be a counter, got {other:?}")
                }
                _ => {}
            }
        }
    }
}

#[test]
fn repro_rejects_unknown_arguments() {
    let out = Command::new(env!("CARGO_BIN_EXE_repro"))
        .arg("--definitely-not-a-flag")
        .output()
        .expect("repro runs");
    assert_eq!(out.status.code(), Some(2));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown argument"), "{err}");
    // Usage errors are one line with a pointer, not a full usage dump.
    assert!(err.contains("try --help"), "{err}");
    assert_eq!(err.trim_end().lines().count(), 1, "{err:?}");
}

#[test]
fn repro_rejects_missing_and_malformed_values() {
    for args in [vec!["--packets"], vec!["--packets", "NaN"]] {
        let out = Command::new(env!("CARGO_BIN_EXE_repro"))
            .args(&args)
            .output()
            .expect("repro runs");
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert!(
            String::from_utf8_lossy(&out.stderr).contains("--packets"),
            "args: {args:?}"
        );
    }
}
