//! # mapro-bench — the experiment harness
//!
//! One function per paper artifact (every table and figure plus the §2
//! in-text quantitative claims), producing serializable result structs.
//! The `repro` binary renders them as text/JSON; the Criterion benches
//! exercise the same code paths under wall-clock measurement; the
//! workspace integration tests assert the published *shapes* hold (who
//! wins, by roughly what factor — not absolute numbers; the substrate is
//! a simulator, see DESIGN.md §2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;

pub use experiments::*;
