//! Regeneration functions for every table and figure of the paper.
//!
//! Experiment index (mirrors DESIGN.md §3): E1 = Fig. 1, E2 = Fig. 2,
//! E3 = Fig. 3, E4 = Fig. 4, E5 = Table 1, E6 = §2 encoding sizes,
//! E7 = §2 controllability, E8 = §2 monitorability, E9 = Theorem 1,
//! E10 = Fig. 5 / appendix, E11 = §5 ESwitch template mechanism,
//! E12 = OVS cache sensitivity, E13 = flow state explosion,
//! E14 = faults: churn under an unreliable control channel,
//! E15 = thread scaling, E16 = static analysis, E17 = symbolic vs
//! enumerative equivalence, E18 = phase attribution from span traces,
//! E19 = controller crash-recovery chaos sweep, E20 = Mpps-scale replay
//! engine comparison (interpreter vs compiled tier vs megaflow cache).

use mapro_core::{display, Pipeline};
use mapro_normalize::JoinKind;
use mapro_packet::generate;
use mapro_switch::{
    churn_sweep, run_modeled, ChurnPoint, ControlStall, EswitchSim, HwLatency, LagopusSim,
    NoviflowSim, OvsSim, Switch,
};
use mapro_workloads::{Gwlb, Sdx, Vlan, L3};
use serde::Serialize;

/// The §5 benchmark configuration.
#[derive(Debug, Clone, Serialize)]
pub struct BenchConfig {
    /// Number of services (paper: 20).
    pub services: usize,
    /// Backends per service (paper: 8).
    pub backends: usize,
    /// Packets per measured trace.
    pub packets: usize,
    /// RNG seed for workload and traffic.
    pub seed: u64,
}

impl Default for BenchConfig {
    fn default() -> Self {
        BenchConfig {
            services: 20,
            backends: 8,
            packets: 50_000,
            seed: 2019,
        }
    }
}

/// Provenance header embedded in every benchmark artifact, so the
/// regression gate (`scripts/bench_diff.py`) can refuse apples-to-oranges
/// comparisons (different seed, workload shape, or artifact schema)
/// instead of reporting them as regressions.
#[derive(Debug, Clone, Serialize)]
pub struct RunMeta {
    /// Artifact schema version; bump when the report shape changes.
    pub schema: u32,
    /// Experiment id (`faults`, `parscale`, `symscale`, `phases`, …).
    pub experiment: String,
    /// Workload seed the artifact was produced with.
    pub seed: u64,
    /// Resolved worker-pool size at production time.
    pub threads: usize,
    /// Crate version that produced the artifact.
    pub version: String,
    /// `available_parallelism` of the producing host.
    pub host_cores: usize,
}

impl RunMeta {
    /// Capture the provenance of the current run.
    pub fn new(experiment: &str, seed: u64) -> RunMeta {
        RunMeta {
            schema: 1,
            experiment: experiment.to_owned(),
            seed,
            threads: mapro_par::configured_threads(),
            version: env!("CARGO_PKG_VERSION").to_owned(),
            host_cores: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        }
    }
}

// ---------------------------------------------------------------- E5 ----

/// One row of Table 1.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Switch model.
    pub switch: String,
    /// Representation (`universal` / `goto`).
    pub repr: String,
    /// Modeled packet rate \[Mpps\].
    pub rate_mpps: f64,
    /// 3rd-quartile latency \[µs\].
    pub q3_latency_us: f64,
    /// Per-table templates chosen (ESwitch mechanism evidence).
    pub templates: Vec<String>,
}

/// Regenerate Table 1: static performance of the GWLB pipeline across the
/// four switch models, universal vs goto-normalized.
pub fn table1(cfg: &BenchConfig) -> Vec<Table1Row> {
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let goto = g.normalized(JoinKind::Goto).expect("gwlb decomposes");
    let trace = generate(&g.universal.catalog, &g.trace_spec(), cfg.packets, cfg.seed);

    let mut rows = Vec::new();
    for (repr_name, repr) in [("universal", &g.universal), ("goto", &goto)] {
        // OVS (with a warm-up pass so steady-state cache behaviour shows).
        {
            let mut sim = OvsSim::compile(repr);
            let _ = run_modeled(&mut sim, &trace); // warm the megaflow cache
            let rep = run_modeled(&mut sim, &trace);
            rows.push(Table1Row {
                switch: "OVS".into(),
                repr: repr_name.into(),
                rate_mpps: rep.mpps,
                q3_latency_us: rep.q3_latency_us(),
                templates: vec![format!("megaflow×{}", sim.cache_tuples())],
            });
        }
        // ESwitch.
        {
            let mut sim = EswitchSim::compile(repr).expect("compiles");
            let templates = sim
                .templates()
                .into_iter()
                .map(|(n, k)| format!("{n}:{k}"))
                .collect();
            let rep = run_modeled(&mut sim, &trace);
            rows.push(Table1Row {
                switch: "ESwitch".into(),
                repr: repr_name.into(),
                rate_mpps: rep.mpps,
                q3_latency_us: rep.q3_latency_us(),
                templates,
            });
        }
        // Lagopus.
        {
            let mut sim = LagopusSim::compile(repr).expect("compiles");
            let rep = run_modeled(&mut sim, &trace);
            rows.push(Table1Row {
                switch: "Lagopus".into(),
                repr: repr_name.into(),
                rate_mpps: rep.mpps,
                q3_latency_us: rep.q3_latency_us(),
                templates: vec!["tss".into()],
            });
        }
        // NoviFlow.
        {
            let mut sim = NoviflowSim::compile(repr).expect("compiles");
            let rep = run_modeled(&mut sim, &trace);
            rows.push(Table1Row {
                switch: "NoviFlow".into(),
                repr: repr_name.into(),
                rate_mpps: rep.mpps,
                q3_latency_us: rep.q3_latency_us(),
                templates: vec!["tcam".into()],
            });
        }
    }
    rows
}

/// One row of the join-abstraction comparison (E5b, extension).
#[derive(Debug, Clone, Serialize)]
pub struct JoinRow {
    /// Representation (universal or a join kind).
    pub repr: String,
    /// ESwitch-model throughput \[Mpps\].
    pub eswitch_mpps: f64,
    /// Encoding size (§2 fields).
    pub fields: usize,
    /// Templates chosen by the specializing datapath.
    pub templates: Vec<String>,
}

/// Extension experiment E5b: §4 notes the choice of join abstraction is
/// "highly implementation specific". On the specializing datapath the
/// choice is dramatic: the goto join's stages specialize fully, while the
/// metadata join's second stage matches (tag, ip_src) jointly and falls
/// back to the wildcard template — paying almost the universal price.
pub fn table1_joins(cfg: &BenchConfig) -> Vec<JoinRow> {
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let trace = generate(&g.universal.catalog, &g.trace_spec(), cfg.packets, cfg.seed);
    let mut rows = Vec::new();
    let mut add = |name: &str, p: &Pipeline| {
        let mut sim = EswitchSim::compile(p).expect("compiles");
        let templates = sim
            .templates()
            .into_iter()
            .map(|(n, k)| format!("{n}:{k}"))
            .collect();
        let rep = run_modeled(&mut sim, &trace);
        rows.push(JoinRow {
            repr: name.into(),
            eswitch_mpps: rep.mpps,
            fields: p.field_count(),
            templates,
        });
    };
    add("universal", &g.universal);
    for (name, join) in [
        ("goto", JoinKind::Goto),
        ("metadata", JoinKind::Metadata),
        ("rematch", JoinKind::Rematch),
    ] {
        let p = g.normalized(join).expect("decomposes");
        add(name, &p);
    }
    rows
}

// ---------------------------------------------------------------- E4 ----

/// One point of the Fig. 4 sweep.
#[derive(Debug, Clone, Serialize)]
pub struct Fig4Point {
    /// Control-plane update rate (intents/s).
    pub updates_per_sec: f64,
    /// Universal-table throughput \[Mpps\].
    pub universal_mpps: f64,
    /// Normalized-pipeline throughput \[Mpps\].
    pub normalized_mpps: f64,
    /// Universal 3rd-quartile latency \[µs\].
    pub universal_latency_us: f64,
    /// Normalized 3rd-quartile latency \[µs\].
    pub normalized_latency_us: f64,
}

/// Regenerate Fig. 4: reactiveness on the NoviFlow model. The per-intent
/// flow-mod counts come from the actual intent compiler against each
/// representation (8 entries universal, 1 normalized for M = 8) — the
/// "8× greater control plane churn" of §5.
pub fn fig4(cfg: &BenchConfig, rates: &[f64]) -> Vec<Fig4Point> {
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    let uni_sim = NoviflowSim::compile(&g.universal).expect("compiles");
    let line = uni_sim.line_rate_mpps();
    // Flow-mods per intent, per representation, from the compiler:
    let uni_plan = g.move_service_port(&g.universal, 0, 9999);
    let norm_plan = g.move_service_port(&goto, 0, 9999);
    let stall = ControlStall::default();
    let lat = HwLatency::default();
    let uni_stage_count = 1usize;
    let norm_stage_count = 2usize;
    let uni = churn_sweep(
        line,
        uni_stage_count,
        uni_plan.touched_entries(),
        true,
        rates,
        stall,
        lat,
    );
    let norm = churn_sweep(
        line,
        norm_stage_count,
        norm_plan.touched_entries(),
        true,
        rates,
        stall,
        lat,
    );
    uni.into_iter()
        .zip(norm)
        .map(
            |((r, u), (_, n)): ((f64, ChurnPoint), (f64, ChurnPoint))| Fig4Point {
                updates_per_sec: r,
                universal_mpps: u.mpps,
                normalized_mpps: n.mpps,
                universal_latency_us: u.latency_us,
                normalized_latency_us: n.latency_us,
            },
        )
        .collect()
}

/// One row of the queueing-level Fig. 4 (E4b, extension).
#[derive(Debug, Clone, Serialize)]
pub struct Fig4QueueRow {
    /// Intents per second.
    pub updates_per_sec: f64,
    /// Representation.
    pub repr: String,
    /// Delivered throughput \[Mpps\].
    pub mpps: f64,
    /// Q3 latency of delivered packets \[µs\].
    pub q3_latency_us: f64,
    /// Worst delivered latency \[µs\].
    pub max_latency_us: f64,
    /// Tail drops.
    pub dropped: usize,
}

/// Extension experiment E4b: Fig. 4 as a queueing system. Poisson intents
/// (compiled by the real intent compiler) stall a line-rate server with a
/// finite ingress buffer; throughput collapse and bounded survivor latency
/// emerge from one mechanism instead of two separate models.
pub fn fig4_queue(cfg: &BenchConfig, rates: &[f64]) -> Vec<Fig4QueueRow> {
    use mapro_switch::{queue_timeline, QueueConfig};
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    let uni_mods = g.move_service_port(&g.universal, 0, 9999).touched_entries();
    let norm_mods = g.move_service_port(&goto, 0, 9999).touched_entries();
    let qcfg = QueueConfig {
        offered_pps: 10.0e6,
        duration_sec: 0.5,
        buffer_pkts: 64,
        service_ns: 93.2,
    };
    let stall = ControlStall::default();
    let mut out = Vec::new();
    for &rate in rates {
        for (name, mods) in [("universal", uni_mods), ("goto", norm_mods)] {
            let events: Vec<(f64, usize, bool)> =
                mapro_control::poisson_stream(rate, qcfg.duration_sec, cfg.seed, |_| {
                    mapro_control::UpdatePlan {
                        intent: String::new(),
                        updates: Vec::new(),
                    }
                })
                .into_iter()
                .map(|e| (e.at_sec, mods, true))
                .collect();
            let r = queue_timeline(qcfg, &events, stall);
            out.push(Fig4QueueRow {
                updates_per_sec: rate,
                repr: name.into(),
                mpps: r.mpps,
                q3_latency_us: r.latency_us[2],
                max_latency_us: r.max_latency_us,
                dropped: r.dropped,
            });
        }
    }
    out
}

// ---------------------------------------------------------------- E6 ----

/// One row of the encoding-size comparison.
#[derive(Debug, Clone, Serialize)]
pub struct SizeRow {
    /// Services.
    pub n: usize,
    /// Backends per service.
    pub m: usize,
    /// Universal field count (§2 predicts `4MN`).
    pub universal: usize,
    /// Goto-normalized field count (§2 predicts `N(3+2M)`).
    pub goto: usize,
    /// Metadata-normalized field count.
    pub metadata: usize,
    /// Rematch-normalized field count.
    pub rematch: usize,
    /// The paper's universal formula `4MN`.
    pub formula_universal: usize,
    /// The paper's normalized formula `N(3+2M)`.
    pub formula_goto: usize,
}

/// Regenerate the §2 size claims across an (N, M) sweep.
pub fn encoding_sizes(ns: &[usize], ms: &[usize], seed: u64) -> Vec<SizeRow> {
    let mut out = Vec::new();
    for &n in ns {
        for &m in ms {
            let g = Gwlb::random(n, m, seed);
            let count = |j: JoinKind| g.normalized(j).expect("decomposes").field_count();
            out.push(SizeRow {
                n,
                m,
                universal: g.universal.field_count(),
                goto: count(JoinKind::Goto),
                metadata: count(JoinKind::Metadata),
                rematch: count(JoinKind::Rematch),
                formula_universal: 4 * m * n,
                formula_goto: n * (3 + 2 * m),
            });
        }
    }
    out
}

// ---------------------------------------------------------------- E7 ----

/// One row of the controllability comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ControlRow {
    /// Representation.
    pub repr: String,
    /// Entries touched by "move service port".
    pub move_port_updates: usize,
    /// Entries touched by "renumber public IP".
    pub change_ip_updates: usize,
    /// Intermediate states violating the one-port invariant when the
    /// move-port plan applies non-atomically.
    pub exposed_states: usize,
}

/// Regenerate the §2 controllability / consistency comparison on the
/// Fig. 1 instance (tenant 1).
pub fn controllability(cfg: &BenchConfig) -> Vec<ControlRow> {
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let inv = g.one_port_per_ip();
    let mut rows = Vec::new();
    let mut add = |name: &str, repr: &Pipeline| {
        let mv = g.move_service_port(repr, 0, 9999);
        let ip = g.change_public_ip(repr, 0, 0x0808_0808);
        let exp = mapro_control::exposure(repr, &mv, &&inv).expect("applies");
        rows.push(ControlRow {
            repr: name.into(),
            move_port_updates: mv.touched_entries(),
            change_ip_updates: ip.touched_entries(),
            exposed_states: exp.violations.len(),
        });
    };
    add("universal", &g.universal);
    for (name, join) in [
        ("goto", JoinKind::Goto),
        ("metadata", JoinKind::Metadata),
        ("rematch", JoinKind::Rematch),
    ] {
        let p = g.normalized(join).expect("decomposes");
        add(name, &p);
    }
    rows
}

// ---------------------------------------------------------------- E8 ----

/// One row of the monitorability comparison.
#[derive(Debug, Clone, Serialize)]
pub struct MonitorRow {
    /// Representation.
    pub repr: String,
    /// Counters needed for one tenant's aggregate.
    pub counters: usize,
    /// Aggregate measured over the trace (must equal the ground truth).
    pub aggregate: u64,
    /// Ground-truth tenant packets in the trace.
    pub ground_truth: u64,
}

/// Regenerate the §2 monitorability comparison (tenant index 1, as in the
/// paper's "monitor the aggregate traffic of tenant 2").
pub fn monitorability(cfg: &BenchConfig) -> Vec<MonitorRow> {
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let trace = generate(
        &g.universal.catalog,
        &g.trace_spec(),
        cfg.packets.min(20_000),
        cfg.seed,
    );
    let tenant = 1usize;
    let truth: u64 = trace
        .packets
        .iter()
        .filter(|(_, p)| p.get(g.ip_dst) == g.services[tenant].ip as u64)
        .count() as u64;
    let mut rows = Vec::new();
    let mut add = |name: &str, repr: &Pipeline| {
        let mut cs = mapro_control::CounterSet::new(g.tenant_counters(repr, tenant));
        let idx = repr.name_index();
        for (_, pkt) in &trace.packets {
            cs.observe(&repr.run_indexed(pkt, &idx).expect("runs"));
        }
        rows.push(MonitorRow {
            repr: name.into(),
            counters: cs.counters_needed(),
            aggregate: cs.aggregate(),
            ground_truth: truth,
        });
    };
    add("universal", &g.universal);
    for (name, join) in [
        ("goto", JoinKind::Goto),
        ("metadata", JoinKind::Metadata),
        ("rematch", JoinKind::Rematch),
    ] {
        let p = g.normalized(join).expect("decomposes");
        add(name, &p);
    }
    rows
}

// ---------------------------------------------------------------- E9 ----

/// Summary of the Theorem 1 replay.
#[derive(Debug, Clone, Serialize)]
pub struct Theorem1Summary {
    /// Proof lines constructed.
    pub steps: usize,
    /// The axiom citations, in order.
    pub laws: Vec<String>,
    /// Packets evaluated to validate all consecutive line pairs.
    pub packets_checked: usize,
}

/// Replay and verify the Theorem 1 derivation on the Fig. 1 universal
/// table along `ip_dst → tcp_dst`.
pub fn theorem1_replay() -> Theorem1Summary {
    let g = Gwlb::fig1();
    let t = g.universal.table("t0").expect("exists");
    let steps = mapro_netkat::derivation(t, &g.universal.catalog, &[g.ip_dst], &[g.tcp_dst])
        .expect("hypotheses hold on Fig. 1");
    let checked = match mapro_netkat::verify(&steps, &g.universal.catalog) {
        Ok(n) => n,
        Err((i, pk)) => panic!("derivation broke at step {i}: {pk:?}"),
    };
    Theorem1Summary {
        steps: steps.len(),
        laws: steps.iter().map(|s| s.law.to_owned()).collect(),
        packets_checked: checked,
    }
}

// ------------------------------------------------------- E1/E2/E3/E10 ---

/// Render the Fig. 1 pipelines (universal + all three joins) as text.
pub fn fig1_rendering() -> String {
    let g = Gwlb::fig1();
    let mut s = String::new();
    s.push_str("=== Fig. 1a: universal table ===\n");
    s.push_str(&display::render_pipeline(&g.universal));
    for (title, join) in [
        ("Fig. 1b: goto join", JoinKind::Goto),
        ("Fig. 1c: metadata join", JoinKind::Metadata),
        ("Fig. 1d: rematch join", JoinKind::Rematch),
    ] {
        s.push_str(&format!("=== {title} ===\n"));
        s.push_str(&display::render_pipeline(
            &g.normalized(join).expect("decomposes"),
        ));
    }
    s
}

/// Render the Fig. 2 chain: universal → (Cartesian factor) → 3NF.
pub fn fig2_rendering() -> String {
    let l3 = L3::fig2();
    let mut s = String::new();
    s.push_str("=== Fig. 2a: universal L3 table ===\n");
    s.push_str(&display::render_pipeline(&l3.universal));
    let factored = mapro_normalize::factor_constants(
        &l3.universal,
        "l3",
        Some(&[l3.eth_type, l3.mod_ttl]),
        mapro_normalize::FactorPlacement::Before,
    )
    .expect("constants factor");
    s.push_str("=== Fig. 2c step 1: Cartesian factor (eth_type | mod_ttl) ===\n");
    s.push_str(&display::render_pipeline(&factored));
    let n = mapro_normalize::normalize(&factored, &mapro_normalize::NormalizeOpts::default());
    s.push_str(&format!(
        "=== Fig. 2c step 2: normalized to {} ({} steps) ===\n",
        mapro_normalize::pipeline_level(&n.pipeline),
        n.steps.len()
    ));
    s.push_str(&display::render_pipeline(&n.pipeline));
    s
}

/// Demonstrate the Fig. 3 rejection.
pub fn fig3_rendering() -> String {
    let v = Vlan::fig3();
    let mut s = String::new();
    s.push_str("=== Fig. 3a: universal VLAN table ===\n");
    s.push_str(&display::render_pipeline(&v.universal));
    let err = mapro_normalize::decompose(
        &v.universal,
        "t0",
        &[v.out],
        &[v.vlan],
        &mapro_normalize::DecomposeOpts::default(),
    )
    .expect_err("must be rejected");
    s.push_str(&format!("Decomposition along out -> vlan REFUSED: {err}\n"));
    s
}

/// Demonstrate the SDX appendix: JD holds, naive chain wrong, tagged
/// pipeline right.
pub fn fig5_rendering() -> String {
    let sdx = Sdx::fig5();
    let mut s = String::new();
    s.push_str("=== Fig. 5a: collapsed SDX table ===\n");
    s.push_str(&display::render_pipeline(&sdx.universal));
    let naive = mapro_normalize::chain_components_naive(&sdx.universal, "sdx", &sdx.components)
        .expect("builds");
    let r =
        mapro_core::check_equivalent(&sdx.universal, &naive, &mapro_core::EquivConfig::default())
            .expect("checks");
    s.push_str(&format!(
        "Naive 3-table chain equivalent? {} (appendix: must be incorrect)\n",
        r.is_equivalent()
    ));
    let tagged = mapro_normalize::decompose_jd(&sdx.universal, "sdx", &sdx.components)
        .expect("JD decomposition");
    s.push_str("=== Fig. 5c: `all`-metadata pipeline ===\n");
    s.push_str(&display::render_pipeline(&tagged));
    let r =
        mapro_core::check_equivalent(&sdx.universal, &tagged, &mapro_core::EquivConfig::default())
            .expect("checks");
    s.push_str(&format!(
        "Tagged pipeline equivalent? {}\n",
        r.is_equivalent()
    ));
    s
}

// ---------------------------------------------------------------- E11 ---

/// Template-selection evidence for the §5 ESwitch explanation.
#[derive(Debug, Clone, Serialize)]
pub struct TemplateRow {
    /// Representation.
    pub repr: String,
    /// `table: template` pairs.
    pub templates: Vec<String>,
}

/// Show which templates each GWLB representation compiles to on the
/// specializing datapath.
pub fn eswitch_templates(cfg: &BenchConfig) -> Vec<TemplateRow> {
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let mut rows = Vec::new();
    let mut add = |name: &str, p: &Pipeline| {
        let sim = EswitchSim::compile(p).expect("compiles");
        rows.push(TemplateRow {
            repr: name.into(),
            templates: sim
                .templates()
                .into_iter()
                .map(|(n, k)| format!("{n}:{k}"))
                .collect(),
        });
    };
    add("universal", &g.universal);
    for (name, join) in [
        ("goto", JoinKind::Goto),
        ("metadata", JoinKind::Metadata),
        ("rematch", JoinKind::Rematch),
    ] {
        add(name, &g.normalized(join).expect("decomposes"));
    }
    rows
}

// ---------------------------------------------------------------- E12 ---

/// One point of the OVS cache-sensitivity sweep (extension experiment).
#[derive(Debug, Clone, Serialize)]
pub struct CacheRow {
    /// Megaflow cache capacity (entries).
    pub capacity: usize,
    /// Zipf exponent of flow popularity (0 = uniform).
    pub zipf: f64,
    /// Fast-path hit rate.
    pub hit_rate: f64,
    /// Modeled throughput \[Mpps\].
    pub mpps: f64,
}

/// Extension experiment E12: how OVS's representation-agnosticism depends
/// on its cache actually holding the working set. Sweeps cache capacity ×
/// traffic skew on the §5 workload; with a thrashing cache the slow path
/// (where the pipeline *is* walked table by table) dominates and the
/// megaflow collapse no longer hides the representation.
pub fn ovs_cache_sensitivity(cfg: &BenchConfig) -> Vec<CacheRow> {
    use mapro_packet::Popularity;
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let mut out = Vec::new();
    for &zipf in &[0.0f64, 1.0, 1.6] {
        for &capacity in &[8usize, 32, 1024] {
            let mut spec = g.trace_spec();
            if zipf > 0.0 {
                spec.popularity = Popularity::Zipf(zipf);
            }
            let trace = generate(
                &g.universal.catalog,
                &spec,
                cfg.packets.min(20_000),
                cfg.seed,
            );
            let mut sim = OvsSim::compile(&g.universal);
            sim.cache_capacity = capacity;
            let rep = run_modeled(&mut sim, &trace);
            out.push(CacheRow {
                capacity,
                zipf,
                hit_rate: 1.0 - rep.slow_path as f64 / rep.packets as f64,
                mpps: rep.mpps,
            });
        }
    }
    out
}

// ---------------------------------------------------------------- E13 ---

/// One point of the scaling sweep (extension experiment).
#[derive(Debug, Clone, Serialize)]
pub struct ScalingRow {
    /// Number of services (universal table holds `N × M` entries).
    pub services: usize,
    /// Universal-table throughput on the specializing datapath \[Mpps\].
    pub universal_mpps: f64,
    /// Goto-normalized throughput \[Mpps\].
    pub goto_mpps: f64,
    /// Gain factor.
    pub gain: f64,
}

/// Extension experiment E13: the "flow state explosion" trend. The
/// universal table's wildcard template degrades linearly with `N × M`
/// while the normalized pipeline's exact+LPM stages stay flat — so the §5
/// gain factor *grows* with tenant count, from ~1.2× at 5 services to
/// several-fold at 80.
pub fn scaling(backends: usize, ns: &[usize], packets: usize, seed: u64) -> Vec<ScalingRow> {
    let mut out = Vec::new();
    for &n in ns {
        let g = Gwlb::random(n, backends, seed);
        let goto = g.normalized(JoinKind::Goto).expect("decomposes");
        let trace = generate(&g.universal.catalog, &g.trace_spec(), packets, seed);
        let mut uni = EswitchSim::compile(&g.universal).expect("compiles");
        let mut dec = EswitchSim::compile(&goto).expect("compiles");
        let u = run_modeled(&mut uni, &trace).mpps;
        let d = run_modeled(&mut dec, &trace).mpps;
        out.push(ScalingRow {
            services: n,
            universal_mpps: u,
            goto_mpps: d,
            gain: d / u,
        });
    }
    out
}

// ---------------------------------------------------------------- E14 ---

/// One cell of the fault-rate × representation sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct FaultRow {
    /// Channel fault probability (`p_drop`; dup/reorder run at half).
    pub fault_rate: f64,
    /// `"universal"` or `"goto"`.
    pub repr: String,
    /// Intents driven through the controller.
    pub intents: usize,
    /// Intents whose delivery errored (repaired by reconciliation).
    pub intent_errors: usize,
    /// Flow-mods delivered to the switch (includes redeliveries).
    pub delivered: u64,
    /// Controller retransmissions.
    pub retries: u64,
    /// Switch restarts injected.
    pub restarts: u64,
    /// Repair flow-mods emitted by reconciliation.
    pub repairs: u64,
    /// True iff the switch converged to the intended pipeline.
    pub reconciled: bool,
    /// Worst reconcile pass, virtual-clock µs.
    pub max_convergence_us: f64,
    /// Cumulative switch control-CPU stall (ms).
    pub stall_ms: f64,
    /// Stall as a fraction of the churn window.
    pub stall_fraction: f64,
    /// Line rate minus the stall fraction \[Mpps\].
    pub goodput_mpps: f64,
}

/// The E14 artifact: fault-sweep rows under a provenance header.
#[derive(Debug, Clone, Serialize)]
pub struct FaultsReport {
    /// Provenance header (seed, threads, version) for the regression gate.
    pub meta: RunMeta,
    /// One row per fault rate × representation.
    pub rows: Vec<FaultRow>,
}

/// [`faults`] wrapped in the artifact header `scripts/bench_diff.py`
/// keys on. The rows are virtual-clock deterministic, so the gate can
/// compare them exactly when the metadata matches.
pub fn faults_report(cfg: &BenchConfig, rates: &[f64]) -> FaultsReport {
    FaultsReport {
        meta: RunMeta::new("faults", cfg.seed),
        rows: faults(cfg, rates),
    }
}

/// Extension experiment E14: update amplification under an unreliable
/// control channel. GWLB under churn (each intent moves one service to a
/// fresh port) driven through a [`FaultyChannel`] at increasing fault
/// rates, universal vs goto-normalized, on the NoviFlow stall model.
///
/// The universal table pays M flow-mods per intent inside a two-phase
/// bundle; the goto form pays one. Every fault that forces a redelivery
/// re-parses the carried flow-mods on the switch's control CPU, so the
/// universal form's stall grows ~M× faster with the fault rate — the
/// Fig. 4 gap widens as the channel degrades. Restarts revert the switch
/// to its last committed bundle and reconciliation repairs the drift.
///
/// [`FaultyChannel`]: mapro_control::FaultyChannel
pub fn faults(cfg: &BenchConfig, rates: &[f64]) -> Vec<FaultRow> {
    use mapro_control::{Controller, DriverConfig, FaultPlan, FaultyChannel};
    use mapro_switch::LiveSwitch;

    const INTENTS: usize = 40;
    // Modeled churn window: 10 intents/s, as in the Fig. 4 sweep.
    const WINDOW_NS: f64 = INTENTS as f64 / 10.0 * 1e9;
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    let line_mpps = 1e3 / mapro_switch::CostParams::noviflow().per_packet_ns;

    let mut out = Vec::new();
    for &rate in rates {
        for (name, repr) in [("universal", &g.universal), ("goto", &goto)] {
            let seed = cfg.seed ^ rate.to_bits().rotate_left(17) ^ name.len() as u64;
            let plan = FaultPlan {
                p_drop: rate,
                p_dup: rate / 2.0,
                p_reorder: rate / 2.0,
                restart_every: 60,
                latency_ns: 10_000,
                seed,
            };
            let sw = LiveSwitch::noviflow(repr.clone()).expect("compiles");
            let mut ch = FaultyChannel::new(sw, plan);
            let mut ctl = Controller::new(repr.clone(), DriverConfig::default());
            let mut row = FaultRow {
                fault_rate: rate,
                repr: name.to_owned(),
                intents: INTENTS,
                intent_errors: 0,
                delivered: 0,
                retries: 0,
                restarts: 0,
                repairs: 0,
                reconciled: true,
                max_convergence_us: 0.0,
                stall_ms: 0.0,
                stall_fraction: 0.0,
                goodput_mpps: 0.0,
            };
            for k in 0..INTENTS {
                let intended = ctl.intended().clone();
                let update = g.move_service_port(&intended, k % cfg.services, 10_000 + k as u16);
                if ctl.apply_plan(&mut ch, &update).is_err() {
                    row.intent_errors += 1;
                }
                match ctl.reconcile(&mut ch) {
                    Ok(mapro_control::ReconcileOutcome::Converged(rep)) => {
                        row.max_convergence_us =
                            row.max_convergence_us.max(rep.convergence_ns as f64 / 1e3)
                    }
                    Ok(mapro_control::ReconcileOutcome::Exhausted { .. }) | Err(_) => {
                        row.reconciled = false
                    }
                }
            }
            // A restart can land right after the final verifying read;
            // give reconciliation a last word before judging convergence.
            for _ in 0..3 {
                if ch.endpoint().pipeline() == ctl.intended() {
                    break;
                }
                let _ = ctl.reconcile(&mut ch);
            }
            row.reconciled &= ch.endpoint().pipeline() == ctl.intended();
            row.delivered = ch.stats().delivered;
            row.restarts = ch.stats().restarts;
            row.retries = ctl.stats().retries;
            row.repairs = ctl.stats().repairs;
            let stall_ns = ch.endpoint().total_stall_ns;
            row.stall_ms = stall_ns / 1e6;
            row.stall_fraction = (stall_ns / WINDOW_NS).min(1.0);
            row.goodput_mpps = line_mpps * (1.0 - row.stall_fraction);
            out.push(row);
        }
    }
    out
}

// ---------------------------------------------------------------- E19 ---

/// One cell of the crash-rate × fault-rate × controller-count sweep.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ChaosRow {
    /// Per-injection-point crash probability for elected controllers.
    pub crash_rate: f64,
    /// Channel fault intensity (`p_drop`; dup/reorder run at half).
    pub fault_rate: f64,
    /// Controller slots racing for the lease.
    pub controllers: usize,
    /// Intents offered to the control plane.
    pub intents: usize,
    /// Intents synchronously acked (the rest arrive via reconciliation).
    pub acked: usize,
    /// Controller generations killed by the injector.
    pub crashes: u64,
    /// Leadership grants total.
    pub elections: u64,
    /// Leadership grants after the first.
    pub failovers: u64,
    /// Straggler flow-mods fenced by the switch's epoch check.
    pub epoch_rejections: u64,
    /// Churn intents refused by admission control.
    pub shed: u64,
    /// Circuit-breaker openings across generations.
    pub breaker_opens: u64,
    /// Flow-mod retransmissions across generations.
    pub retries: u64,
    /// Repair flow-mods emitted by reconciliation.
    pub repairs: u64,
    /// Switch restarts injected across channels.
    pub switch_restarts: u64,
    /// WAL records at the end of the run.
    pub wal_records: usize,
    /// Begun-but-unconfirmed intents left in the log (proved applied by
    /// the final guardrail, not by `Commit` records).
    pub in_doubt: usize,
    /// Highest fencing epoch granted.
    pub final_epoch: u64,
    /// Whether the final drain reconciled the switch.
    pub reconciled: bool,
    /// Whether the final `mapro_sym` guardrail proved equivalence.
    pub verified: bool,
    /// Recoveries that reconciled but failed verification (gate: 0).
    pub guardrail_failures: u64,
    /// One summary line per takeover plus the final verified drain.
    pub recovery_lines: Vec<String>,
    /// Virtual time consumed (ms, max over channels).
    pub elapsed_ms: f64,
}

/// The E19 artifact: chaos-sweep rows under a provenance header.
#[derive(Debug, Clone, Serialize)]
pub struct ChaosSweepReport {
    /// Provenance header (seed, threads, version) for the regression gate.
    pub meta: RunMeta,
    /// One row per crash rate × fault rate × controller count.
    pub rows: Vec<ChaosRow>,
}

/// [`chaos_sweep`] wrapped in the artifact header `scripts/bench_diff.py`
/// keys on. Rows are virtual-clock deterministic, so the gate compares
/// them exactly when the metadata matches.
pub fn chaos_report(cfg: &BenchConfig) -> ChaosSweepReport {
    ChaosSweepReport {
        meta: RunMeta::new("chaos", cfg.seed),
        rows: chaos_sweep(cfg),
    }
}

/// Extension experiment E19: controller crash-recovery under chaos.
///
/// A reduced GWLB (universal form, so every intent is a multi-flow-mod
/// two-phase bundle) is driven through [`run_chaos`]: N controller slots
/// race for a lease over per-slot [`FaultyChannel`]s to one shared
/// `LiveSwitch`, every elected generation recovers from the shared WAL
/// under a seeded [`CrashInjector`], and the run must end with the
/// switch reconciled to the WAL-derived intended pipeline **and** proved
/// equivalent by `mapro_sym`. The acceptance gate is the
/// `guardrail_failures == 0` column across the whole
/// crash-rate × fault-rate × controller-count sweep.
///
/// [`run_chaos`]: mapro_control::run_chaos
/// [`FaultyChannel`]: mapro_control::FaultyChannel
/// [`CrashInjector`]: mapro_control::CrashInjector
pub fn chaos_sweep(cfg: &BenchConfig) -> Vec<ChaosRow> {
    use mapro_control::{run_chaos, ChaosConfig};
    use mapro_switch::LiveSwitch;

    // Reduced workload: the sweep runs 18 cells and the guardrail proves
    // full-pipeline equivalence per recovery, so keep each cell small.
    const SERVICES: usize = 6;
    const BACKENDS: usize = 4; // GWLB hashes backends; must be a power of two
    const INTENTS: usize = 24;
    let g = Gwlb::random(SERVICES, BACKENDS, cfg.seed);
    let base = g.universal.clone();
    // Compile the intent list once against a shadow of the evolving
    // intended state; every cell replays the same list.
    let mut shadow = base.clone();
    let intents: Vec<_> = (0..INTENTS)
        .map(|k| {
            let plan = g.move_service_port(&shadow, k % SERVICES, 10_000 + k as u16);
            mapro_control::apply_plan(&mut shadow, &plan).expect("intent applies to shadow");
            plan
        })
        .collect();

    let mut out = Vec::new();
    for &crash_rate in &[0.0f64, 0.1, 0.25] {
        for &fault_rate in &[0.0f64, 0.2] {
            for controllers in 1..=3usize {
                let seed = cfg.seed
                    ^ crash_rate.to_bits().rotate_left(11)
                    ^ fault_rate.to_bits().rotate_left(29)
                    ^ (controllers as u64).rotate_left(47);
                let ccfg = ChaosConfig {
                    controllers,
                    crash_rate,
                    fault_rate,
                    restart_every: 50,
                    seed,
                    ..ChaosConfig::default()
                };
                let sw = LiveSwitch::noviflow(base.clone()).expect("compiles");
                let rep = run_chaos(sw, base.clone(), &intents, &ccfg);
                out.push(ChaosRow {
                    crash_rate,
                    fault_rate,
                    controllers,
                    intents: rep.intents,
                    acked: rep.acked,
                    crashes: rep.crashes,
                    elections: rep.elections,
                    failovers: rep.failovers,
                    epoch_rejections: rep.epoch_rejections,
                    shed: rep.shed,
                    breaker_opens: rep.breaker_opens,
                    retries: rep.retries,
                    repairs: rep.repairs,
                    switch_restarts: rep.switch_restarts,
                    wal_records: rep.wal_records,
                    in_doubt: rep.in_doubt_final,
                    final_epoch: rep.final_epoch,
                    reconciled: rep.reconciled,
                    verified: rep.verified,
                    guardrail_failures: rep.guardrail_failures,
                    recovery_lines: rep.recovery_lines,
                    elapsed_ms: rep.elapsed_ns as f64 / 1e6,
                });
            }
        }
    }
    out
}

// ---------------------------------------------------------------- E15 ---

/// One cell of the thread-scaling sweep (E15, extension).
#[derive(Debug, Clone, Serialize)]
pub struct ParScaleRow {
    /// Which parallelized hot path was measured.
    pub workload: String,
    /// Thread count the pool ran with.
    pub threads: usize,
    /// Best-of-reps wall clock \[ms\].
    pub wall_ms: f64,
    /// Single-thread wall clock over this run's wall clock.
    pub speedup: f64,
    /// Result fingerprint — must be identical at every thread count.
    pub digest: String,
}

/// The E15 report. `host_cores` matters for reading the numbers: speedup
/// saturates at the physical core count no matter how many pool threads
/// are requested, so an 8-thread row on a 2-core host is an oversubscription
/// data point, not a scalability ceiling.
#[derive(Debug, Clone, Serialize)]
pub struct ParScaleReport {
    /// Provenance header (seed, threads, version) for the regression gate.
    pub meta: RunMeta,
    /// `available_parallelism` of the machine that produced the numbers.
    pub host_cores: usize,
    /// Workload seed (fixed: the sweep is reproducible end to end).
    pub seed: u64,
    /// Packets in the replay trace.
    pub packets: usize,
    /// One row per workload × thread count.
    pub rows: Vec<ParScaleRow>,
}

/// Extension experiment E15: wall-clock scaling of the three parallelized
/// hot paths — exhaustive equivalence checking, FD mining, and modeled
/// packet replay — across pool sizes, on the E5 GWLB workload.
///
/// Every row carries a digest of the computed *result*; the sweep panics
/// if any digest differs across thread counts, so the benchmark doubles
/// as an end-to-end determinism check (DESIGN.md §9).
///
/// # Panics
/// Panics if a workload's result differs between thread counts — that is
/// a determinism bug in the executor, never an acceptable outcome.
pub fn parscale(cfg: &BenchConfig, threads: &[usize]) -> ParScaleReport {
    use mapro_core::{Catalog, EquivConfig, EquivOutcome, Table, Value};
    use std::time::Instant;

    // Equivalence workload: a 3× scaled-up GWLB so the domain product
    // spans many scan chunks and the universal table's linear lookup is
    // expensive per packet. (The E5-sized instance finishes in one chunk.)
    let g_eq = Gwlb::random(cfg.services * 3, cfg.backends * 2, cfg.seed);
    let goto_eq = g_eq.normalized(JoinKind::Goto).expect("decomposes");

    // Replay workload: the E5 pipeline under a longer trace, so per-shard
    // replay work dwarfs the per-shard classifier compile.
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let trace = generate(
        &g.universal.catalog,
        &g.trace_spec(),
        cfg.packets.max(200_000),
        cfg.seed,
    );

    // Mining workload: a fixed-seed relation of low-cardinality columns —
    // no small attribute subset is a key, so the lattice search stays deep
    // and partition refinement dominates the wall clock.
    const MINE_COLS: usize = 10;
    const MINE_ROWS: usize = 12_000;
    let mut mine_cat = Catalog::new();
    let cols: Vec<_> = (0..MINE_COLS)
        .map(|i| mine_cat.field(format!("c{i}"), 16))
        .collect();
    let mut relation = Table::new("bench", cols.clone(), vec![]);
    let mut s = cfg.seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    for _ in 0..MINE_ROWS {
        let row: Vec<Value> = (0..MINE_COLS)
            .map(|i| Value::Int(rng() % (3 + i as u64)))
            .collect();
        relation.row(row, vec![]);
    }

    let equiv_cfg = EquivConfig::default();
    type Work<'a> = (&'a str, Box<dyn Fn() -> String + 'a>);
    let workloads: Vec<Work> = vec![
        ("equiv", {
            let (l, r, c) = (&g_eq.universal, &goto_eq, &equiv_cfg);
            Box::new(move || match mapro_core::check_equivalent(l, r, c) {
                Ok(EquivOutcome::Equivalent {
                    packets_checked,
                    exhaustive,
                    ..
                }) => format!("eq:{packets_checked}:{exhaustive}"),
                Ok(EquivOutcome::Counterexample(cx)) => format!("cx:{:?}", cx.fields),
                Err(e) => format!("err:{e}"),
            })
        }),
        ("mine", {
            let (t, c) = (&relation, &mine_cat);
            Box::new(move || {
                let m = mapro_fd::mine_fds(t, c);
                format!("fds:{}:{}", m.fds.len(), m.distinct_rows)
            })
        }),
        ("replay", {
            let (p, t) = (&g.universal, &trace);
            Box::new(move || {
                let rep = mapro_switch::run_modeled_parallel(
                    &|| Box::new(OvsSim::compile(p)) as Box<dyn Switch + Send>,
                    t,
                    8,
                );
                format!(
                    "mpps:{:.9}:lat:{:.9}:{:.9}:{:.9}:drop:{}",
                    rep.mpps, rep.latency_us[0], rep.latency_us[1], rep.latency_us[2], rep.dropped
                )
            })
        }),
    ];

    const REPS: usize = 3;
    let saved = mapro_par::thread_override();
    // Untimed warmup: the first-ever run of each workload pays page-fault
    // and allocator warmup that would otherwise bias the first thread
    // count measured (and make later ones look superlinear).
    mapro_par::set_threads(1);
    for (_, run) in &workloads {
        let _ = run();
    }
    let mut rows = Vec::new();
    let mut base_ms: std::collections::HashMap<&str, f64> = std::collections::HashMap::new();
    let mut digests: std::collections::HashMap<&str, String> = std::collections::HashMap::new();
    for &t in threads {
        mapro_par::set_threads(t);
        for (name, run) in &workloads {
            let mut best = f64::INFINITY;
            let mut digest = String::new();
            for _ in 0..REPS {
                let t0 = Instant::now();
                digest = run();
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            match digests.get(name) {
                None => {
                    digests.insert(name, digest.clone());
                }
                Some(d) => assert_eq!(
                    *d, digest,
                    "parscale: {name} result diverged at {t} threads — determinism bug"
                ),
            }
            let base = *base_ms.entry(name).or_insert(best);
            rows.push(ParScaleRow {
                workload: (*name).to_owned(),
                threads: t,
                wall_ms: best,
                speedup: base / best,
                digest,
            });
        }
    }
    mapro_par::set_threads(saved);

    ParScaleReport {
        meta: RunMeta::new("parscale", cfg.seed),
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        seed: cfg.seed,
        packets: trace.len(),
        rows,
    }
}

// ---------------------------------------------------------------- E20 ---

/// One row of the Mpps-scale engine comparison.
#[derive(Debug, Clone, Serialize)]
pub struct MppsRow {
    /// Representation (`universal` / `goto`).
    pub repr: String,
    /// Requested flow-population size.
    pub flows: usize,
    /// Execution tier (`interp` / `compiled` / `cached`).
    pub engine: String,
    /// Flows that actually appear in the Zipf trace.
    pub distinct_flows: usize,
    /// Wall-clock replay rate of the real data structures \[Mpps\],
    /// best-of-reps on a warm engine.
    pub wall_mpps: f64,
    /// Modeled throughput at the sweep's worker count \[Mpps\].
    pub modeled_mpps: f64,
    /// Megaflow fast-path hit rate (0 for the uncached engines).
    pub hit_rate: f64,
    /// Packets dropped — identical across engines by construction.
    pub dropped: usize,
    /// Hex verdict digest at the sweep's worker count — identical across
    /// engines by construction.
    pub digest: String,
}

/// The E20 artifact: engine-comparison rows under a provenance header.
#[derive(Debug, Clone, Serialize)]
pub struct MppsReport {
    /// Provenance header (seed, threads, version) for the regression gate.
    pub meta: RunMeta,
    /// Packets per measured trace.
    pub packets: usize,
    /// Zipf exponent of flow popularity.
    pub zipf: f64,
    /// Modeled datapath workers (sharding for modeled rate and digest).
    pub workers: usize,
    /// One row per representation × flow count × engine.
    pub rows: Vec<MppsRow>,
}

/// Extension experiment E20: the compiled datapath tier and the
/// cube-keyed megaflow cache against the interpreter, at flow populations
/// up to the millions.
///
/// The flow population cycles the (service, backend) pairs of the §5 GWLB
/// workload and varies the low `ip_src` bits inside each backend prefix —
/// so the population grows into the millions while the *cube* population
/// (the forwarding equivalence classes `mapro_sym` partitions the space
/// into) stays fixed at a few hundred. That separation is the megaflow
/// story: the cache's hit rate tracks cubes, not flows, so `cached`
/// stays in the fast path at any flow count, while both per-packet
/// engines pay the classifier walk. Verdict digests are asserted
/// identical across all three engines per configuration — the sweep
/// doubles as an engine-differential check.
///
/// # Panics
/// Panics if any engine's verdict digest or drop count diverges — that is
/// a compiler or cache-soundness bug, never an acceptable outcome.
pub fn mpps(cfg: &BenchConfig, flow_counts: &[usize]) -> MppsReport {
    use mapro_packet::{FlowSpec, Popularity, TraceSpec};
    use mapro_switch::{replay_digest, run_modeled_parallel, run_wallclock};

    type EngineFactory<'a> = Box<dyn Fn() -> Box<dyn Switch + Send> + Sync + 'a>;

    const ZIPF: f64 = 1.1;
    const WORKERS: usize = 4;
    const WALL_REPS: usize = 2;
    let packets = cfg.packets.max(100_000);
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");

    // (ip_src prefix base, ip_dst, tcp_dst) per (service, backend) pair.
    let pairs: Vec<(u64, u64, u64)> = g
        .services
        .iter()
        .flat_map(|s| {
            s.backends.iter().map(move |(pfx, _)| {
                let base = match *pfx {
                    mapro_core::Value::Prefix { bits, .. } => bits,
                    mapro_core::Value::Int(v) => v,
                    _ => 0,
                };
                (base, s.ip as u64, s.port as u64)
            })
        })
        .collect();
    let population = |f: usize| -> Vec<FlowSpec> {
        (0..f)
            .map(|k| {
                let (base, ip, port) = pairs[k % pairs.len()];
                // Low 16 bits stay inside every backend prefix, so flow k
                // hits the same table entry as its pair's canonical flow.
                let low = (k / pairs.len()) as u64 & 0xffff;
                FlowSpec {
                    fields: vec![(g.ip_src, base | low), (g.ip_dst, ip), (g.tcp_dst, port)],
                    weight: 1,
                }
            })
            .collect()
    };

    let mut rows = Vec::new();
    for (repr_name, repr) in [("universal", &g.universal), ("goto", &goto)] {
        for &flows in flow_counts {
            let spec = TraceSpec {
                flows: population(flows),
                popularity: Popularity::Zipf(ZIPF),
            };
            let trace = generate(&repr.catalog, &spec, packets, cfg.seed);
            let engines: Vec<(&str, EngineFactory<'_>)> = vec![
                ("interp", {
                    Box::new(move || Box::new(EswitchSim::compile(repr).expect("gwlb compiles")))
                }),
                ("compiled", {
                    Box::new(move || {
                        Box::new(
                            mapro_switch::CompiledEngine::eswitch(repr).expect("gwlb compiles"),
                        )
                    })
                }),
                ("cached", {
                    Box::new(move || {
                        Box::new(mapro_switch::CachedEngine::eswitch(repr).expect("gwlb compiles"))
                    })
                }),
            ];
            let mut cell_digest: Option<(String, usize)> = None;
            for (engine, factory) in &engines {
                let rep = run_modeled_parallel(&**factory, &trace, WORKERS);
                let digest = format!("{:016x}", replay_digest(&**factory, &trace, WORKERS));
                match &cell_digest {
                    None => cell_digest = Some((digest.clone(), rep.dropped)),
                    Some((d, dr)) => {
                        assert_eq!(
                            (d.as_str(), *dr),
                            (digest.as_str(), rep.dropped),
                            "mpps: {engine} diverged on {repr_name}/{flows} — engine bug"
                        );
                    }
                }
                // Wall clock on one warm engine: the first pass pays
                // compilation and (for `cached`) cold megaflow installs.
                let mut sw = factory();
                let _ = run_wallclock(sw.as_mut(), &trace, 1);
                let mut wall = 0.0f64;
                for _ in 0..WALL_REPS {
                    wall = wall.max(run_wallclock(sw.as_mut(), &trace, 1));
                }
                rows.push(MppsRow {
                    repr: repr_name.to_owned(),
                    flows,
                    engine: (*engine).to_owned(),
                    distinct_flows: trace.distinct_flows(),
                    wall_mpps: wall,
                    modeled_mpps: rep.mpps,
                    hit_rate: if *engine == "cached" {
                        1.0 - rep.slow_path as f64 / rep.packets as f64
                    } else {
                        0.0
                    },
                    dropped: rep.dropped,
                    digest,
                });
            }
        }
    }

    MppsReport {
        meta: RunMeta::new("mpps", cfg.seed),
        packets,
        zipf: ZIPF,
        workers: WORKERS,
        rows,
    }
}

/// Run a switch over the trace and return the report — helper used by
/// criterion benches.
pub fn measure(switch: &mut dyn Switch, cfg: &BenchConfig) -> mapro_switch::RunReport {
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let trace = generate(&g.universal.catalog, &g.trace_spec(), cfg.packets, cfg.seed);
    run_modeled(switch, &trace)
}

// --------------------------------------------------------------- E16 ----

/// One row of E16: static-analysis findings for a paper workload.
#[derive(Debug, Clone, Serialize)]
pub struct LintRow {
    /// Workload name.
    pub workload: String,
    /// Tables in the pipeline.
    pub tables: usize,
    /// Error-severity findings (must be zero for the paper programs).
    pub errors: usize,
    /// Warn-severity findings.
    pub warns: usize,
    /// Info-severity findings.
    pub infos: usize,
    /// Distinct lint ids reported, sorted.
    pub lints: Vec<String>,
}

/// Run `mapro-lint` over every workload generator and tabulate findings.
///
/// The rows double as an executable claim about the paper programs:
/// nothing in them is provably dead or broken (zero error-severity
/// findings), while the redundancy the paper normalizes away *is*
/// reported — Fig. 3 must surface its action-to-match dependency, Fig. 1
/// its `ip_dst ↔ tcp_dst` redundancy. Violations panic, so
/// `repro -e lint` is self-checking.
pub fn lint_workloads(cfg: &BenchConfig) -> Vec<LintRow> {
    let cases: Vec<(&str, Pipeline)> = vec![
        ("fig1", Gwlb::fig1().universal),
        (
            "gwlb",
            Gwlb::random(cfg.services, cfg.backends, cfg.seed).universal,
        ),
        ("fig2-l3", L3::fig2().universal),
        ("fig3-vlan", Vlan::fig3().universal),
        ("fig5-sdx", Sdx::fig5().universal),
        (
            "enterprise",
            mapro_workloads::Enterprise::random(cfg.services, 4, cfg.seed).pipeline,
        ),
    ];
    let lint_cfg = mapro_lint::LintConfig::default();
    cases
        .into_iter()
        .map(|(name, p)| {
            let r = mapro_lint::lint(&p, &lint_cfg);
            assert_eq!(
                r.count(mapro_lint::Severity::Error),
                0,
                "{name}: paper workload reports error-severity lints:\n{}",
                r.to_text()
            );
            match name {
                "fig3-vlan" => assert!(
                    r.with_lint("action-to-match-dependency").count() > 0,
                    "{name}: Fig. 3 hazard not reported:\n{}",
                    r.to_text()
                ),
                "fig1" => assert!(
                    r.with_lint("bcnf-dependency")
                        .any(|d| d.message.contains("ip_dst")),
                    "{name}: ip_dst redundancy not reported:\n{}",
                    r.to_text()
                ),
                _ => {}
            }
            let mut lints: Vec<String> = r.diagnostics.iter().map(|d| d.lint.clone()).collect();
            lints.sort();
            lints.dedup();
            LintRow {
                workload: name.to_owned(),
                tables: p.tables.len(),
                errors: r.count(mapro_lint::Severity::Error),
                warns: r.count(mapro_lint::Severity::Warn),
                infos: r.count(mapro_lint::Severity::Info),
                lints,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- E17 ---

/// One configuration of the symbolic-vs-enumerative sweep (E17, extension).
#[derive(Debug, Clone, Serialize)]
pub struct SymScaleRow {
    /// Workload label.
    pub workload: String,
    /// log2 of the derived Cartesian packet-domain product.
    pub product_log2: f64,
    /// Whether exhaustive enumeration is feasible (product within the
    /// default `max_exhaustive`); when false, enumeration could only
    /// *sample* and the symbolic verdict is the only complete one.
    pub enum_feasible: bool,
    /// Best-of-reps wall clock of the enumerative engine \[ms\]; `None`
    /// when enumeration is infeasible and was not run.
    pub enum_ms: Option<f64>,
    /// Best-of-reps wall clock of the symbolic engine \[ms\].
    pub sym_ms: f64,
    /// `enum_ms / sym_ms` when both ran.
    pub speedup: Option<f64>,
    /// Atom count of the left behavior cover.
    pub atoms_left: usize,
    /// Atom count of the right behavior cover.
    pub atoms_right: usize,
    /// Non-empty atom intersections compared (only meaningful on an
    /// equivalent verdict; 0 when a counterexample cut the scan short).
    pub pairs: usize,
    /// How the reported verdict was decided (`symbolic` always, here).
    pub method: String,
    /// `equivalent` or `counterexample`.
    pub verdict: String,
    /// Fingerprint of the deterministic parts of the result (atom counts,
    /// pairs, verdict, counterexample fields) — never timings — so CI can
    /// diff it across thread counts.
    pub digest: String,
}

/// The E17 report.
#[derive(Debug, Clone, Serialize)]
pub struct SymScaleReport {
    /// Provenance header (seed, threads, version) for the regression gate.
    pub meta: RunMeta,
    /// `available_parallelism` of the measuring host.
    pub host_cores: usize,
    /// Workload seed.
    pub seed: u64,
    /// One row per configuration.
    pub rows: Vec<SymScaleRow>,
}

/// The E17/E18 `wide{f}` workload: `nrows` disjoint exact rows over
/// `fields` 16-bit fields, paired with the same rows in reverse priority
/// order. Every field sees `nrows` distinct values, so the derived
/// enumeration domain grows as `(2·nrows)^fields` while the behavior
/// covers stay near-linear in `nrows·fields` — at 4 fields the product
/// is large-but-feasible (the enumerative engine pays it in full), at 8
/// it passes 2^40 and only the symbolic engine can still prove
/// equivalence.
pub fn wide_pair(fields: usize, nrows: u64, seed: u64) -> (Pipeline, Pipeline) {
    use mapro_core::{ActionSem, Catalog, Table, Value};
    let build = |reversed: bool| {
        let mut c = Catalog::new();
        let fs: Vec<_> = (0..fields).map(|i| c.field(format!("w{i}"), 16)).collect();
        let out = c.action("out", ActionSem::Output);
        let mut s = seed | 1;
        let mut rng = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut rows: Vec<(Vec<Value>, Vec<Value>)> = (0..nrows)
            .map(|r| {
                let m: Vec<Value> = (0..fields).map(|_| Value::Int(rng() & 0xffff)).collect();
                (m, vec![Value::sym(format!("p{r}"))])
            })
            .collect();
        if reversed {
            rows.reverse();
        }
        let mut table = Table::new("wide", fs, vec![out]);
        for (m, a) in rows {
            table.row(m, a);
        }
        Pipeline::single(c, table)
    };
    (build(false), build(true))
}

/// Extension experiment E17: the symbolic atom-based equivalence engine
/// against the enumerative oracle, across the feasibility boundary.
///
/// Four configurations:
/// * `gwlb` — the E15 equivalence workload (universal vs goto-normalized
///   GWLB), where exhaustive enumeration is feasible: both engines run and
///   the speedup is reported. (The enumerative engine's representative
///   domain is tiny here while GWLB's wide exact fields inflate the atom
///   count — an honest configuration where enumeration wins.)
/// * `wide4` — 4 × 16-bit fields with disjoint exact rows, reordered: the
///   representative product is ~10^6 (feasible, expensive) while the
///   covers stay small — the configuration where the symbolic engine is
///   an order of magnitude faster.
/// * `wide8` — same shape at 8 fields: the derived product exceeds 2^40
///   packets, enumeration can only sample, while the cover check
///   completes and *proves* equivalence.
/// * `churn` — the `gwlb` pair re-checked after one action edit (the
///   update-churn shape): the per-table partition cache carries over, and
///   the engine pinpoints the exact counterexample.
///
/// Timing is best-of-`REPS` after an untimed warmup, like E15. The digest
/// column captures only deterministic results, so runs at different
/// `--threads` must produce byte-identical digests (CI enforces this).
pub fn symscale(cfg: &BenchConfig) -> SymScaleReport {
    use mapro_core::{Domain, EquivConfig, EquivMode, EquivOutcome, Value};
    use mapro_sym::{compile, FieldSpace, SymConfig};
    use std::time::Instant;

    const REPS: usize = 3;
    let enum_cfg = EquivConfig {
        mode: EquivMode::Enumerate,
        ..EquivConfig::default()
    };
    // E17 measures the *cube* engine; pin it so the committed digests stay
    // byte-identical as the Auto policy evolves (E21 covers the DD side).
    let scfg = SymConfig {
        backend: mapro_sym::CoverBackend::Cube,
        ..SymConfig::default()
    };

    // `gwlb`: the E15 equivalence pair, and its churn variant with one
    // backend's output port edited (guaranteed counterexample).
    let g = Gwlb::random(cfg.services * 3, cfg.backends * 2, cfg.seed);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    let mut churned = goto.clone();
    'edit: for t in &mut churned.tables {
        for e in &mut t.entries {
            for v in &mut e.actions {
                if let Value::Sym(s) = v {
                    if s.as_ref().starts_with("vm") {
                        *v = Value::sym("vm-churned");
                        break 'edit;
                    }
                }
            }
        }
    }

    let (w4l, w4r) = wide_pair(4, 12, cfg.seed);
    let (w8l, w8r) = wide_pair(8, 24, cfg.seed);
    let cases: Vec<(&str, Pipeline, Pipeline)> = vec![
        ("gwlb", g.universal.clone(), goto),
        ("wide4", w4l, w4r),
        ("wide8", w8l, w8r),
        ("churn", g.universal.clone(), churned),
    ];

    let mut rows = Vec::new();
    for (name, l, r) in &cases {
        let product = Domain::from_pipelines(&[l, r])
            .map(|d| d.product_size())
            .unwrap_or(u128::MAX);
        let enum_feasible = product <= enum_cfg.max_exhaustive;

        // Untimed warmup (also primes the partition cache, deliberately:
        // re-verification against a warm cache is the production shape).
        let _ = mapro_sym::check_equivalent_with(
            l,
            r,
            &EquivConfig {
                mode: EquivMode::Symbolic,
                ..EquivConfig::default()
            },
            &scfg,
        );

        let mut sym_ms = f64::INFINITY;
        let mut outcome = None;
        for _ in 0..REPS {
            let t0 = Instant::now();
            outcome = Some(
                mapro_sym::check_symbolic(l, r, &scfg)
                    .expect("symscale workloads are inside the symbolic fragment"),
            );
            sym_ms = sym_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        }
        let outcome = outcome.expect("REPS >= 1");

        let space = FieldSpace::from_pipelines(&[l, r]);
        let atoms_left = compile(l, &space, &scfg).expect("compiles").atoms.len();
        let atoms_right = compile(r, &space, &scfg).expect("compiles").atoms.len();

        let (pairs, verdict, digest_tail) = match &outcome {
            EquivOutcome::Equivalent {
                packets_checked, ..
            } => (*packets_checked, "equivalent", "eq".to_owned()),
            EquivOutcome::Counterexample(cx) => {
                (0, "counterexample", format!("cx@{:?}", cx.fields))
            }
        };

        let enum_ms = if enum_feasible {
            let _ = mapro_core::check_equivalent(l, r, &enum_cfg); // warmup
            let mut best = f64::INFINITY;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let e =
                    mapro_core::check_equivalent(l, r, &enum_cfg).expect("enumerative oracle runs");
                assert_eq!(
                    e.is_equivalent(),
                    outcome.is_equivalent(),
                    "symscale {name}: engines disagree — differential bug"
                );
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            Some(best)
        } else {
            None
        };

        rows.push(SymScaleRow {
            workload: (*name).to_owned(),
            product_log2: (product as f64).log2(),
            enum_feasible,
            enum_ms,
            sym_ms,
            speedup: enum_ms.map(|e| e / sym_ms),
            atoms_left,
            atoms_right,
            pairs,
            method: "symbolic".to_owned(),
            verdict: verdict.to_owned(),
            digest: format!("sym:{atoms_left}:{atoms_right}:{pairs}:{digest_tail}"),
        });
    }

    SymScaleReport {
        meta: RunMeta::new("symscale", cfg.seed),
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        seed: cfg.seed,
        rows,
    }
}

// ---------------------------------------------------------------- E18 ---

/// One attributed phase of an E18 workload.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseRow {
    /// Logical span path, e.g. `check.symbolic.cross.chunk`.
    pub path: String,
    /// Spans recorded at this path.
    pub count: u64,
    /// Summed span durations \[ms\] (across threads — may exceed wall).
    pub total_ms: f64,
    /// Total minus direct children \[ms\] — the phase's own work.
    pub self_ms: f64,
    /// `self_ms` as a fraction of the workload's trace wall clock.
    pub share: f64,
}

/// Phase attribution for one E18 workload.
#[derive(Debug, Clone, Serialize)]
pub struct PhaseWorkload {
    /// Workload label.
    pub workload: String,
    /// Wall clock of the run \[ms\].
    pub wall_ms: f64,
    /// Fraction of the trace wall clock covered by root spans.
    pub coverage: f64,
    /// Events recorded for this workload.
    pub events: usize,
    /// Ring-buffer overflow count (0 unless the run outgrew the buffers).
    pub dropped: u64,
    /// Per-path attribution, sorted by path.
    pub phases: Vec<PhaseRow>,
}

/// The E18 report.
#[derive(Debug, Clone, Serialize)]
pub struct PhasesReport {
    /// Provenance header (seed, threads, version) for the regression gate.
    pub meta: RunMeta,
    /// One entry per traced workload.
    pub workloads: Vec<PhaseWorkload>,
}

/// Extension experiment E18: where does the time go? Runs each
/// instrumented hot path under a span-tracing session and attributes
/// wall clock to logical phases via [`mapro_obs::trace::TraceSummary`].
///
/// Six workloads cover the three instrumented subsystems: the symbolic
/// checker on the GWLB pair and the E17 `wide4`/`wide8` pairs (compile vs
/// cross-intersection split), the enumerative checker on the same GWLB
/// pair (chunked scan), the sharded packet replay (per-shard compile vs
/// eval), and the E14 control driver (txn/bundle/reconcile lifecycle).
///
/// Composes with an ambient `repro --trace` session: when one is already
/// active the workloads are attributed from [`drain`]ed increments and
/// the session is left running (the final trace file still contains
/// everything); otherwise a private session is started and stopped.
///
/// [`drain`]: mapro_obs::trace::drain
pub fn phases(cfg: &BenchConfig) -> PhasesReport {
    use mapro_core::{EquivConfig, EquivMode};
    use mapro_obs::trace;
    use mapro_sym::SymConfig;
    use std::time::Instant;

    let own_session = !trace::active();
    if own_session {
        assert!(
            trace::start(&trace::TraceConfig::default()),
            "phases: a trace session must be startable"
        );
    } else {
        // Ambient `--trace` session: discard spans emitted by earlier
        // experiments so each workload below is attributed in isolation.
        let _ = trace::drain();
    }

    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    let (w4l, w4r) = wide_pair(4, 12, cfg.seed);
    let (w8l, w8r) = wide_pair(8, 24, cfg.seed);
    let replay_trace = generate(
        &g.universal.catalog,
        &g.trace_spec(),
        cfg.packets.min(20_000),
        cfg.seed,
    );
    let sym_cfg = EquivConfig {
        mode: EquivMode::Symbolic,
        ..EquivConfig::default()
    };
    let enum_cfg = EquivConfig {
        mode: EquivMode::Enumerate,
        ..EquivConfig::default()
    };

    let mut workloads = Vec::new();
    let mut run = |name: &str, f: &mut dyn FnMut()| {
        let t0 = Instant::now();
        f();
        let wall_ms = t0.elapsed().as_secs_f64() * 1e3;
        let data = trace::drain();
        let s = data.summary();
        let trace_wall = s.wall_ns.max(1) as f64;
        workloads.push(PhaseWorkload {
            workload: name.to_owned(),
            wall_ms,
            coverage: s.coverage(),
            events: data.events.len(),
            dropped: s.dropped,
            phases: s
                .phases
                .iter()
                .map(|p| PhaseRow {
                    path: p.path.clone(),
                    count: p.count,
                    total_ms: p.total_ns as f64 / 1e6,
                    self_ms: p.self_ns as f64 / 1e6,
                    share: p.self_ns as f64 / trace_wall,
                })
                .collect(),
        });
    };

    run("check-sym-gwlb", &mut || {
        let _ =
            mapro_sym::check_equivalent_with(&g.universal, &goto, &sym_cfg, &SymConfig::default());
    });
    run("check-sym-wide4", &mut || {
        let _ = mapro_sym::check_equivalent_with(&w4l, &w4r, &sym_cfg, &SymConfig::default());
    });
    run("check-sym-wide8", &mut || {
        let _ = mapro_sym::check_equivalent_with(&w8l, &w8r, &sym_cfg, &SymConfig::default());
    });
    run("check-enum-gwlb", &mut || {
        let _ = mapro_core::check_equivalent(&g.universal, &goto, &enum_cfg);
    });
    run("replay-gwlb", &mut || {
        let _ = mapro_switch::run_modeled_parallel(
            &|| Box::new(OvsSim::compile(&g.universal)) as Box<dyn Switch + Send>,
            &replay_trace,
            4,
        );
    });
    run("control-faults", &mut || {
        let _ = faults(cfg, &[0.2]);
    });

    if own_session {
        let _ = trace::stop();
    }

    PhasesReport {
        meta: RunMeta::new("phases", cfg.seed),
        workloads,
    }
}

// ---------------------------------------------------------------- E21 ---

/// Random entangled entries in the E21 `deep` workload (and the committed
/// `tests/golden/deep_overlap.json` fixture generated from it). The full
/// table is `DEEP_ROWS + 32` covering entries plus the planted wildcard.
pub const DEEP_ROWS: usize = 88;

/// The E21 `deep` workload: `nrows` entangled ternary entries, each with
/// 3–5 care bits scattered across three 8-bit fields, then a block of 32
/// entries enumerating every combination of 5 scattered bits (whose union
/// covers the joint space *by construction*), then a planted all-wildcard
/// entry — provably shadowed, but only by the union of many earlier
/// entries. The plant is re-verified at generation time by exact DD
/// subtraction ([`mapro_sym::TableLiveness`]); generation is
/// deterministic, so a given `(nrows, seed)` always yields the same
/// program.
///
/// The fragmented union is the adversarial shape for cube engines: the
/// budgeted recursive split in `covered_by` must chew through the random
/// layer before the covering block can close any branch, exhausting its
/// default budget — while the hash-consed diagram stays near-linear in
/// the entry count.
pub fn deep_overlap(nrows: usize, seed: u64) -> Pipeline {
    use mapro_core::{ActionSem, Catalog, Table, Value};
    use mapro_sym::{cube::Cube, SymConfig, TableLiveness};
    let mut s = seed | 1;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut c = Catalog::new();
    let fs: Vec<_> = (0..3).map(|i| c.field(format!("d{i}"), 8)).collect();
    let out = c.action("out", ActionSem::Output);
    let mut t = Table::new("deep", fs, vec![out]);
    // A ternary row from per-field (bits, mask) pairs.
    let row_of = |bits: [u64; 3], mask: [u64; 3]| -> Vec<Value> {
        (0..3)
            .map(|f| {
                if mask[f] == 0 {
                    Value::Any
                } else {
                    Value::Ternary {
                        bits: bits[f],
                        mask: mask[f],
                    }
                }
            })
            .collect()
    };
    for r in 0..nrows {
        let k = 3 + rng() % 3;
        let mut mask = [0u64; 3];
        let mut bits = [0u64; 3];
        let mut placed = 0;
        while placed < k {
            let b = rng() % 24;
            let (f, bit) = ((b / 8) as usize, b % 8);
            if mask[f] >> bit & 1 == 0 {
                mask[f] |= 1 << bit;
                if rng() & 1 == 1 {
                    bits[f] |= 1 << bit;
                }
                placed += 1;
            }
        }
        t.row(row_of(bits, mask), vec![Value::sym(format!("p{}", r % 4))]);
    }
    // Covering block: all 2^5 assignments of 5 scattered bits. Union =
    // the whole space, so the wildcard below is dead by construction.
    let mut cover_bits = Vec::new();
    while cover_bits.len() < 5 {
        let b = rng() % 24;
        if !cover_bits.contains(&b) {
            cover_bits.push(b);
        }
    }
    for combo in 0u64..32 {
        let mut mask = [0u64; 3];
        let mut bits = [0u64; 3];
        for (i, &b) in cover_bits.iter().enumerate() {
            let (f, bit) = ((b / 8) as usize, b % 8);
            mask[f] |= 1 << bit;
            if combo >> i & 1 == 1 {
                bits[f] |= 1 << bit;
            }
        }
        t.row(
            row_of(bits, mask),
            vec![Value::sym(format!("p{}", combo % 4))],
        );
    }
    t.row(vec![Value::Any; 3], vec![Value::sym("unreachable")]);
    let p = Pipeline::single(c, t);
    let table = &p.tables[0];
    let widths: Vec<u32> = table
        .match_attrs
        .iter()
        .map(|&a| p.catalog.attr(a).width)
        .collect();
    let cubes: Vec<Option<Cube>> = table
        .entries
        .iter()
        .map(|e| Cube::of(&e.matches, &widths))
        .collect();
    let lv = TableLiveness::build(&widths, &cubes, SymConfig::default().max_nodes)
        .expect("deep-overlap liveness fits the default arena");
    assert_eq!(
        lv.covered.last(),
        Some(&Some(true)),
        "deep-overlap plant is not covered — covering block broken"
    );
    p
}

/// The deep-overlap equivalence pair: the planted program and the same
/// program with the shadowed wildcard entry removed. They are equivalent
/// *iff* the plant is dead — which generation proved — so the pair turns
/// the lint liveness question into an equivalence question the E21 sweep
/// can time on both engines.
pub fn deep_pair(nrows: usize, seed: u64) -> (Pipeline, Pipeline) {
    let left = deep_overlap(nrows, seed);
    let mut right = left.clone();
    right.tables[0].entries.pop();
    (left, right)
}

/// One equivalence row of the E21 report.
#[derive(Debug, Clone, Serialize)]
pub struct DdScaleRow {
    /// Workload label.
    pub workload: String,
    /// log2 of the derived Cartesian packet-domain product.
    pub product_log2: f64,
    /// Total match bits of the joint field space (the DD variable count).
    pub joint_bits: u32,
    /// `ok` when the cube engine compiled both covers, else the budget it
    /// exhausted (`atom_budget` | `partition_budget`).
    pub cube_status: String,
    /// Cube atoms of the left cover (`None` when the cube engine failed).
    pub cube_atoms_left: Option<usize>,
    /// Cube atoms of the right cover (`None` when the cube engine failed).
    pub cube_atoms_right: Option<usize>,
    /// Best-of-reps wall clock of the full cube check \[ms\]; `None` when
    /// the cube engine exhausted a budget and was not timed.
    pub cube_ms: Option<f64>,
    /// Live MTBDD nodes reachable from both compiled roots.
    pub dd_nodes: usize,
    /// Best-of-reps wall clock of the full DD check \[ms\].
    pub dd_ms: f64,
    /// `equivalent` or `counterexample` (the DD verdict; the cube verdict
    /// must agree whenever it exists, asserted in the experiment).
    pub verdict: String,
    /// Fingerprint of the deterministic parts (bits, nodes, atoms,
    /// verdict, cube status) — never timings — for the cross-thread diff.
    pub digest: String,
}

/// One lint row of the E21 report: unknowns per backend per workload.
#[derive(Debug, Clone, Serialize)]
pub struct DdLintRow {
    /// Workload label.
    pub workload: String,
    /// Undecided union-cover findings under `--backend cube`.
    pub cube_unknown: usize,
    /// `dead-entry` findings under `--backend cube`.
    pub cube_dead: usize,
    /// Undecided findings under `--backend dd` — zero, by construction
    /// (asserted in the experiment).
    pub dd_unknown: usize,
    /// `dead-entry` findings under `--backend dd`.
    pub dd_dead: usize,
    /// Deterministic fingerprint of the four counts.
    pub digest: String,
}

/// The E21 report.
#[derive(Debug, Clone, Serialize)]
pub struct DdScaleReport {
    /// Provenance header (seed, threads, version) for the regression gate.
    pub meta: RunMeta,
    /// `available_parallelism` of the measuring host.
    pub host_cores: usize,
    /// Workload seed.
    pub seed: u64,
    /// One row per equivalence configuration.
    pub rows: Vec<DdScaleRow>,
    /// One row per lint workload.
    pub lint: Vec<DdLintRow>,
}

/// Extension experiment E21: the hash-consed decision-diagram backend
/// against the cube-cover engine, across the width boundary where cube
/// lists stop being a usable representation.
///
/// Equivalence sweep — four pairs, each checked by both backends:
/// * `wide4` / `wide8` — the E17 wide workloads: inside the cube
///   fragment, where the sweep records the crossover (small covers beat
///   small diagrams on constant factors).
/// * `wide16` — 16 × 16-bit fields, product ≥ 2^64: the acceptance bar.
///   The experiment *asserts* that the cube engine either exhausts a
///   budget here or is ≥ 10× slower than the DD proof.
/// * `deep` — the [`deep_overlap`] pair: equivalent iff the planted
///   wildcard entry is dead, the shape where cube residue lists fragment.
///
/// Lint sweep — the six paper workloads plus the deep fixture, linted
/// under `--backend cube` and `--backend dd`: the DD column must report
/// zero undecided findings everywhere (asserted), and on `deep` the cube
/// column must report at least one — the verdict the DD backend is there
/// to decide.
///
/// Timing is best-of-`REPS` after an untimed warmup. The digest columns
/// capture only deterministic results, so runs at different `--threads`
/// must produce byte-identical digests (CI enforces this).
pub fn ddscale(cfg: &BenchConfig) -> DdScaleReport {
    use mapro_core::{Domain, EquivOutcome};
    use mapro_sym::{compile, BitLayout, CoverBackend, DdEngine, FieldSpace, SymConfig};
    use std::time::Instant;

    const REPS: usize = 2;
    // The cube side runs under a 2^16 atom ceiling rather than the 2^20
    // compile default: the cross-intersection is quadratic in the atom
    // count, so 2^16 is where a timed check stops being practical (≈4×10^9
    // pair intersections) — past it the engine's own budget verdict *is*
    // the result E21 records. (`deep` compiles to ~3×10^5 atoms per side;
    // timing that check would take hours.)
    let cube_cfg = SymConfig {
        backend: CoverBackend::Cube,
        max_atoms: 1 << 16,
        ..SymConfig::default()
    };
    let dd_cfg = SymConfig {
        backend: CoverBackend::Dd,
        ..SymConfig::default()
    };

    let (deep_l, deep_r) = deep_pair(DEEP_ROWS, cfg.seed);
    let (w4l, w4r) = wide_pair(4, 12, cfg.seed);
    let (w8l, w8r) = wide_pair(8, 24, cfg.seed);
    let (w16l, w16r) = wide_pair(16, 40, cfg.seed);
    let cases: Vec<(&str, Pipeline, Pipeline)> = vec![
        ("wide4", w4l, w4r),
        ("wide8", w8l, w8r),
        ("wide16", w16l, w16r),
        ("deep", deep_l.clone(), deep_r),
    ];

    let mut rows = Vec::new();
    for (name, l, r) in &cases {
        let space = FieldSpace::from_pipelines(&[l, r]);
        let joint_bits = BitLayout::of(&space).total_bits();
        let product = Domain::from_pipelines(&[l, r])
            .map(|d| d.product_size())
            .unwrap_or(u128::MAX);

        // Cube side: compile each cover first so a budget failure is
        // captured structurally (which budget, not just a message), then
        // time the full check only when both sides compiled.
        let cube_compile = compile(l, &space, &cube_cfg).and_then(|cl| {
            compile(r, &space, &cube_cfg).map(|cr| (cl.atoms.len(), cr.atoms.len()))
        });
        let (cube_status, cube_atoms, cube_ms, cube_verdict) = match cube_compile {
            Ok((al, ar)) => {
                let mut best = f64::INFINITY;
                let mut out = None;
                for _ in 0..=REPS {
                    // First pass is the untimed warmup (primes caches).
                    let t0 = Instant::now();
                    let o = mapro_sym::check_symbolic(l, r, &cube_cfg)
                        .expect("cube check runs once both covers compiled");
                    if out.is_some() {
                        best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                    }
                    out = Some(o);
                }
                let verdict = out.expect("REPS >= 1").is_equivalent();
                ("ok".to_owned(), Some((al, ar)), Some(best), Some(verdict))
            }
            Err(u) => (u.label().to_owned(), None, None, None),
        };

        let mut dd_ms = f64::INFINITY;
        let mut out = None;
        for _ in 0..=REPS {
            let t0 = Instant::now();
            let o = mapro_sym::check_symbolic(l, r, &dd_cfg)
                .expect("the DD engine decides every ddscale workload");
            if out.is_some() {
                dd_ms = dd_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            }
            out = Some(o);
        }
        let out = out.expect("REPS >= 1");
        if let Some(cv) = cube_verdict {
            assert_eq!(
                cv,
                out.is_equivalent(),
                "ddscale {name}: backends disagree — differential bug"
            );
        }
        let verdict = match &out {
            EquivOutcome::Equivalent { .. } => "equivalent".to_owned(),
            EquivOutcome::Counterexample(cx) => format!("cx@{:?}", cx.fields),
        };

        // Node count measured on a fresh engine so it is exact regardless
        // of which verdict path the timed check took.
        let mut eng = DdEngine::new(&space, &dd_cfg);
        let lr = eng
            .compile(l, &space, &dd_cfg)
            .expect("left cover compiles on the DD backend");
        let rr = eng
            .compile(r, &space, &dd_cfg)
            .expect("right cover compiles on the DD backend");
        let dd_nodes = eng.mgr.node_count(&[lr, rr]);

        if *name == "wide16" {
            // The acceptance bar: a ≥ 2^64 product the DD backend proves
            // while the cube engine exhausts a budget or pays ≥ 10×.
            assert!(
                (product as f64).log2() >= 64.0,
                "wide16 product shrank below 2^64"
            );
            assert!(
                cube_status != "ok" || cube_ms.unwrap_or(f64::INFINITY) >= 10.0 * dd_ms,
                "E21 wide16: cube engine neither exhausted a budget nor was 10x slower \
                 (cube {cube_ms:?} ms vs dd {dd_ms:.3} ms)"
            );
        }

        let (cube_atoms_left, cube_atoms_right) = match cube_atoms {
            Some((a, b)) => (Some(a), Some(b)),
            None => (None, None),
        };
        let atoms_tail = match cube_atoms {
            Some((a, b)) => format!("{a}:{b}"),
            None => "-".to_owned(),
        };
        rows.push(DdScaleRow {
            workload: (*name).to_owned(),
            product_log2: (product as f64).log2(),
            joint_bits,
            cube_status: cube_status.clone(),
            cube_atoms_left,
            cube_atoms_right,
            cube_ms,
            dd_nodes,
            dd_ms,
            verdict: verdict.clone(),
            digest: format!("dd:{joint_bits}:{dd_nodes}:{verdict}:{cube_status}:{atoms_tail}"),
        });
    }

    // Lint sweep: every verdict decidable under the DD backend.
    let lint_cases: Vec<(&str, Pipeline)> = vec![
        ("fig1", Gwlb::fig1().universal),
        (
            "gwlb",
            Gwlb::random(cfg.services, cfg.backends, cfg.seed).universal,
        ),
        ("fig2-l3", L3::fig2().universal),
        ("fig3-vlan", Vlan::fig3().universal),
        ("fig5-sdx", Sdx::fig5().universal),
        (
            "enterprise",
            mapro_workloads::Enterprise::random(cfg.services, 4, cfg.seed).pipeline,
        ),
        ("deep", deep_l),
    ];
    let backend_cfg = |backend| mapro_lint::LintConfig {
        backend,
        ..mapro_lint::LintConfig::default()
    };
    let mut lint = Vec::new();
    for (name, p) in &lint_cases {
        let cube = mapro_lint::lint(p, &backend_cfg(mapro_lint::CoverBackend::Cube));
        let dd = mapro_lint::lint(p, &backend_cfg(mapro_lint::CoverBackend::Dd));
        assert_eq!(
            dd.unknown_findings,
            0,
            "{name}: DD backend left a lint verdict undecided:\n{}",
            dd.to_text()
        );
        if *name == "deep" {
            assert!(
                cube.unknown_findings > 0,
                "deep: cube budget no longer exhausts — regenerate the workload:\n{}",
                cube.to_text()
            );
            let planted = p.tables[0].entries.len() - 1;
            assert!(
                dd.with_lint("dead-entry").any(|d| d.entry == Some(planted)),
                "deep: DD backend missed the planted dead entry:\n{}",
                dd.to_text()
            );
        }
        let row = DdLintRow {
            workload: (*name).to_owned(),
            cube_unknown: cube.unknown_findings,
            cube_dead: cube.with_lint("dead-entry").count(),
            dd_unknown: dd.unknown_findings,
            dd_dead: dd.with_lint("dead-entry").count(),
            digest: format!(
                "lint:{}:{}:{}:{}",
                cube.unknown_findings,
                cube.with_lint("dead-entry").count(),
                dd.unknown_findings,
                dd.with_lint("dead-entry").count()
            ),
        };
        lint.push(row);
    }

    DdScaleReport {
        meta: RunMeta::new("ddscale", cfg.seed),
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        seed: cfg.seed,
        rows,
        lint,
    }
}

// ---------------------------------------------------------------- E22 ---

/// One configuration of the incremental re-verification sweep (E22).
#[derive(Debug, Clone, Serialize)]
pub struct ChurnVerifyRow {
    /// Workload label (`gwlb-s{services}-b{backends}`).
    pub workload: String,
    /// Cover backend the session ran on (`cube` | `dd`).
    pub backend: String,
    /// Poisson intent rate of the churn stream \[1/s\].
    pub rate_per_sec: f64,
    /// Total entries across the pipeline's tables (the table-size axis).
    pub entries: usize,
    /// Flow-mods in the generated stream.
    pub mods: usize,
    /// Best-of-reps wall clock of one from-scratch `check_symbolic` \[ms\]
    /// — what every committed flow-mod would cost without the session.
    pub full_ms: f64,
    /// Mean per-mod incremental re-check latency \[µs\].
    pub incr_mean_us: f64,
    /// Worst per-mod incremental re-check latency \[µs\].
    pub incr_max_us: f64,
    /// `full_ms / incr_mean` — the headline ratio (≥ 100 asserted on the
    /// largest cube configuration).
    pub speedup: f64,
    /// Atoms re-checked across the stream (summed `ProofToken` field).
    pub atoms_rechecked: u64,
    /// Mods that stayed on the delta path (non-empty dirty region); the
    /// remainder fell back to a full recheck inside the session.
    pub delta_mods: usize,
    /// The steady-state stream verdict (`equivalent` — identical churn on
    /// both sides; divergence detection is asserted separately).
    pub verdict: String,
    /// Fingerprint of the deterministic parts (entries, mods, atoms,
    /// delta-path count, verdict) — never timings — for the cross-thread
    /// diff.
    pub digest: String,
}

/// The E22 report.
#[derive(Debug, Clone, Serialize)]
pub struct ChurnVerifyReport {
    /// Provenance header (seed, threads, version) for the regression gate.
    pub meta: RunMeta,
    /// `available_parallelism` of the measuring host.
    pub host_cores: usize,
    /// Workload seed.
    pub seed: u64,
    /// One row per (size × rate × backend) configuration.
    pub rows: Vec<ChurnVerifyRow>,
}

/// Extension experiment E22: incremental equivalence re-verification
/// under control-plane churn ([`mapro_sym::IncrementalChecker`]).
///
/// For each GWLB size × Poisson rate × backend configuration, the sweep
/// opens one session over the `(universal, universal)` pair, replays a
/// seeded stream of single-entry action `Modify`s onto *both* sides (the
/// steady-state shape of verified churn: every committed flow-mod must
/// keep the intended and shadow pipelines equivalent), and times each
/// `update_both` re-check against a best-of-reps from-scratch
/// `check_symbolic` baseline.
///
/// Correctness is asserted in-experiment, not just reported:
/// * every steady-state token must read `Equivalent`;
/// * after the stream, a left-only edit must flip the session to
///   `NotEquivalent` *and* a from-scratch check must agree, then
///   applying the same edit to the right side must restore
///   `Equivalent` — the incremental verdict tracks ground truth through
///   divergence and convergence;
/// * on the largest cube configuration the mean incremental latency must
///   beat the full check by ≥ 100× (and stay µs-scale on optimized
///   builds) — the tentpole claim of the incremental checker.
///
/// Timing is best-of-`REPS` for the baseline and per-mod for the session
/// (a session re-check runs once per flow-mod in production; "best of"
/// would flatter it). Digests capture only deterministic results, so
/// runs at different `--threads` must produce byte-identical digests.
pub fn churnverify(cfg: &BenchConfig) -> ChurnVerifyReport {
    use mapro_control::{RuleUpdate, UpdatePlan};
    use mapro_core::Value;
    use mapro_sym::{CoverBackend, IncrementalChecker, Side, SymConfig};
    use std::time::Instant;

    const REPS: usize = 3;
    const DURATION_SEC: f64 = 0.1;

    let sizes = [
        (cfg.services, cfg.backends),
        (cfg.services * 3, cfg.backends * 2),
    ];
    let rates = [200.0, 2000.0];
    let backends = [(CoverBackend::Cube, "cube"), (CoverBackend::Dd, "dd")];
    let largest = cfg.services * 3;

    let mut rows = Vec::new();
    for &(services, nbackends) in &sizes {
        let g = Gwlb::random(services, nbackends, cfg.seed);
        let base = g.universal.clone();
        let table_name = base.tables[0].name.clone();
        let action_attr = base.tables[0].action_attrs[0];
        let nrows = base.tables[0].entries.len();
        let entries: usize = base.tables.iter().map(|t| t.entries.len()).sum();
        let workload = format!("gwlb-s{services}-b{nbackends}");

        for &(backend, bname) in &backends {
            let scfg = SymConfig {
                backend,
                ..SymConfig::default()
            };

            // Baseline: what re-verifying a commit costs from scratch.
            let _ = mapro_sym::check_symbolic(&base, &base, &scfg); // warmup
            let mut full_ms = f64::INFINITY;
            for _ in 0..REPS {
                let t0 = Instant::now();
                let o = mapro_sym::check_symbolic(&base, &base, &scfg)
                    .expect("GWLB is inside the symbolic fragment");
                assert!(o.is_equivalent());
                full_ms = full_ms.min(t0.elapsed().as_secs_f64() * 1e3);
            }

            for &rate in &rates {
                let mut left = base.clone();
                let mut right = base.clone();
                let mut session = IncrementalChecker::new(&left, &right, &scfg)
                    .expect("session opens on a GWLB pair");
                let mod_plan = |k: usize| UpdatePlan {
                    intent: format!("churn {k}"),
                    updates: vec![RuleUpdate::Modify {
                        table: table_name.clone(),
                        matches: base.tables[0].entries[k % nrows].matches.clone(),
                        set: vec![(action_attr, Value::sym(format!("vm-churn-{k}")))],
                    }],
                };
                let events = mapro_control::poisson_stream(rate, DURATION_SEC, cfg.seed, mod_plan);

                let mut sum_us = 0.0f64;
                let mut max_us = 0.0f64;
                let mut atoms_rechecked = 0u64;
                let mut delta_mods = 0usize;
                for (i, ev) in events.iter().enumerate() {
                    let drows = mapro_control::plan_delta_rows(&left, &ev.plan);
                    mapro_control::apply_plan_silent(&mut left, &ev.plan).expect("plan applies");
                    mapro_control::apply_plan_silent(&mut right, &ev.plan).expect("plan applies");
                    let t0 = Instant::now();
                    let token = session
                        .update_both(&left, &right, &drows, 1, i as u64)
                        .expect("incremental re-check runs");
                    let us = t0.elapsed().as_secs_f64() * 1e6;
                    sum_us += us;
                    max_us = max_us.max(us);
                    atoms_rechecked += token.atoms_rechecked as u64;
                    if !session.last_dirty().is_empty() {
                        delta_mods += 1;
                    }
                    assert!(
                        token.verdict.is_equivalent(),
                        "identical churn on both sides must stay equivalent (mod {i})"
                    );
                }
                let mods = events.len();

                // Divergence tracking: session and from-scratch check must
                // agree through a left-only edit and back.
                let div = mod_plan(usize::MAX - 1);
                let drows = mapro_control::plan_delta_rows(&left, &div);
                let mut l2 = left.clone();
                mapro_control::apply_plan_silent(&mut l2, &div).expect("plan applies");
                let token = session
                    .update(Side::Left, &l2, &drows, 1, mods as u64)
                    .expect("diverging update runs");
                assert!(
                    !token.verdict.is_equivalent(),
                    "a one-sided edit must flip the session verdict"
                );
                assert!(
                    !mapro_sym::check_symbolic(&l2, &right, &scfg)
                        .expect("fresh check runs")
                        .is_equivalent(),
                    "from-scratch check must agree with the session on divergence"
                );
                let mut r2 = right.clone();
                mapro_control::apply_plan_silent(&mut r2, &div).expect("plan applies");
                let token = session
                    .update(Side::Right, &r2, &drows, 1, mods as u64 + 1)
                    .expect("converging update runs");
                assert!(
                    token.verdict.is_equivalent(),
                    "mirroring the edit must restore equivalence"
                );

                let incr_mean_us = sum_us / mods.max(1) as f64;
                let speedup = full_ms * 1e3 / incr_mean_us.max(f64::MIN_POSITIVE);
                if services == largest && bname == "cube" {
                    assert!(
                        speedup >= 100.0,
                        "E22 {workload}/{bname}@{rate}: incremental re-check only {speedup:.1}x \
                         over full check ({incr_mean_us:.1} us vs {full_ms:.3} ms)"
                    );
                    // µs-scale latency is an optimized-build claim; the
                    // ratio above is what debug builds can honestly hold.
                    if !cfg!(debug_assertions) {
                        assert!(
                            incr_mean_us < 1000.0,
                            "E22 {workload}/{bname}@{rate}: mean per-mod re-check \
                             {incr_mean_us:.1} us is not µs-scale"
                        );
                    }
                }

                rows.push(ChurnVerifyRow {
                    workload: workload.clone(),
                    backend: bname.to_owned(),
                    rate_per_sec: rate,
                    entries,
                    mods,
                    full_ms,
                    incr_mean_us,
                    incr_max_us: max_us,
                    speedup,
                    atoms_rechecked,
                    delta_mods,
                    verdict: "equivalent".to_owned(),
                    digest: format!(
                        "churnverify:{bname}:{entries}:{mods}:{atoms_rechecked}:{delta_mods}:eq"
                    ),
                });
            }
        }
    }

    ChurnVerifyReport {
        meta: RunMeta::new("churnverify", cfg.seed),
        host_cores: std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        seed: cfg.seed,
        rows,
    }
}
