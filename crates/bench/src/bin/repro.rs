//! `repro` — regenerate every table and figure of the paper.
//!
//! ```text
//! repro [--experiment all|fig1|fig2|fig3|fig4|fig5|table1|size|control|monitor|theorem1|templates|cache|scaling|joins|fig4queue|faults|chaos|parscale|lint|symscale|ddscale|churnverify|phases|mpps]
//!       [--packets N] [--services N] [--backends M] [--seed S] [--threads N]
//!       [--json] [--metrics [out.json]] [--trace out.json]
//! ```
//!
//! Output is paper-shaped text (or JSON with `--json`) suitable for
//! pasting into EXPERIMENTS.md. `--metrics` dumps the observability
//! registry after the run: as JSON to the given file, or as a text table
//! to stderr when no path follows. `--threads` sizes the work-stealing
//! pool (precedence: `--threads` > `MAPRO_THREADS` > available cores);
//! results are byte-identical at any thread count. `--trace` records a
//! structured span trace of the whole run and writes it as Chrome
//! trace-event JSON (open in Perfetto / `chrome://tracing`); a phase
//! summary goes to stderr.

use mapro_bench::*;

const USAGE: &str = "repro [--experiment all|fig1|fig2|fig3|fig4|fig5|table1|size|control|monitor|theorem1|templates|cache|scaling|joins|fig4queue|faults|chaos|parscale|lint|symscale|ddscale|churnverify|phases|mpps] [--packets N] [--services N] [--backends M] [--seed S] [--threads N] [--json] [--metrics [out.json]] [--trace out.json]";

/// Where `--metrics` sends the registry snapshot.
enum MetricsSink {
    /// `--metrics` with no path: text table on stderr.
    Stderr,
    /// `--metrics out.json`: JSON report to a file.
    File(String),
}

struct Args {
    experiment: String,
    cfg: BenchConfig,
    json: bool,
    metrics: Option<MetricsSink>,
    trace: Option<String>,
}

fn take(it: &mut impl Iterator<Item = String>, name: &str) -> Result<String, String> {
    it.next().ok_or_else(|| format!("missing value for {name}"))
}

fn num<T: std::str::FromStr>(
    it: &mut impl Iterator<Item = String>,
    name: &str,
) -> Result<T, String> {
    let v = take(it, name)?;
    v.parse()
        .map_err(|_| format!("invalid value {v:?} for {name}: expected a number"))
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        experiment: "all".to_owned(),
        cfg: BenchConfig::default(),
        json: false,
        metrics: None,
        trace: None,
    };
    let mut it = std::env::args().skip(1).peekable();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--experiment" | "-e" => args.experiment = take(&mut it, "--experiment")?,
            "--packets" => args.cfg.packets = num(&mut it, "--packets")?,
            "--services" => args.cfg.services = num(&mut it, "--services")?,
            "--backends" => args.cfg.backends = num(&mut it, "--backends")?,
            "--seed" => args.cfg.seed = num(&mut it, "--seed")?,
            "--threads" => {
                let v = take(&mut it, "--threads")?;
                mapro_par::set_threads(mapro_par::parse_threads(&v)?);
            }
            "--json" => args.json = true,
            "--trace" => args.trace = Some(take(&mut it, "--trace")?),
            "--metrics" => {
                args.metrics = Some(match it.peek() {
                    Some(v) if !v.starts_with('-') => MetricsSink::File(it.next().expect("peeked")),
                    _ => MetricsSink::Stderr,
                });
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

/// The single source of truth for experiment names: `want()` consults it
/// (so a `want("typo")` block can never silently dead-end), and argument
/// validation rejects anything outside it.
const EXPERIMENTS: &[&str] = &[
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig4queue",
    "fig5",
    "table1",
    "size",
    "control",
    "monitor",
    "theorem1",
    "templates",
    "cache",
    "scaling",
    "joins",
    "faults",
    "chaos",
    "parscale",
    "lint",
    "symscale",
    "ddscale",
    "churnverify",
    "phases",
    "mpps",
];

/// Report a usage error on one line and exit 2 (the contract
/// `tests/cli.rs` pins down for every malformed invocation).
fn usage_error(e: impl std::fmt::Display) -> ! {
    eprintln!("repro: {e} (try --help)");
    std::process::exit(2)
}

fn main() {
    install_pipe_hook();
    let args = parse_args().unwrap_or_else(|e| usage_error(e));
    // Surface a malformed MAPRO_THREADS as a usage error rather than
    // silently ignoring it (an explicit --threads takes precedence).
    if mapro_par::thread_override() == 0 {
        if let Err(e) = mapro_par::env_threads() {
            usage_error(e);
        }
    }
    if args.trace.is_some() && !mapro_obs::trace::start(&mapro_obs::trace::TraceConfig::default()) {
        usage_error("a trace session is already active");
    }
    let all = args.experiment == "all";
    if !all && !EXPERIMENTS.contains(&args.experiment.as_str()) {
        usage_error(format_args!(
            "unknown experiment {:?}; expected all|{}",
            args.experiment,
            EXPERIMENTS.join("|")
        ));
    }
    let want = |name: &str| {
        assert!(
            EXPERIMENTS.contains(&name),
            "want({name:?}) not in EXPERIMENTS — add it to the list"
        );
        // parscale repeats every hot path at 4 pool sizes, symscale
        // repeats the equivalence workloads per engine, phases re-runs
        // the instrumented hot paths under tracing, and mpps wall-clocks
        // three engines over million-flow traces; they are machine
        // benchmarks, not paper artifacts, so `all` skips them.
        (all && !matches!(
            name,
            "parscale" | "symscale" | "ddscale" | "churnverify" | "phases" | "mpps"
        )) || args.experiment == name
    };

    if want("fig1") {
        println!("\n############ E1 — Fig. 1: GWLB representations ############");
        print!("{}", fig1_rendering());
    }
    if want("fig2") {
        println!("\n############ E2 — Fig. 2: L3 pipeline to 3NF ############");
        print!("{}", fig2_rendering());
    }
    if want("fig3") {
        println!("\n############ E3 — Fig. 3: action-to-match rejection ############");
        print!("{}", fig3_rendering());
    }
    if want("table1") {
        println!("\n############ E5 — Table 1: static performance ############");
        let rows = table1(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!(
                "{:<10} {:<10} {:>12} {:>16}  templates",
                "switch", "repr", "rate [Mpps]", "Q3 delay [us]"
            );
            for r in &rows {
                println!(
                    "{:<10} {:<10} {:>12.2} {:>16.1}  {}",
                    r.switch,
                    r.repr,
                    r.rate_mpps,
                    r.q3_latency_us,
                    r.templates.join(", ")
                );
            }
        }
    }
    if want("fig4") {
        println!("\n############ E4 — Fig. 4: reactiveness under churn ############");
        let rates: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
        let pts = fig4(&args.cfg, &rates);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&pts).unwrap());
        } else {
            println!(
                "{:>10} {:>16} {:>16} {:>14} {:>14}",
                "updates/s", "universal Mpps", "normalized Mpps", "uni delay us", "norm delay us"
            );
            for p in &pts {
                println!(
                    "{:>10.0} {:>16.2} {:>16.2} {:>14.1} {:>14.1}",
                    p.updates_per_sec,
                    p.universal_mpps,
                    p.normalized_mpps,
                    p.universal_latency_us,
                    p.normalized_latency_us
                );
            }
        }
    }
    if want("fig4queue") {
        println!("\n############ E4b — Fig. 4 as a queueing system (extension) ############");
        let rates = [0.0, 25.0, 50.0, 100.0];
        let rows = fig4_queue(&args.cfg, &rates);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!(
                "{:>10} {:<10} {:>10} {:>12} {:>13} {:>9}",
                "updates/s", "repr", "Mpps", "Q3 lat [us]", "max lat [us]", "drops"
            );
            for r in &rows {
                println!(
                    "{:>10.0} {:<10} {:>10.2} {:>12.2} {:>13.1} {:>9}",
                    r.updates_per_sec, r.repr, r.mpps, r.q3_latency_us, r.max_latency_us, r.dropped
                );
            }
        }
    }
    if want("size") {
        println!("\n############ E6 — §2 encoding sizes (fields) ############");
        let rows = encoding_sizes(&[5, 10, 20, 40], &[2, 4, 8, 16], args.cfg.seed);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!(
                "{:>4} {:>4} {:>10} {:>8} {:>9} {:>8} {:>10} {:>10}",
                "N", "M", "universal", "goto", "metadata", "rematch", "=4MN", "=N(3+2M)"
            );
            for r in &rows {
                println!(
                    "{:>4} {:>4} {:>10} {:>8} {:>9} {:>8} {:>10} {:>10}",
                    r.n,
                    r.m,
                    r.universal,
                    r.goto,
                    r.metadata,
                    r.rematch,
                    r.formula_universal,
                    r.formula_goto
                );
            }
        }
    }
    if want("control") {
        println!("\n############ E7 — §2 controllability ############");
        let rows = controllability(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!(
                "{:<10} {:>18} {:>18} {:>15}",
                "repr", "move-port updates", "change-ip updates", "exposed states"
            );
            for r in &rows {
                println!(
                    "{:<10} {:>18} {:>18} {:>15}",
                    r.repr, r.move_port_updates, r.change_ip_updates, r.exposed_states
                );
            }
        }
    }
    if want("monitor") {
        println!("\n############ E8 — §2 monitorability ############");
        let rows = monitorability(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!(
                "{:<10} {:>9} {:>12} {:>13}",
                "repr", "counters", "aggregate", "ground truth"
            );
            for r in &rows {
                println!(
                    "{:<10} {:>9} {:>12} {:>13}",
                    r.repr, r.counters, r.aggregate, r.ground_truth
                );
            }
        }
    }
    if want("theorem1") {
        println!("\n############ E9 — Theorem 1 replay ############");
        let s = theorem1_replay();
        if args.json {
            println!("{}", serde_json::to_string_pretty(&s).unwrap());
        } else {
            println!(
                "{} proof lines, all consecutive pairs semantically equal ({} packets evaluated)",
                s.steps, s.packets_checked
            );
            for (i, law) in s.laws.iter().enumerate() {
                println!("  line {:>2}: {}", i + 1, law);
            }
        }
    }
    if want("fig5") {
        println!("\n############ E10 — Fig. 5 / appendix: beyond 3NF ############");
        print!("{}", fig5_rendering());
    }
    if want("cache") {
        println!("\n############ E12 — OVS cache sensitivity (extension) ############");
        let rows = ovs_cache_sensitivity(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!(
                "{:>9} {:>6} {:>9} {:>12}",
                "capacity", "zipf", "hit rate", "rate [Mpps]"
            );
            for r in &rows {
                println!(
                    "{:>9} {:>6.1} {:>9.3} {:>12.2}",
                    r.capacity, r.zipf, r.hit_rate, r.mpps
                );
            }
        }
    }
    if want("joins") {
        println!("\n############ E5b — join abstractions on the specializing datapath (extension) ############");
        let rows = table1_joins(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!(
                "{:<10} {:>14} {:>8}  templates",
                "repr", "ESwitch Mpps", "fields"
            );
            for r in &rows {
                let t = if r.templates.len() > 4 {
                    format!(
                        "{} … ({} tables)",
                        r.templates[..3].join(", "),
                        r.templates.len()
                    )
                } else {
                    r.templates.join(", ")
                };
                println!(
                    "{:<10} {:>14.2} {:>8}  {t}",
                    r.repr, r.eswitch_mpps, r.fields
                );
            }
        }
    }
    if want("scaling") {
        println!("\n############ E13 — throughput vs table size (extension) ############");
        let rows = scaling(
            args.cfg.backends,
            &[5, 10, 20, 40, 80],
            args.cfg.packets.min(20_000),
            args.cfg.seed,
        );
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!(
                "{:>9} {:>16} {:>12} {:>7}",
                "services", "universal Mpps", "goto Mpps", "gain"
            );
            for r in &rows {
                println!(
                    "{:>9} {:>16.2} {:>12.2} {:>6.2}x",
                    r.services, r.universal_mpps, r.goto_mpps, r.gain
                );
            }
        }
    }
    if want("faults") {
        println!("\n############ E14 — churn under an unreliable control channel (extension) ############");
        let rates = [0.0, 0.1, 0.2, 0.3];
        let rep = faults_report(&args.cfg, &rates);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rep).unwrap());
        } else {
            let rows = rep.rows;
            println!(
                "{:>6} {:<10} {:>5} {:>8} {:>8} {:>9} {:>8} {:>11} {:>10} {:>11}",
                "p",
                "repr",
                "err",
                "msgs",
                "retries",
                "restarts",
                "repairs",
                "conv [us]",
                "stall [ms]",
                "goodput"
            );
            for r in &rows {
                println!(
                    "{:>6.2} {:<10} {:>5} {:>8} {:>8} {:>9} {:>8} {:>11.0} {:>10.2} {:>8.3}{}",
                    r.fault_rate,
                    r.repr,
                    r.intent_errors,
                    r.delivered,
                    r.retries,
                    r.restarts,
                    r.repairs,
                    r.max_convergence_us,
                    r.stall_ms,
                    r.goodput_mpps,
                    if r.reconciled { "" } else { "  NOT-CONVERGED" }
                );
            }
        }
    }
    if want("chaos") {
        println!(
            "\n############ E19 — controller crash-recovery chaos sweep (extension) ############"
        );
        let rep = chaos_report(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rep).unwrap());
        } else {
            println!(
                "{:>6} {:>6} {:>5} {:>6} {:>8} {:>6} {:>6} {:>7} {:>6} {:>5} {:>8} {:>8} {:>5} {:>6}  verdict",
                "crash",
                "fault",
                "ctls",
                "acked",
                "crashes",
                "elect",
                "fenced",
                "shed",
                "brk",
                "wal",
                "retries",
                "repairs",
                "epoch",
                "doubt"
            );
            for r in &rep.rows {
                println!(
                    "{:>6.2} {:>6.2} {:>5} {:>3}/{:<2} {:>8} {:>6} {:>6} {:>7} {:>6} {:>5} {:>8} {:>8} {:>5} {:>6}  {}",
                    r.crash_rate,
                    r.fault_rate,
                    r.controllers,
                    r.acked,
                    r.intents,
                    r.crashes,
                    r.elections,
                    r.epoch_rejections,
                    r.shed,
                    r.breaker_opens,
                    r.wal_records,
                    r.retries,
                    r.repairs,
                    r.final_epoch,
                    r.in_doubt,
                    if r.verified {
                        "verified"
                    } else if r.reconciled {
                        "RECONCILED-UNVERIFIED"
                    } else {
                        "NOT-CONVERGED"
                    }
                );
            }
            // The per-takeover recovery summaries the driver printed into
            // each report, worst cell last.
            println!("\nrecovery log (last cell):");
            if let Some(r) = rep.rows.last() {
                for line in &r.recovery_lines {
                    println!("  {line}");
                }
            }
            let failures: u64 = rep.rows.iter().map(|r| r.guardrail_failures).sum();
            println!(
                "guardrail: {} failure(s) across {} cells{}",
                failures,
                rep.rows.len(),
                if failures == 0 {
                    " — all recoveries verified"
                } else {
                    "  *** GATE FAILED ***"
                }
            );
        }
    }
    if want("parscale") {
        println!(
            "\n############ E15 — thread scaling of the parallel executor (extension) ############"
        );
        let rep = parscale(&args.cfg, &[1, 2, 4, 8]);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rep).unwrap());
        } else {
            println!(
                "host cores: {} (speedup saturates there; higher thread rows measure oversubscription)",
                rep.host_cores
            );
            println!(
                "{:<8} {:>8} {:>12} {:>9}  digest",
                "workload", "threads", "wall [ms]", "speedup"
            );
            for r in &rep.rows {
                println!(
                    "{:<8} {:>8} {:>12.2} {:>8.2}x  {}",
                    r.workload, r.threads, r.wall_ms, r.speedup, r.digest
                );
            }
        }
    }
    if want("symscale") {
        println!(
            "\n############ E17 — symbolic vs enumerative equivalence checking (extension) ############"
        );
        let rep = symscale(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rep).unwrap());
        } else {
            println!("host cores: {}", rep.host_cores);
            println!(
                "{:<8} {:>9} {:>9} {:>10} {:>9} {:>8} {:>8} {:>8}  verdict / digest",
                "workload",
                "log2|D|",
                "enum[ms]",
                "sym[ms]",
                "speedup",
                "atoms_l",
                "atoms_r",
                "pairs"
            );
            for r in &rep.rows {
                println!(
                    "{:<8} {:>9.1} {:>9} {:>10.2} {:>9} {:>8} {:>8} {:>8}  {} / {}",
                    r.workload,
                    r.product_log2,
                    r.enum_ms
                        .map(|m| format!("{m:.2}"))
                        .unwrap_or_else(|| "infeasible".into()),
                    r.sym_ms,
                    r.speedup
                        .map(|s| format!("{s:.1}x"))
                        .unwrap_or_else(|| "-".into()),
                    r.atoms_left,
                    r.atoms_right,
                    r.pairs,
                    r.verdict,
                    r.digest
                );
            }
        }
    }
    if want("ddscale") {
        println!(
            "\n############ E21 — cube covers vs hash-consed decision diagrams (extension) ############"
        );
        let rep = ddscale(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rep).unwrap());
        } else {
            println!("host cores: {}", rep.host_cores);
            println!(
                "{:<8} {:>9} {:>6} {:>17} {:>9} {:>9} {:>9} {:>9}  verdict / digest",
                "workload",
                "log2|D|",
                "bits",
                "cube status",
                "atoms",
                "cube[ms]",
                "nodes",
                "dd[ms]"
            );
            for r in &rep.rows {
                let atoms = match (r.cube_atoms_left, r.cube_atoms_right) {
                    (Some(a), Some(b)) => format!("{a}+{b}"),
                    _ => "-".into(),
                };
                println!(
                    "{:<8} {:>9.1} {:>6} {:>17} {:>9} {:>9} {:>9} {:>9.3}  {} / {}",
                    r.workload,
                    r.product_log2,
                    r.joint_bits,
                    r.cube_status,
                    atoms,
                    r.cube_ms
                        .map(|m| format!("{m:.2}"))
                        .unwrap_or_else(|| "-".into()),
                    r.dd_nodes,
                    r.dd_ms,
                    r.verdict,
                    r.digest
                );
            }
            println!(
                "{:<10} {:>12} {:>9} {:>10} {:>7}  digest",
                "lint", "cube_unk", "cube_dead", "dd_unk", "dd_dead"
            );
            for r in &rep.lint {
                println!(
                    "{:<10} {:>12} {:>9} {:>10} {:>7}  {}",
                    r.workload, r.cube_unknown, r.cube_dead, r.dd_unknown, r.dd_dead, r.digest
                );
            }
        }
    }
    if want("churnverify") {
        println!(
            "\n############ E22 — incremental re-verification under churn (extension) ############"
        );
        let rep = churnverify(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rep).unwrap());
        } else {
            println!("host cores: {}", rep.host_cores);
            println!(
                "{:<14} {:<5} {:>7} {:>8} {:>6} {:>10} {:>12} {:>11} {:>9} {:>7} {:>6}  digest",
                "workload",
                "bknd",
                "rate/s",
                "entries",
                "mods",
                "full[ms]",
                "incr[us]",
                "max[us]",
                "speedup",
                "atoms",
                "delta"
            );
            for r in &rep.rows {
                println!(
                    "{:<14} {:<5} {:>7.0} {:>8} {:>6} {:>10.3} {:>12.2} {:>11.2} {:>8.0}x {:>7} {:>6}  {}",
                    r.workload,
                    r.backend,
                    r.rate_per_sec,
                    r.entries,
                    r.mods,
                    r.full_ms,
                    r.incr_mean_us,
                    r.incr_max_us,
                    r.speedup,
                    r.atoms_rechecked,
                    r.delta_mods,
                    r.digest
                );
            }
        }
    }
    if want("phases") {
        println!(
            "\n############ E18 — phase attribution from span traces (extension) ############"
        );
        let rep = phases(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rep).unwrap());
        } else {
            for w in &rep.workloads {
                println!(
                    "{} — wall {:.2} ms, coverage {:.1}%, {} events{}",
                    w.workload,
                    w.wall_ms,
                    w.coverage * 100.0,
                    w.events,
                    if w.dropped > 0 {
                        format!(", {} dropped", w.dropped)
                    } else {
                        String::new()
                    }
                );
                // Top phases by self time; the full attribution is in --json.
                let mut by_self: Vec<_> = w.phases.iter().collect();
                by_self.sort_by(|a, b| b.self_ms.total_cmp(&a.self_ms));
                println!(
                    "  {:<44} {:>7} {:>11} {:>10} {:>7}",
                    "phase", "count", "total [ms]", "self [ms]", "share"
                );
                for p in by_self.iter().take(8) {
                    println!(
                        "  {:<44} {:>7} {:>11.2} {:>10.2} {:>6.1}%",
                        p.path,
                        p.count,
                        p.total_ms,
                        p.self_ms,
                        p.share * 100.0
                    );
                }
            }
        }
    }
    if want("mpps") {
        println!(
            "\n############ E20 — Mpps-scale replay: interp vs compiled vs cached (extension) ############"
        );
        let rep = mpps(&args.cfg, &[1_024, 65_536, 1_048_576]);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rep).unwrap());
        } else {
            println!(
                "packets/run: {}   zipf: {}   workers: {}",
                rep.packets, rep.zipf, rep.workers
            );
            println!(
                "{:<10} {:>9} {:<9} {:>9} {:>11} {:>13} {:>9} {:>7}  digest",
                "repr",
                "flows",
                "engine",
                "distinct",
                "wall Mpps",
                "modeled Mpps",
                "hit rate",
                "drops"
            );
            for r in &rep.rows {
                println!(
                    "{:<10} {:>9} {:<9} {:>9} {:>11.2} {:>13.2} {:>9.4} {:>7}  {}",
                    r.repr,
                    r.flows,
                    r.engine,
                    r.distinct_flows,
                    r.wall_mpps,
                    r.modeled_mpps,
                    r.hit_rate,
                    r.dropped,
                    r.digest
                );
            }
        }
    }
    if want("lint") {
        println!(
            "\n############ E16 — static analysis of the paper workloads (extension) ############"
        );
        let rows = lint_workloads(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            println!(
                "{:<12} {:>7} {:>7} {:>6} {:>6}  lints",
                "workload", "tables", "errors", "warns", "infos"
            );
            for r in &rows {
                println!(
                    "{:<12} {:>7} {:>7} {:>6} {:>6}  {}",
                    r.workload,
                    r.tables,
                    r.errors,
                    r.warns,
                    r.infos,
                    r.lints.join(", ")
                );
            }
        }
    }
    if want("templates") {
        println!("\n############ E11 — ESwitch template selection ############");
        let rows = eswitch_templates(&args.cfg);
        if args.json {
            println!("{}", serde_json::to_string_pretty(&rows).unwrap());
        } else {
            for r in &rows {
                println!("{:<10} {}", r.repr, r.templates.join(", "));
            }
        }
    }

    if let Some(path) = &args.trace {
        let data = mapro_obs::trace::stop();
        let summary = data.summary();
        if let Err(e) = std::fs::write(path, data.to_chrome_json()) {
            eprintln!("repro: cannot write trace to {path}: {e}");
            std::process::exit(1);
        }
        eprint!("{}", summary.to_text());
        eprintln!(
            "trace written to {path} ({} events, {:.1}% of wall covered)",
            data.events.len(),
            summary.coverage() * 100.0
        );
    }

    if let Some(sink) = &args.metrics {
        let report = mapro_obs::registry()
            .snapshot()
            .with_meta("experiment", &args.experiment)
            .with_meta("seed", args.cfg.seed)
            .with_meta("threads", mapro_par::configured_threads())
            .with_meta("version", env!("CARGO_PKG_VERSION"));
        match sink {
            MetricsSink::Stderr => eprint!("{}", report.to_text()),
            MetricsSink::File(path) => {
                if let Err(e) = std::fs::write(path, report.to_json()) {
                    eprintln!("repro: cannot write metrics to {path}: {e}");
                    std::process::exit(1);
                }
                eprintln!("metrics written to {path}");
            }
        }
    }
}

/// Exit quietly when stdout closes early (`repro | head`): Rust maps
/// SIGPIPE to an io panic; treat that as a normal end of output.
fn install_pipe_hook() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or_else(|| info.payload().downcast_ref::<&str>().copied().unwrap_or(""));
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        default(info);
    }));
}
