//! `mapro` — the command-line front end to the normalization toolkit.
//!
//! Programs are JSON-serialized [`mapro_core::Pipeline`]s (produce samples
//! with `mapro demo`). Subcommands:
//!
//! ```text
//! mapro demo <fig1|gwlb|l3|vlan|sdx|enterprise|deep> [--services N --backends M --seed S] [--mat]
//! mapro convert <prog.json|prog.mat> [--mat]     # JSON ↔ text format
//! mapro show <prog.json>                          # paper-figure rendering
//! mapro analyze <prog.json>                       # per-table NF report
//! mapro lint <prog.json> [--format text|json] [--backend cube|dd|auto]
//!            [--deny warn] [-A|-W|-D <lint-id>]...
//! mapro normalize <prog.json> [--join goto|metadata|rematch] [--target 2nf|3nf|bcnf] [--verify]
//! mapro flatten <prog.json>                       # denormalize to one table
//! mapro check <a.json> <b.json> [--mode auto|symbolic|enumerate] [--backend cube|dd|auto]
//! mapro replay <prog.json> [--packets N --flows F --seed S --shards N]
//!              [--switch ovs|eswitch|lagopus|noviflow]
//!              [--engine interp|compiled|cached]
//! mapro export <prog.json> --format openflow|p4   # data-plane program text
//! ```
//!
//! `mapro lint` runs the static analyzer (`mapro-lint`): the report goes
//! to stdout as text or JSON; the exit code is 0 when clean of
//! error-severity findings, 1 otherwise. `-A <id>` drops a lint, `-W <id>`
//! demotes it to warn, `-D <id>` promotes it to error, `--deny warn`
//! promotes every warn (the CI gate). Usage errors — unknown lint ids
//! included — exit 2.
//!
//! Transformation commands print the resulting program JSON to stdout (so
//! they compose with shell pipes); human-readable reports go to stderr.
//!
//! Every subcommand also accepts `--metrics [out.json]`: after the command
//! completes, the observability registry is dumped as JSON to the given
//! file, or as a text table to stderr when no path follows.
//!
//! Every subcommand also accepts `--threads N`, sizing the work-stealing
//! pool used by equivalence checking and FD mining (precedence:
//! `--threads` > `MAPRO_THREADS` > available cores). Output is
//! byte-identical at any thread count.
//!
//! Every subcommand also accepts `--trace out.json`: a span-trace session
//! (see `mapro_obs::trace`) wraps the whole command and the collected
//! events are written as Chrome trace-event JSON — loadable in
//! `ui.perfetto.dev` or `chrome://tracing` — with a phase-attribution
//! summary on stderr. `mapro check --mode symbolic --trace t.json a b`
//! shows where the symbolic engine spends its time; `mapro replay` traces
//! per-shard switch evaluation.

use mapro_core::{display, export, Pipeline};
use mapro_normalize::{flatten, normalize, JoinKind, NormalizeOpts, Target};
use std::io::Write as _;
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: mapro <demo|convert|show|analyze|lint|normalize|flatten|check|replay|export> [args]"
    );
    exit(2)
}

/// Report a usage error on one line and exit 2 (the contract `tests/cli.rs`
/// pins down for every malformed invocation).
fn usage_error(msg: impl std::fmt::Display) -> ! {
    eprintln!("mapro: {msg}");
    exit(2)
}

fn parse_backend(flag: &Option<String>) -> mapro_sym::CoverBackend {
    match flag.as_deref() {
        None => mapro_sym::CoverBackend::default(),
        Some(s) => mapro_sym::CoverBackend::parse(s)
            .unwrap_or_else(|| usage_error(format_args!("unknown backend {s:?} (cube|dd|auto)"))),
    }
}

fn load(path: &str) -> Pipeline {
    let data = std::fs::read_to_string(path).unwrap_or_else(|e| {
        eprintln!("cannot read {path}: {e}");
        exit(1)
    });
    if path.ends_with(".mat") {
        mapro_core::parse_program(&data).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            exit(1)
        })
    } else {
        serde_json::from_str(&data).unwrap_or_else(|e| {
            eprintln!("cannot parse {path}: {e}");
            exit(1)
        })
    }
}

fn emit(p: &Pipeline) {
    let json = serde_json::to_string_pretty(p).expect("serializes");
    let mut stdout = std::io::stdout().lock();
    let _ = writeln!(stdout, "{json}");
}

fn main() {
    install_pipe_hook();
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else { usage() };
    let flag = |name: &str| -> Option<String> {
        args.iter()
            .position(|a| a == name)
            .and_then(|i| args.get(i + 1).cloned())
    };
    let has = |name: &str| args.iter().any(|a| a == name);
    // Collect the value after *every* occurrence of a repeatable flag
    // (`-A x -A y`); a trailing occurrence with no value is a usage error.
    let multi = |name: &str| -> Vec<String> {
        args.iter()
            .enumerate()
            .filter(|(_, a)| a.as_str() == name)
            .map(|(i, _)| {
                args.get(i + 1)
                    .cloned()
                    .unwrap_or_else(|| usage_error(format_args!("missing value for {name}")))
            })
            .collect()
    };
    // `--metrics` takes an optional path: Some(None) = text to stderr,
    // Some(Some(path)) = JSON file.
    let metrics: Option<Option<String>> = args
        .iter()
        .position(|a| a == "--metrics")
        .map(|i| args.get(i + 1).filter(|v| !v.starts_with('-')).cloned());

    // Pool sizing: --threads beats MAPRO_THREADS beats auto-detection. A
    // malformed value in either place is a usage error, not a silent default.
    if has("--threads") {
        let Some(v) = flag("--threads") else {
            usage_error("missing value for --threads")
        };
        match mapro_par::parse_threads(&v) {
            Ok(n) => mapro_par::set_threads(n),
            Err(e) => usage_error(e),
        }
    } else if let Err(e) = mapro_par::env_threads() {
        usage_error(e)
    }

    // `--trace` wraps the whole command in a span-trace session; the
    // Chrome-format file is written after the subcommand finishes (even
    // when it fails with exit 1, so a failing check can be profiled).
    let trace_out: Option<String> = if has("--trace") {
        let Some(path) = flag("--trace") else {
            usage_error("missing value for --trace")
        };
        if !mapro_obs::trace::start(&mapro_obs::trace::TraceConfig::default()) {
            usage_error("a trace session is already active");
        }
        Some(path)
    } else {
        None
    };

    let mut exit_code = 0;
    match cmd.as_str() {
        "demo" => {
            let which = args.get(1).map(String::as_str).unwrap_or("fig1");
            let p = match which {
                "fig1" => mapro_workloads::Gwlb::fig1().universal,
                "gwlb" => {
                    let n = flag("--services")
                        .and_then(|v| v.parse().ok())
                        .unwrap_or(20);
                    let m = flag("--backends").and_then(|v| v.parse().ok()).unwrap_or(8);
                    let s = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(2019);
                    mapro_workloads::Gwlb::random(n, m, s).universal
                }
                "l3" => mapro_workloads::L3::fig2().universal,
                "vlan" => mapro_workloads::Vlan::fig3().universal,
                "sdx" => mapro_workloads::Sdx::fig5().universal,
                "enterprise" => {
                    let n = flag("--hosts").and_then(|v| v.parse().ok()).unwrap_or(24);
                    let racks = flag("--racks").and_then(|v| v.parse().ok()).unwrap_or(4);
                    let s = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(2019);
                    mapro_workloads::Enterprise::random(n, racks, s).pipeline
                }
                "deep" => {
                    // The E21 deep-overlap workload: a planted dead entry
                    // only decidable by union reasoning past the cube
                    // engine's budget (tests/golden/deep_overlap.json).
                    let s = flag("--seed").and_then(|v| v.parse().ok()).unwrap_or(2019);
                    mapro_bench::deep_overlap(mapro_bench::DEEP_ROWS, s)
                }
                other => {
                    usage_error(format_args!(
                        "unknown demo {other:?} (fig1|gwlb|l3|vlan|sdx|enterprise|deep)"
                    ));
                }
            };
            if has("--mat") {
                print!("{}", mapro_core::format_program(&p));
            } else {
                emit(&p);
            }
        }
        "convert" => {
            // json ↔ mat, by the *output* flag.
            let p = load(args.get(1).unwrap_or_else(|| usage()));
            if has("--mat") {
                print!("{}", mapro_core::format_program(&p));
            } else {
                emit(&p);
            }
        }
        "show" => {
            let p = load(args.get(1).unwrap_or_else(|| usage()));
            print!("{}", display::render_pipeline(&p));
        }
        "analyze" => {
            let p = load(args.get(1).unwrap_or_else(|| usage()));
            for (name, rep) in mapro_normalize::report(&p) {
                println!("table {name}: {}", rep.level);
                for key in &rep.keys {
                    let names: Vec<_> = rep
                        .fds
                        .universe
                        .decode(*key)
                        .into_iter()
                        .map(|a| p.catalog.name(a).to_owned())
                        .collect();
                    println!("  key: ({})", names.join(", "));
                }
                for fd in &rep.transitive_deps {
                    println!(
                        "  3NF violation: {}",
                        rep.fds.display_fd(*fd, |a| p.catalog.name(a).to_owned())
                    );
                }
                for issue in &rep.first_issues {
                    println!("  1NF issue: {issue:?}");
                }
            }
        }
        "lint" => {
            let p = load(args.get(1).unwrap_or_else(|| usage()));
            let json = match flag("--format").as_deref() {
                None | Some("text") => false,
                Some("json") => true,
                Some(f) => usage_error(format_args!("unknown format {f:?} (text|json)")),
            };
            let overrides = mapro_lint::Overrides {
                allow: multi("-A"),
                warn: multi("-W"),
                deny: multi("-D"),
                deny_warnings: match flag("--deny").as_deref() {
                    None => false,
                    Some("warn") => true,
                    Some(v) => usage_error(format_args!(
                        "unknown --deny level {v:?} (only `warn`; use -D <lint-id> for one lint)"
                    )),
                },
            };
            if let Some(id) = overrides.unknown_lint() {
                usage_error(format_args!("unknown lint {id:?}; known lints:{}", {
                    let mut s = String::new();
                    for l in mapro_lint::CATALOGUE {
                        s.push(' ');
                        s.push_str(l.id);
                    }
                    s
                }));
            }
            let backend = parse_backend(&flag("--backend"));
            let mut report = mapro_lint::lint(
                &p,
                &mapro_lint::LintConfig {
                    backend,
                    ..mapro_lint::LintConfig::default()
                },
            );
            report.apply(&overrides);
            if json {
                println!("{}", report.to_json());
            } else {
                print!("{}", report.to_text());
            }
            if report.has_errors() {
                exit_code = 1;
            }
        }
        "normalize" => {
            let p = load(args.get(1).unwrap_or_else(|| usage()));
            let join = match flag("--join").as_deref() {
                None | Some("metadata") => JoinKind::Metadata,
                Some("goto") => JoinKind::Goto,
                Some("rematch") => JoinKind::Rematch,
                Some(j) => usage_error(format_args!("unknown join {j:?} (goto|metadata|rematch)")),
            };
            let target = match flag("--target").as_deref() {
                None | Some("3nf") => Target::ThirdNf,
                Some("2nf") => Target::SecondNf,
                Some("bcnf") => Target::Bcnf,
                Some(t) => usage_error(format_args!("unknown target {t:?} (2nf|3nf|bcnf)")),
            };
            let opts = NormalizeOpts {
                join,
                target,
                verify: has("--verify"),
                ..Default::default()
            };
            let n = normalize(&p, &opts);
            eprintln!(
                "normalized: {} steps, reached {}, complete: {}",
                n.steps.len(),
                n.reached,
                n.complete()
            );
            for s in &n.steps {
                eprintln!(
                    "  decomposed {} along ({}) -> ({})",
                    s.table,
                    s.lhs.join(", "),
                    s.rhs.join(", ")
                );
            }
            for s in &n.skipped {
                eprintln!("  skipped {} ({}): {}", s.table, s.lhs.join(", "), s.reason);
            }
            emit(&n.pipeline);
        }
        "flatten" => {
            let p = load(args.get(1).unwrap_or_else(|| usage()));
            match flatten(&p, "flat") {
                Ok(t) => {
                    let flat = Pipeline::single(p.catalog.clone(), t);
                    eprintln!("flattened to {} entries", flat.total_entries());
                    emit(&flat);
                }
                Err(e) => {
                    eprintln!("cannot flatten: {e}");
                    exit(1)
                }
            }
        }
        "check" => {
            let a = load(args.get(1).unwrap_or_else(|| usage()));
            let b = load(args.get(2).unwrap_or_else(|| usage()));
            // Engine selection: the default Auto prefers the symbolic
            // cover engine and falls back to enumeration outside its
            // fragment; the method is always printed so a sampled verdict
            // is never mistaken for a proof.
            let mode = match flag("--mode").as_deref() {
                None | Some("auto") => mapro_core::EquivMode::Auto,
                Some("symbolic") => mapro_core::EquivMode::Symbolic,
                Some("enumerate") => mapro_core::EquivMode::Enumerate,
                Some(m) => {
                    usage_error(format_args!("unknown mode {m:?} (auto|symbolic|enumerate)"))
                }
            };
            let cfg = mapro_core::EquivConfig {
                mode,
                ..mapro_core::EquivConfig::default()
            };
            let sym_cfg = mapro_sym::SymConfig {
                backend: parse_backend(&flag("--backend")),
                ..mapro_sym::SymConfig::default()
            };
            match mapro_sym::check_equivalent_explain(&a, &b, &cfg, &sym_cfg) {
                Ok((
                    mapro_core::EquivOutcome::Equivalent {
                        packets_checked,
                        exhaustive,
                        method,
                    },
                    fallback,
                )) => {
                    println!(
                        "EQUIVALENT ({packets_checked} packets, exhaustive: {exhaustive}, method: {method})"
                    );
                    if let Some(fb) = fallback {
                        println!("  symbolic fallback ({}): {}", fb.cause, fb.detail);
                    }
                }
                Ok((mapro_core::EquivOutcome::Counterexample(cx), fallback)) => {
                    println!("NOT EQUIVALENT on packet {:?}", cx.fields);
                    println!("  left:  {:?}", cx.left.observable());
                    println!("  right: {:?}", cx.right.observable());
                    if let Some(fb) = fallback {
                        println!("  symbolic fallback ({}): {}", fb.cause, fb.detail);
                    }
                    exit_code = 1;
                }
                Err(e) => {
                    println!("NOT COMPARABLE: {e}");
                    exit_code = 1;
                }
            }
        }
        "replay" => {
            // Modeled switch replay of seeded traffic through a program:
            // derive the joint field domain, sample `--flows` distinct
            // flows from it, draw `--packets` arrivals, and shard them
            // across `--shards` modeled datapath threads.
            let path = args.get(1).unwrap_or_else(|| usage());
            let p = load(path);
            let parse_num = |name: &str, default: u64| -> u64 {
                match flag(name) {
                    None => default,
                    Some(v) => v.parse().unwrap_or_else(|_| {
                        usage_error(format_args!("bad value for {name}: {v:?}"))
                    }),
                }
            };
            let packets = parse_num("--packets", 10_000) as usize;
            let flows = (parse_num("--flows", 64) as usize).max(1);
            let seed = parse_num("--seed", 2019);
            let shards = (parse_num("--shards", 4) as usize).max(1);
            if packets == 0 {
                usage_error("--packets must be at least 1");
            }
            let domain = match mapro_core::Domain::from_pipelines(&[&p]) {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("cannot derive traffic domain for {path}: {e}");
                    exit(1)
                }
            };
            let proto = mapro_core::Packet::zero(&p.catalog);
            let flow_specs: Vec<mapro_packet::FlowSpec> = domain
                .sample(&proto, flows, seed)
                .into_iter()
                .map(|pkt| mapro_packet::FlowSpec {
                    fields: domain
                        .fields
                        .iter()
                        .map(|(attr, _)| (*attr, pkt.get(*attr)))
                        .collect(),
                    weight: 1,
                })
                .collect();
            let spec = mapro_packet::TraceSpec::uniform(flow_specs);
            let trace = mapro_packet::generate(&p.catalog, &spec, packets, seed);
            // Execution tier: `interp` walks the `--switch` model's boxed
            // classifiers per packet; `compiled` runs the specialized
            // engine (ESwitch policy — same verdicts and modeled costs,
            // Mpps-scale wall clock); `cached` fronts it with the
            // cube-keyed megaflow cache. The tiers fix the ESwitch cost
            // model, so `--switch` only combines with `--engine interp`.
            let engine = flag("--engine").unwrap_or_else(|| "interp".to_owned());
            if engine != "interp" && has("--switch") {
                usage_error(format_args!(
                    "--engine {engine} fixes the eswitch model; drop --switch or use --engine interp"
                ));
            }
            let kind = match engine.as_str() {
                "interp" => flag("--switch").unwrap_or_else(|| "ovs".to_owned()),
                "compiled" | "cached" => engine.clone(),
                other => usage_error(format_args!(
                    "unknown engine {other:?} (interp|compiled|cached)"
                )),
            };
            // Compile once up front so a model rejection is a clean error,
            // then recompile per shard inside the factory (each modeled
            // datapath thread owns its classifiers).
            let factory: Box<dyn Fn() -> Box<dyn mapro_switch::Switch + Send> + Sync> = match kind
                .as_str()
            {
                "ovs" => {
                    let p = p.clone();
                    Box::new(move || Box::new(mapro_switch::OvsSim::compile(&p)))
                }
                "eswitch" => {
                    if let Err(e) = mapro_switch::EswitchSim::compile(&p) {
                        eprintln!("eswitch cannot model {path}: {e}");
                        exit(1)
                    }
                    let p = p.clone();
                    Box::new(move || {
                        Box::new(mapro_switch::EswitchSim::compile(&p).expect("checked above"))
                    })
                }
                "lagopus" => {
                    if let Err(e) = mapro_switch::LagopusSim::compile(&p) {
                        eprintln!("lagopus cannot model {path}: {e}");
                        exit(1)
                    }
                    let p = p.clone();
                    Box::new(move || {
                        Box::new(mapro_switch::LagopusSim::compile(&p).expect("checked above"))
                    })
                }
                "noviflow" => {
                    if let Err(e) = mapro_switch::NoviflowSim::compile(&p) {
                        eprintln!("noviflow cannot model {path}: {e}");
                        exit(1)
                    }
                    let p = p.clone();
                    Box::new(move || {
                        Box::new(mapro_switch::NoviflowSim::compile(&p).expect("checked above"))
                    })
                }
                "compiled" => {
                    if let Err(e) = mapro_switch::CompiledEngine::eswitch(&p) {
                        eprintln!("compiled tier cannot model {path}: {e}");
                        exit(1)
                    }
                    let p = p.clone();
                    Box::new(move || {
                        Box::new(mapro_switch::CompiledEngine::eswitch(&p).expect("checked above"))
                    })
                }
                "cached" => {
                    if let Err(e) = mapro_switch::CachedEngine::eswitch(&p) {
                        eprintln!("cached tier cannot model {path}: {e}");
                        exit(1)
                    }
                    let p = p.clone();
                    Box::new(move || {
                        Box::new(mapro_switch::CachedEngine::eswitch(&p).expect("checked above"))
                    })
                }
                other => usage_error(format_args!(
                    "unknown switch {other:?} (ovs|eswitch|lagopus|noviflow)"
                )),
            };
            let rep = mapro_switch::run_modeled_parallel(&*factory, &trace, shards);
            let digest = mapro_switch::replay_digest(&*factory, &trace, shards);
            println!(
                "replayed {} packets ({} flows, {} shards, {kind} model)",
                rep.packets,
                trace.distinct_flows(),
                shards
            );
            println!("  throughput:  {:.2} Mpps", rep.mpps);
            println!(
                "  latency us:  q1 {:.2} / q2 {:.2} / q3 {:.2}",
                rep.latency_us[0], rep.latency_us[1], rep.latency_us[2]
            );
            println!(
                "  avg lookups: {:.2}   dropped: {}   slow path: {}",
                rep.avg_lookups, rep.dropped, rep.slow_path
            );
            if kind == "cached" {
                let hit_rate = 1.0 - rep.slow_path as f64 / rep.packets as f64;
                println!("  megaflow:    {:.4} hit rate", hit_rate);
            }
            println!("  digest:      {digest:016x}");
        }
        "export" => {
            let p = load(args.get(1).unwrap_or_else(|| usage()));
            match flag("--format").as_deref() {
                Some("openflow") | None => print!("{}", export::to_openflow(&p)),
                Some("p4") => print!("{}", export::to_p4(&p)),
                Some(f) => usage_error(format_args!("unknown format {f:?} (openflow|p4)")),
            }
        }
        _ => usage(),
    }

    if let Some(path) = &trace_out {
        let data = mapro_obs::trace::stop();
        let summary = data.summary();
        if let Err(e) = std::fs::write(path, data.to_chrome_json()) {
            eprintln!("cannot write trace to {path}: {e}");
            exit(1);
        }
        eprint!("{}", summary.to_text());
        eprintln!(
            "trace written to {path} ({} events, {:.1}% of wall covered)",
            data.events.len(),
            summary.coverage() * 100.0
        );
    }
    if let Some(sink) = metrics {
        let mut report = mapro_obs::registry()
            .snapshot()
            .with_meta("experiment", cmd)
            .with_meta("threads", mapro_par::configured_threads())
            .with_meta("version", env!("CARGO_PKG_VERSION"));
        if let Some(seed) = flag("--seed") {
            report = report.with_meta("seed", seed);
        }
        match sink {
            None => eprint!("{}", report.to_text()),
            Some(path) => {
                if let Err(e) = std::fs::write(&path, report.to_json()) {
                    eprintln!("cannot write metrics to {path}: {e}");
                    exit(1);
                }
                eprintln!("metrics written to {path}");
            }
        }
    }
    if exit_code != 0 {
        exit(exit_code)
    }
}

/// Exit quietly when stdout closes early (`repro | head`): Rust maps
/// SIGPIPE to an io panic; treat that as a normal end of output.
fn install_pipe_hook() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or_else(|| info.payload().downcast_ref::<&str>().copied().unwrap_or(""));
        if msg.contains("Broken pipe") {
            std::process::exit(0);
        }
        default(info);
    }));
}
