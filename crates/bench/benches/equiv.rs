//! E17 — enumerative vs symbolic equivalence checking, head to head.
//!
//! Three pipeline sizes of the same shape (disjoint exact rows over wide
//! fields, checked against their priority-reversed reordering) straddle
//! the trade-off: the enumerative engine's cost follows the representative
//! domain product (~(2k)^f packets), the symbolic engine's cost follows
//! the atom count (~k·f·w cubes). Small fields keep enumeration cheap;
//! adding fields inflates the product exponentially while the covers grow
//! linearly — which is the whole point of the atom-based engine.

use criterion::{criterion_group, criterion_main, Criterion};
use mapro_core::{ActionSem, Catalog, EquivConfig, EquivMode, Pipeline, Table, Value};
use mapro_sym::SymConfig;

/// `rows` disjoint exact entries over `fields` 16-bit columns; reversed
/// priority order on demand (still equivalent — rows are disjoint).
fn wide(fields: usize, nrows: u64, reversed: bool) -> Pipeline {
    let mut c = Catalog::new();
    let fs: Vec<_> = (0..fields).map(|i| c.field(format!("w{i}"), 16)).collect();
    let out = c.action("out", ActionSem::Output);
    let mut s = 2019u64;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let mut rows: Vec<(Vec<Value>, Vec<Value>)> = (0..nrows)
        .map(|r| {
            let m: Vec<Value> = (0..fields).map(|_| Value::Int(rng() & 0xffff)).collect();
            (m, vec![Value::sym(format!("p{r}"))])
        })
        .collect();
    if reversed {
        rows.reverse();
    }
    let mut t = Table::new("wide", fs, vec![out]);
    for (m, a) in rows {
        t.row(m, a);
    }
    Pipeline::single(c, t)
}

fn bench_equiv(c: &mut Criterion) {
    let enum_cfg = EquivConfig {
        mode: EquivMode::Enumerate,
        ..EquivConfig::default()
    };
    // (label, fields, rows): representative product ≈ (2·rows)^fields.
    let sizes: [(&str, usize, u64); 3] = [("2f", 2, 8), ("3f", 3, 10), ("4f", 4, 12)];

    let mut group = c.benchmark_group("equiv");
    for (label, fields, rows) in sizes {
        let l = wide(fields, rows, false);
        let r = wide(fields, rows, true);
        group.bench_function(format!("enumerative_{label}"), |b| {
            b.iter(|| {
                let out = mapro_core::check_equivalent(&l, &r, &enum_cfg).expect("checks");
                assert!(std::hint::black_box(out).is_equivalent());
            });
        });
        group.bench_function(format!("symbolic_{label}"), |b| {
            b.iter(|| {
                let out = mapro_sym::check_symbolic(&l, &r, &SymConfig::default()).expect("checks");
                assert!(std::hint::black_box(out).is_equivalent());
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_equiv);
criterion_main!(benches);
