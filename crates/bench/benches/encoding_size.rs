//! E6 — §2 encoding sizes: regeneration of the 4MN vs N(3+2M) comparison
//! and the cost of the size accounting itself on large pipelines.

use criterion::{criterion_group, criterion_main, Criterion};
use mapro_bench::encoding_sizes;
use mapro_core::SizeReport;
use mapro_normalize::JoinKind;
use mapro_workloads::Gwlb;

fn bench_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("encoding_size");
    group.bench_function("sweep", |b| {
        b.iter(|| std::hint::black_box(encoding_sizes(&[5, 10, 20], &[2, 4, 8], 2019)));
    });
    let g = Gwlb::random(64, 16, 7);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    group.bench_function("size_report/universal_1024_rows", |b| {
        b.iter(|| std::hint::black_box(SizeReport::of(&g.universal)));
    });
    group.bench_function("size_report/goto_65_tables", |b| {
        b.iter(|| std::hint::black_box(SizeReport::of(&goto)));
    });
    group.finish();
}

criterion_group!(benches, bench_sizes);
criterion_main!(benches);
