//! E5 — Table 1 (static performance), wall-clock mode.
//!
//! The `repro` binary regenerates the table from the deterministic cost
//! model; this bench corroborates the *ordering* by timing the real
//! classifier data structures: the universal GWLB table on the
//! specializing datapath (one 160-entry linear ternary scan) versus the
//! goto-decomposed pipeline (hash + LPM trie), plus the cache-dominated
//! OVS model and the TSS Lagopus model.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mapro_bench::BenchConfig;
use mapro_normalize::JoinKind;
use mapro_packet::generate;
use mapro_switch::{EswitchSim, LagopusSim, NoviflowSim, OvsSim, Switch};
use mapro_workloads::Gwlb;

fn bench_table1(c: &mut Criterion) {
    let cfg = BenchConfig {
        packets: 4096,
        ..Default::default()
    };
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    let trace = generate(&g.universal.catalog, &g.trace_spec(), cfg.packets, cfg.seed);

    let mut group = c.benchmark_group("table1");
    for (repr_name, repr) in [("universal", &g.universal), ("goto", &goto)] {
        group.bench_function(format!("eswitch/{repr_name}"), |b| {
            let mut sim = EswitchSim::compile(repr).expect("compiles");
            let mut i = 0usize;
            b.iter(|| {
                let (_, pkt) = &trace.packets[i % trace.len()];
                i += 1;
                std::hint::black_box(sim.process(pkt));
            });
        });
        group.bench_function(format!("lagopus/{repr_name}"), |b| {
            let mut sim = LagopusSim::compile(repr).expect("compiles");
            let mut i = 0usize;
            b.iter(|| {
                let (_, pkt) = &trace.packets[i % trace.len()];
                i += 1;
                std::hint::black_box(sim.process(pkt));
            });
        });
        group.bench_function(format!("noviflow/{repr_name}"), |b| {
            let mut sim = NoviflowSim::compile(repr).expect("compiles");
            let mut i = 0usize;
            b.iter(|| {
                let (_, pkt) = &trace.packets[i % trace.len()];
                i += 1;
                std::hint::black_box(sim.process(pkt));
            });
        });
        group.bench_function(format!("ovs_warm/{repr_name}"), |b| {
            let mut sim = OvsSim::compile(repr);
            for (_, pkt) in &trace.packets {
                sim.process(pkt); // warm the megaflow cache
            }
            let mut i = 0usize;
            b.iter(|| {
                let (_, pkt) = &trace.packets[i % trace.len()];
                i += 1;
                std::hint::black_box(sim.process(pkt));
            });
        });
    }
    // The slow path, for contrast: a cold OVS cache per iteration batch.
    group.bench_function("ovs_cold/universal", |b| {
        b.iter_batched(
            || OvsSim::compile(&g.universal),
            |mut sim| {
                for (_, pkt) in trace.packets.iter().take(64) {
                    std::hint::black_box(sim.process(pkt));
                }
            },
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
