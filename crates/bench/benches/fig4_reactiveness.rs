//! E4 — Fig. 4 (reactiveness), regeneration and control-path costs.
//!
//! Benchmarks the full figure regeneration (churn sweep over the update
//! rates), the per-intent plan compilation against both representations,
//! and the cost of actually applying plans to pipeline state — the
//! control-plane work whose 8× amplification drives the figure.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use mapro_bench::{fig4, BenchConfig};
use mapro_control::apply_plan;
use mapro_normalize::JoinKind;
use mapro_workloads::Gwlb;

fn bench_fig4(c: &mut Criterion) {
    let cfg = BenchConfig::default();
    let rates: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
    let mut group = c.benchmark_group("fig4");
    group.bench_function("sweep", |b| {
        b.iter(|| std::hint::black_box(fig4(&cfg, &rates)));
    });

    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    group.bench_function("compile_intent/universal", |b| {
        b.iter(|| std::hint::black_box(g.move_service_port(&g.universal, 3, 4443)));
    });
    group.bench_function("compile_intent/goto", |b| {
        b.iter(|| std::hint::black_box(g.move_service_port(&goto, 3, 4443)));
    });

    let uni_plan = g.move_service_port(&g.universal, 3, 4443);
    let goto_plan = g.move_service_port(&goto, 3, 4443);
    group.bench_function("apply_plan/universal_8mods", |b| {
        b.iter_batched(
            || g.universal.clone(),
            |mut p| apply_plan(&mut p, &uni_plan).expect("applies"),
            BatchSize::SmallInput,
        );
    });
    group.bench_function("apply_plan/goto_1mod", |b| {
        b.iter_batched(
            || goto.clone(),
            |mut p| apply_plan(&mut p, &goto_plan).expect("applies"),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
