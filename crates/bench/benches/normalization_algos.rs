//! Algorithmic cost of the normalization stack itself: FD mining,
//! candidate-key enumeration, decomposition, full 3NF synthesis,
//! denormalization (flatten), and the complete equivalence check —
//! the compile-time budget a controller would pay to normalize.

use criterion::{criterion_group, criterion_main, Criterion};
use mapro_core::{check_equivalent, EquivConfig};
use mapro_fd::mine_fds;
use mapro_normalize::{decompose, flatten, normalize, DecomposeOpts, NormalizeOpts};
use mapro_workloads::{Gwlb, L3};

fn bench_algos(c: &mut Criterion) {
    let g = Gwlb::random(20, 8, 2019);
    let table = g.universal.table("t0").expect("t0");
    let mut group = c.benchmark_group("normalize");

    group.bench_function("mine_fds/gwlb_160_rows", |b| {
        b.iter(|| std::hint::black_box(mine_fds(table, &g.universal.catalog)));
    });
    group.bench_function("candidate_keys/gwlb", |b| {
        let mined = mine_fds(table, &g.universal.catalog);
        b.iter(|| std::hint::black_box(mined.fds.candidate_keys()));
    });
    group.bench_function("decompose/gwlb_metadata", |b| {
        b.iter(|| {
            std::hint::black_box(
                decompose(
                    &g.universal,
                    "t0",
                    &[g.ip_dst],
                    &[g.tcp_dst],
                    &DecomposeOpts::default(),
                )
                .expect("decomposes"),
            )
        });
    });
    group.bench_function("normalize_3nf/gwlb", |b| {
        b.iter(|| std::hint::black_box(normalize(&g.universal, &NormalizeOpts::default())));
    });
    let l3 = L3::random(64, 8, 4, 7);
    group.bench_function("normalize_3nf/l3_64_routes", |b| {
        b.iter(|| std::hint::black_box(normalize(&l3.universal, &NormalizeOpts::default())));
    });
    let goto = g
        .normalized(mapro_normalize::JoinKind::Goto)
        .expect("decomposes");
    group.bench_function("flatten/gwlb_goto", |b| {
        b.iter(|| std::hint::black_box(flatten(&goto, "flat").expect("flattens")));
    });
    let small = Gwlb::fig1();
    let small_goto = small
        .normalized(mapro_normalize::JoinKind::Goto)
        .expect("decomposes");
    group.bench_function("equiv_check/fig1_exhaustive", |b| {
        b.iter(|| {
            std::hint::black_box(
                check_equivalent(&small.universal, &small_goto, &EquivConfig::default())
                    .expect("checks"),
            )
        });
    });
    group.finish();
}

criterion_group!(benches, bench_algos);
criterion_main!(benches);
