//! E11 — classifier-template ablation (the §5 ESwitch mechanism).
//!
//! Times each template on the *same* GWLB content it would hold in each
//! representation: the universal table as a 160-rule linear ternary scan
//! vs TSS, and the decomposed stages as an exact hash (20 keys) plus an
//! LPM trie (8 prefixes). The wall-clock ordering (exact + lpm ≪ linear)
//! is the paper's explanation for ESwitch's Table 1 numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use mapro_classifier::{
    Classifier, DecisionTree, DtreeConfig, ExactTable, LinearTernary, LpmTrie, TableView,
    TupleSpace,
};
use mapro_normalize::JoinKind;
use mapro_packet::generate;
use mapro_workloads::Gwlb;

fn keys_for(
    pipeline: &mapro_core::Pipeline,
    table: &str,
    trace: &mapro_packet::Trace,
) -> Vec<Vec<u64>> {
    let t = pipeline.table(table).expect("table");
    trace
        .packets
        .iter()
        .map(|(_, pkt)| t.match_attrs.iter().map(|&a| pkt.get(a)).collect())
        .collect()
}

fn bench_classifiers(c: &mut Criterion) {
    let g = Gwlb::random(20, 8, 2019);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    let trace = generate(&g.universal.catalog, &g.trace_spec(), 4096, 2019);

    let uni_view = TableView::of(g.universal.table("t0").expect("t0"), &g.universal.catalog);
    let uni_keys = keys_for(&g.universal, "t0", &trace);
    let t0_view = TableView::of(goto.table("t0").expect("t0"), &goto.catalog);
    let t0_keys = keys_for(&goto, "t0", &trace);
    let sub_view = TableView::of(goto.table("t0_x1").expect("sub"), &goto.catalog);
    let sub_keys = keys_for(&goto, "t0_x1", &trace);

    let mut group = c.benchmark_group("classifier");
    let linear = LinearTernary::build(&uni_view);
    group.bench_function("linear_160_rules", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let k = &uni_keys[i % uni_keys.len()];
            i += 1;
            std::hint::black_box(linear.lookup(k));
        });
    });
    let tss = TupleSpace::build(&uni_view).expect("builds");
    group.bench_function("tss_160_rules", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let k = &uni_keys[i % uni_keys.len()];
            i += 1;
            std::hint::black_box(tss.lookup(k));
        });
    });
    let exact = ExactTable::build(&t0_view).expect("t0 is all-exact");
    group.bench_function("exact_20_keys", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let k = &t0_keys[i % t0_keys.len()];
            i += 1;
            std::hint::black_box(exact.lookup(k));
        });
    });
    let dtree = DecisionTree::build(&uni_view, DtreeConfig::default());
    group.bench_function("dtree_160_rules", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let k = &uni_keys[i % uni_keys.len()];
            i += 1;
            std::hint::black_box(dtree.lookup(k));
        });
    });
    let lpm = LpmTrie::build(&sub_view).expect("sub is LPM");
    group.bench_function("lpm_8_prefixes", |b| {
        let mut i = 0usize;
        b.iter(|| {
            let k = &sub_keys[i % sub_keys.len()];
            i += 1;
            std::hint::black_box(lpm.lookup(k));
        });
    });
    group.finish();
}

criterion_group!(benches, bench_classifiers);
criterion_main!(benches);
