//! Tracing overhead: the cost of instrumentation when no session is
//! active (the production default — one relaxed atomic load per probe)
//! versus with a live session collecting into the per-thread rings.
//!
//! The `off/*` numbers are the gate: instrumented hot paths must cost the
//! same as uninstrumented ones when `--trace` is not given. Compare
//! `off/symbolic_check` against `on/symbolic_check` to see the live
//! session's collection cost on a real workload (a few percent: one ring
//! push per span, no locks).

use criterion::{criterion_group, criterion_main, Criterion};
use mapro_core::{EquivConfig, EquivMode};
use mapro_normalize::JoinKind;
use mapro_obs::trace::{self, TraceConfig};
use mapro_workloads::Gwlb;

fn bench_probe(c: &mut Criterion) {
    let mut group = c.benchmark_group("trace_probe");
    // Session inactive: span() must degrade to a branch on one atomic.
    assert!(!trace::active());
    group.bench_function("off/span", |b| {
        b.iter(|| {
            let _sp = trace::span("probe");
        });
    });
    group.bench_function("off/span_kv", |b| {
        b.iter(|| {
            let _sp = trace::span_kv("probe", vec![("k", 7u64.into())]);
        });
    });
    group.bench_function("off/instant", |b| {
        b.iter(|| trace::instant_kv("tick", vec![("k", 7u64.into())]));
    });
    // Session active: one clock read + ring push per event.
    assert!(trace::start(&TraceConfig::default()));
    group.bench_function("on/span", |b| {
        b.iter(|| {
            let _sp = trace::span("probe");
        });
        // Keep the ring from skewing later iterations' drop accounting.
        let _ = trace::drain();
    });
    let _ = trace::stop();
    group.finish();
}

fn bench_workload(c: &mut Criterion) {
    let g = Gwlb::random(8, 4, 2019);
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    let cfg = EquivConfig {
        mode: EquivMode::Symbolic,
        ..EquivConfig::default()
    };
    let check = || {
        mapro_sym::check_equivalent_with(
            &g.universal,
            &goto,
            &cfg,
            &mapro_sym::SymConfig::default(),
        )
        .expect("comparable")
    };
    let mut group = c.benchmark_group("trace_workload");
    group.sample_size(20);
    assert!(!trace::active());
    group.bench_function("off/symbolic_check", |b| {
        b.iter(|| std::hint::black_box(check()));
    });
    assert!(trace::start(&TraceConfig::default()));
    group.bench_function("on/symbolic_check", |b| {
        b.iter(|| std::hint::black_box(check()));
        let _ = trace::drain();
    });
    let _ = trace::stop();
    group.finish();
}

criterion_group!(benches, bench_probe, bench_workload);
criterion_main!(benches);
