//! E21 — cube covers vs hash-consed decision diagrams, head to head.
//!
//! The same wide-table shape at 2/4/8/16 fields, checked by both symbolic
//! backends: the cube engine's cost follows the atom count and then the
//! *quadratic* cross-intersection, the DD engine's cost follows the node
//! count of the hash-consed diagram. Small tables favor the cube list's
//! constant factors; the crossover arrives as width (and with it residue
//! fragmentation) grows — by 16 fields the diagram wins by two orders of
//! magnitude. A third group pins the `Cube::subtract` scratch-buffer
//! rework: `subtract_into` reuses one pre-sized output vector across the
//! partition loop instead of allocating a fresh `Vec` per split.

use criterion::{criterion_group, criterion_main, Criterion};
use mapro_bench::wide_pair;
use mapro_core::Value;
use mapro_sym::{cube::Cube, CoverBackend, SymConfig};

fn backend_cfg(backend: CoverBackend) -> SymConfig {
    SymConfig {
        backend,
        ..SymConfig::default()
    }
}

fn bench_backends(c: &mut Criterion) {
    // (label, fields, rows): joint width = 16·fields bits.
    let sizes: [(&str, usize, u64); 4] =
        [("2f", 2, 8), ("4f", 4, 12), ("8f", 8, 24), ("16f", 16, 40)];

    let mut group = c.benchmark_group("dd_crossover");
    group.sample_size(10);
    for (label, fields, rows) in sizes {
        let (l, r) = wide_pair(fields, rows, 2019);
        group.bench_function(format!("cube_{label}"), |b| {
            b.iter(|| {
                let out = mapro_sym::check_symbolic(&l, &r, &backend_cfg(CoverBackend::Cube))
                    .expect("cube decides the wide pairs");
                assert!(std::hint::black_box(out).is_equivalent());
            });
        });
        group.bench_function(format!("dd_{label}"), |b| {
            b.iter(|| {
                let out = mapro_sym::check_symbolic(&l, &r, &backend_cfg(CoverBackend::Dd))
                    .expect("dd decides the wide pairs");
                assert!(std::hint::black_box(out).is_equivalent());
            });
        });
    }
    group.finish();
}

fn bench_subtract(c: &mut Criterion) {
    // The partition loop's hot shape: subtract many small-care cubes from
    // a wildcard region, accumulating residues. `subtract_into` is the
    // scratch-reuse entry point `table_partition` double-buffers through;
    // `subtract` is the allocating wrapper.
    let widths = [16u32, 16, 16, 16];
    let any = Cube::of(&[Value::Any, Value::Any, Value::Any, Value::Any], &widths)
        .expect("wildcard cube");
    let mut s = 2019u64;
    let mut rng = move || {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        s
    };
    let cubes: Vec<Cube> = (0..64)
        .map(|_| {
            let m: Vec<Value> = (0..4)
                .map(|_| Value::Ternary {
                    bits: rng() & 0xffff,
                    mask: rng() & 0xffff,
                })
                .collect();
            Cube::of(&m, &widths).expect("ternary cube")
        })
        .collect();

    let mut group = c.benchmark_group("cube_subtract");
    group.bench_function("alloc_per_split", |b| {
        b.iter(|| {
            let mut total = 0usize;
            for sub in &cubes {
                total += std::hint::black_box(any.subtract(sub)).len();
            }
            total
        });
    });
    group.bench_function("scratch_reuse", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut total = 0usize;
            for sub in &cubes {
                out.clear();
                any.subtract_into(sub, &mut out);
                total += std::hint::black_box(&out).len();
            }
            total
        });
    });
    group.finish();
}

criterion_group!(benches, bench_backends, bench_subtract);
criterion_main!(benches);
