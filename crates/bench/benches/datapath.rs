//! E20 corroboration — wall-clock microbenchmark of the three replay
//! engines on goto chains of 2, 3 and 4 tables.
//!
//! The modeled Mpps numbers in `BENCH_mpps.json` come from the cost
//! model; this bench times the real data structures: the interpreter's
//! boxed per-table classifiers, the compiled tier's monomorphic
//! dispatch, and the megaflow cache's single masked-tuple probe. The
//! expected ordering — and the crossover recorded in EXPERIMENTS.md —
//! is interp < compiled < cached(warm), with the compiled tier's edge
//! growing with pipeline depth (it amortizes per-table dispatch) and
//! the cache's edge independent of depth (one probe regardless).

use criterion::{criterion_group, criterion_main, Criterion};
use mapro_core::{ActionSem, Catalog, Packet, Pipeline, Table, Value};
use mapro_packet::{generate, FlowSpec, Popularity, TraceSpec};
use mapro_switch::{CachedEngine, CompiledEngine, EswitchSim, Switch};

const ROWS: u64 = 64;

/// A goto chain of `n` exact-match tables: `t0 → t1 → … → t(n-1) → out`.
/// Every table matches its own field over `ROWS` values, so depth is the
/// only variable between pipelines.
fn chain(n: usize) -> Pipeline {
    let mut c = Catalog::new();
    let fields: Vec<_> = (0..n).map(|i| c.field(format!("f{i}"), 16)).collect();
    let goto = c.action("goto", ActionSem::Goto);
    let out = c.action("out", ActionSem::Output);
    let mut tables = Vec::with_capacity(n);
    for (i, &f) in fields.iter().enumerate() {
        let last = i == n - 1;
        let mut t = Table::new(
            format!("t{i}"),
            vec![f],
            vec![if last { out } else { goto }],
        );
        for v in 0..ROWS {
            let act = if last {
                Value::sym(format!("p{v}"))
            } else {
                Value::sym(format!("t{}", i + 1))
            };
            t.row(vec![Value::Int(v)], vec![act]);
        }
        tables.push(t);
    }
    Pipeline::new(c, tables, "t0")
}

/// Zipf traffic over flows that walk the whole chain.
fn traffic(p: &Pipeline, n: usize) -> Vec<Packet> {
    let fields: Vec<_> = (0..n)
        .map(|i| p.catalog.lookup(&format!("f{i}")).expect("field exists"))
        .collect();
    let flows = (0..256u64)
        .map(|k| FlowSpec {
            fields: fields.iter().map(|&f| (f, k % ROWS)).collect(),
            weight: 1,
        })
        .collect();
    let spec = TraceSpec {
        flows,
        popularity: Popularity::Zipf(1.1),
    };
    generate(&p.catalog, &spec, 4096, 2019)
        .packets
        .into_iter()
        .map(|(_, pkt)| pkt)
        .collect()
}

fn bench_datapath(c: &mut Criterion) {
    let mut group = c.benchmark_group("datapath");
    for n in [2usize, 3, 4] {
        let p = chain(n);
        let pkts = traffic(&p, n);

        group.bench_function(format!("interp/{n}tables"), |b| {
            let mut sim = EswitchSim::compile(&p).expect("compiles");
            let mut i = 0usize;
            b.iter(|| {
                let pkt = &pkts[i % pkts.len()];
                i += 1;
                std::hint::black_box(sim.process(pkt));
            });
        });
        group.bench_function(format!("compiled/{n}tables"), |b| {
            let mut sim = CompiledEngine::eswitch(&p).expect("compiles");
            let mut i = 0usize;
            b.iter(|| {
                let pkt = &pkts[i % pkts.len()];
                i += 1;
                std::hint::black_box(sim.process(pkt));
            });
        });
        group.bench_function(format!("cached/{n}tables"), |b| {
            let mut sim = CachedEngine::eswitch(&p).expect("compiles");
            for pkt in &pkts {
                sim.process(pkt); // warm the megaflow cache
            }
            let mut i = 0usize;
            b.iter(|| {
                let pkt = &pkts[i % pkts.len()];
                i += 1;
                std::hint::black_box(sim.process(pkt));
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_datapath);
criterion_main!(benches);
