//! Ternary-cube cover algebra over whole entries.
//!
//! An entry's match row is a *cube*: one canonical ternary `(bits, mask)`
//! per match column (see `Value::as_ternary`). Shadowing is single-cube
//! subsumption; dead-entry detection asks whether a cube is covered by the
//! *union* of the cubes above it, decided exactly by the classic recursive
//! cover check (split the cube along one care bit of an intersecting
//! earlier cube, recurse on the residue). The split fan-out is bounded by
//! a budget; an exhausted budget means "unknown", never a false positive.

use mapro_core::Value;

/// One column of a cube: matches `v` iff `v & mask == bits`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Tern {
    /// Cared-for bit values (always a subset of `mask`).
    pub bits: u64,
    /// Care mask, trimmed to the column width.
    pub mask: u64,
}

/// A conjunction of per-column ternary predicates — the packet set of one
/// entry. `None` cells (symbolic "predicates", which match nothing) make
/// the whole cube unsatisfiable; such entries are reported separately and
/// never enter the cover computation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cube(pub Vec<Tern>);

impl Cube {
    /// Build from an entry's match cells; `None` when any cell is
    /// unsatisfiable (a symbolic value in a match column).
    pub fn of(matches: &[Value], widths: &[u32]) -> Option<Cube> {
        debug_assert_eq!(matches.len(), widths.len());
        matches
            .iter()
            .zip(widths)
            .map(|(v, &w)| v.as_ternary(w).map(|(bits, mask)| Tern { bits, mask }))
            .collect::<Option<Vec<_>>>()
            .map(Cube)
    }

    /// Does every packet in `other` also lie in `self`?
    pub fn subsumes(&self, other: &Cube) -> bool {
        self.0
            .iter()
            .zip(&other.0)
            .all(|(a, b)| a.mask & b.mask == a.mask && (a.bits ^ b.bits) & a.mask == 0)
    }

    /// Do the two cubes share a packet? (Per-column ternary overlap.)
    pub fn intersects(&self, other: &Cube) -> bool {
        self.0
            .iter()
            .zip(&other.0)
            .all(|(a, b)| (a.bits ^ b.bits) & a.mask & b.mask == 0)
    }
}

/// Is `cube` entirely covered by the union of `cover`?
///
/// Exact when it answers: `Some(true)` / `Some(false)` are proofs. `None`
/// means the recursive split exceeded `budget` steps and the question is
/// left open (callers must treat it as "not covered" to stay sound).
pub fn covered_by(cube: &Cube, cover: &[&Cube], budget: &mut usize) -> Option<bool> {
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    // Find an earlier cube that intersects; if none, some packet of `cube`
    // escapes every cover cube.
    let Some(c) = cover.iter().find(|c| c.intersects(cube)) else {
        return Some(false);
    };
    if c.subsumes(cube) {
        return Some(true);
    }
    // `c` intersects but does not contain `cube`: split `cube ∖ c` into
    // disjoint subcubes (one per care bit of `c` that `cube` leaves free)
    // and require each to be covered. The subcube for bit `k` pins bits
    // k+1.. (in iteration order) to agree with `c` and bit `k` to differ,
    // which makes the subcubes pairwise disjoint and their union exactly
    // `cube ∖ c`.
    let mut pinned = cube.clone();
    for col in 0..cube.0.len() {
        let free = c.0[col].mask & !cube.0[col].mask;
        let mut rest = free;
        while rest != 0 {
            let k = rest & rest.wrapping_neg(); // lowest set bit
            rest &= rest - 1;
            let mut sub = pinned.clone();
            sub.0[col].mask |= k;
            sub.0[col].bits = (sub.0[col].bits & !k) | (!c.0[col].bits & k);
            match covered_by(&sub, cover, budget) {
                Some(true) => {}
                other => return other,
            }
            // Pin this bit to agree with `c` for the remaining subcubes.
            pinned.0[col].mask |= k;
            pinned.0[col].bits = (pinned.0[col].bits & !k) | (c.0[col].bits & k);
        }
    }
    Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cube(cells: &[(u64, u64)]) -> Cube {
        Cube(
            cells
                .iter()
                .map(|&(bits, mask)| Tern { bits, mask })
                .collect(),
        )
    }

    #[test]
    fn subsumption_per_column() {
        let wide = cube(&[(0, 0), (5, 0xff)]);
        let narrow = cube(&[(3, 0xff), (5, 0xff)]);
        assert!(wide.subsumes(&narrow));
        assert!(!narrow.subsumes(&wide));
    }

    #[test]
    fn union_cover_found() {
        // 0* ∪ 1* covers * on one 4-bit column.
        let all = cube(&[(0, 0)]);
        let lo = cube(&[(0, 0b1000)]);
        let hi = cube(&[(0b1000, 0b1000)]);
        let mut budget = 1000;
        assert_eq!(covered_by(&all, &[&lo, &hi], &mut budget), Some(true));
        let mut budget = 1000;
        assert_eq!(covered_by(&all, &[&lo], &mut budget), Some(false));
    }

    #[test]
    fn union_cover_multi_column() {
        // Column 0 split across two cubes that each pin column 1 = 7:
        // together they cover (any, 7) but not (any, any).
        let lo = cube(&[(0, 0b1000), (7, 0xf)]);
        let hi = cube(&[(0b1000, 0b1000), (7, 0xf)]);
        let target = cube(&[(0, 0), (7, 0xf)]);
        let mut budget = 1000;
        assert_eq!(covered_by(&target, &[&lo, &hi], &mut budget), Some(true));
        let wider = cube(&[(0, 0), (0, 0)]);
        let mut budget = 1000;
        assert_eq!(covered_by(&wider, &[&lo, &hi], &mut budget), Some(false));
    }

    #[test]
    fn budget_exhaustion_is_unknown() {
        let all = cube(&[(0, 0)]);
        let lo = cube(&[(0, 0b1000)]);
        let hi = cube(&[(0b1000, 0b1000)]);
        let mut budget = 1;
        assert_eq!(covered_by(&all, &[&lo, &hi], &mut budget), None);
    }

    /// Brute-force oracle on a single small column.
    #[test]
    fn covered_by_matches_enumeration() {
        use rand::rngs::SmallRng;
        use rand::{Rng, SeedableRng};
        let w = 6u32;
        let full = (1u64 << w) - 1;
        let mut rng = SmallRng::seed_from_u64(2019);
        for _ in 0..200 {
            let t: Vec<Tern> = (0..rng.gen_range(1..5))
                .map(|_| {
                    let mask = rng.gen_range(0..=full);
                    Tern {
                        bits: rng.gen_range(0..=full) & mask,
                        mask,
                    }
                })
                .collect();
            let cm = rng.gen_range(0..=full);
            let c = cube(&[(rng.gen_range(0..=full) & cm, cm)]);
            let covers: Vec<Cube> = t.iter().map(|&x| Cube(vec![x])).collect();
            let refs: Vec<&Cube> = covers.iter().collect();
            let expect = (0..=full)
                .filter(|&v| v & c.0[0].mask == c.0[0].bits)
                .all(|v| t.iter().any(|x| v & x.mask == x.bits));
            let mut budget = 100_000;
            assert_eq!(
                covered_by(&c, &refs, &mut budget),
                Some(expect),
                "{c:?} vs {t:?}"
            );
        }
    }
}
