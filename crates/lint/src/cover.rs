//! Ternary-cube cover algebra — re-exported from `mapro-sym`.
//!
//! The cube machinery (canonical per-column ternaries, exact union-cover
//! checks with budgeted splitting) originated here for the shadowing and
//! dead-entry analyses, and was promoted to [`mapro_sym::cube`] when the
//! symbolic equivalence engine generalized it with intersection,
//! subtraction and representative extraction. This module keeps the
//! historical `mapro_lint::cover` paths working as thin re-exports; the
//! algebra itself (and its oracle tests) lives in `mapro-sym`.

pub use mapro_sym::cube::{covered_by, Cube, Tern};
