//! The diagnostic model: lint identities, severities, provenance, and the
//! report they aggregate into.
//!
//! Every pass emits [`Diagnostic`]s into a [`LintReport`]. A diagnostic
//! carries a stable machine-readable lint id (the catalogue lives in
//! [`CATALOGUE`]), a severity, table/entry provenance, a human message,
//! and — where the analyzer knows the concrete repair — a suggestion
//! (e.g. the Heath decomposition `mapro normalize` would apply).

use std::fmt;

/// How serious a finding is.
///
/// `Error` findings are provably wasted or wrong program text (an entry no
/// packet can reach, a jump to a nonexistent table); `Warn` findings are
/// hazards and redundancy the paper's theory says should be decomposed
/// away; `Info` findings are observations (e.g. a BCNF-only violation the
/// paper explicitly stops short of fixing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Observation; no action required.
    Info,
    /// Hazard or removable redundancy.
    Warn,
    /// Provably dead or broken program text.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        })
    }
}

// Serialized as the lowercase name (the vendored serde shim has no
// `rename_all` support, so the impls are written out).
impl serde::Serialize for Severity {
    fn to_content(&self) -> serde::Content {
        serde::Content::Str(self.to_string())
    }
}

impl serde::Deserialize for Severity {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        match c {
            serde::Content::Str(s) => match s.as_str() {
                "info" => Ok(Severity::Info),
                "warn" => Ok(Severity::Warn),
                "error" => Ok(Severity::Error),
                other => Err(serde::DeError::msg(format!("unknown severity {other:?}"))),
            },
            other => Err(serde::DeError::expected("severity string", other)),
        }
    }
}

/// One entry of the lint catalogue: id, default severity, one-line doc.
#[derive(Debug, Clone, Copy)]
pub struct LintInfo {
    /// Stable machine-readable id (`kebab-case`).
    pub id: &'static str,
    /// Default severity (overridable with `-A`/`-W`/`-D`).
    pub default_severity: Severity,
    /// What the lint detects.
    pub summary: &'static str,
}

/// The full lint catalogue, in reporting order.
///
/// Kept as data so the CLI can validate `-A`/`-W`/`-D` arguments and docs
/// can be generated from one source of truth.
pub const CATALOGUE: &[LintInfo] = &[
    LintInfo {
        id: "shadowed-entry",
        default_severity: Severity::Error,
        summary: "entry fully covered by a single higher-priority entry; it can never fire",
    },
    LintInfo {
        id: "dead-entry",
        default_severity: Severity::Error,
        summary: "entry covered by the union of higher-priority entries, or unsatisfiable",
    },
    LintInfo {
        id: "undecided-liveness",
        default_severity: Severity::Info,
        summary: "union-cover liveness left undecided: the cube backend's split budget ran \
                  out (re-run with --backend dd for an exact verdict)",
    },
    LintInfo {
        id: "unknown-goto-target",
        default_severity: Severity::Error,
        summary: "goto/next/fall-through names a table that does not exist",
    },
    LintInfo {
        id: "goto-cycle",
        default_severity: Severity::Error,
        summary: "the jump graph has a reachable cycle; evaluation can exceed its step budget",
    },
    LintInfo {
        id: "unreachable-table",
        default_severity: Severity::Warn,
        summary: "no jump-graph path from the start table reaches this table",
    },
    LintInfo {
        id: "meta-never-matched",
        default_severity: Severity::Warn,
        summary: "metadata field written by a reachable entry but matched nowhere",
    },
    LintInfo {
        id: "meta-never-written",
        default_severity: Severity::Warn,
        summary: "metadata field matched non-trivially but never written (always zero)",
    },
    LintInfo {
        id: "overlapping-entries",
        default_severity: Severity::Warn,
        summary: "two entries overlap: the table is order-dependent (violates 1NF)",
    },
    LintInfo {
        id: "partial-dependency",
        default_severity: Severity::Warn,
        summary: "FD from part of a candidate key to a non-prime attribute (violates 2NF)",
    },
    LintInfo {
        id: "transitive-dependency",
        default_severity: Severity::Warn,
        summary: "transitive FD to a non-prime attribute (violates 3NF)",
    },
    LintInfo {
        id: "bcnf-dependency",
        default_severity: Severity::Info,
        summary: "non-superkey determinant among prime attributes (violates BCNF only)",
    },
    LintInfo {
        id: "action-to-match-dependency",
        default_severity: Severity::Warn,
        summary: "violating FD has actions determining match fields; decomposition would \
                  break 1NF (Fig. 3) and is refused",
    },
    LintInfo {
        id: "unknown-declared-fd",
        default_severity: Severity::Warn,
        summary: "a declared FD names attributes the table does not have; it was ignored",
    },
    LintInfo {
        id: "tcam-capacity",
        default_severity: Severity::Warn,
        summary: "table exceeds the modeled TCAM entry capacity",
    },
    LintInfo {
        id: "tcam-width",
        default_severity: Severity::Warn,
        summary: "per-entry match width exceeds the modeled TCAM slice width",
    },
];

/// Look up a catalogue entry by id.
pub fn lint_info(id: &str) -> Option<&'static LintInfo> {
    CATALOGUE.iter().find(|l| l.id == id)
}

/// One finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Catalogue id (see [`CATALOGUE`]).
    pub lint: String,
    /// Effective severity (default, unless overridden).
    pub severity: Severity,
    /// Table the finding is about, if table-scoped.
    pub table: Option<String>,
    /// Entry (row index, priority order) the finding is about, if
    /// entry-scoped.
    pub entry: Option<usize>,
    /// Human-readable description.
    pub message: String,
    /// Concrete repair, when the analyzer knows one (e.g. the Heath
    /// decomposition `mapro normalize` would apply).
    pub suggestion: Option<String>,
}

// Absent provenance fields are omitted from the JSON rather than emitted
// as nulls (keeps the CI golden files readable), which the derive shim
// cannot express — hence manual impls.
impl serde::Serialize for Diagnostic {
    fn to_content(&self) -> serde::Content {
        let mut m = vec![
            ("lint".to_owned(), serde::Content::Str(self.lint.clone())),
            ("severity".to_owned(), self.severity.to_content()),
        ];
        if let Some(t) = &self.table {
            m.push(("table".to_owned(), serde::Content::Str(t.clone())));
        }
        if let Some(e) = self.entry {
            m.push(("entry".to_owned(), serde::Content::U64(e as u64)));
        }
        m.push((
            "message".to_owned(),
            serde::Content::Str(self.message.clone()),
        ));
        if let Some(s) = &self.suggestion {
            m.push(("suggestion".to_owned(), serde::Content::Str(s.clone())));
        }
        serde::Content::Map(m)
    }
}

impl serde::Deserialize for Diagnostic {
    fn from_content(c: &serde::Content) -> Result<Self, serde::DeError> {
        let str_field = |k: &str| -> Result<String, serde::DeError> {
            match c.get(k) {
                Some(serde::Content::Str(s)) => Ok(s.clone()),
                Some(other) => Err(serde::DeError::expected(k, other)),
                None => Err(serde::DeError::msg(format!("missing field {k:?}"))),
            }
        };
        let opt_str = |k: &str| match c.get(k) {
            Some(serde::Content::Str(s)) => Some(s.clone()),
            _ => None,
        };
        let entry = match c.get("entry") {
            Some(&serde::Content::U64(e)) => Some(e as usize),
            Some(&serde::Content::I64(e)) => Some(e as usize),
            _ => None,
        };
        Ok(Diagnostic {
            lint: str_field("lint")?,
            severity: Severity::from_content(
                c.get("severity")
                    .ok_or_else(|| serde::DeError::msg("missing field \"severity\""))?,
            )?,
            table: opt_str("table"),
            entry,
            message: str_field("message")?,
            suggestion: opt_str("suggestion"),
        })
    }
}

impl Diagnostic {
    /// Build a diagnostic at the lint's default severity.
    ///
    /// # Panics
    /// Panics if `lint` is not in the catalogue (a pass bug, not input).
    pub fn new(lint: &'static str, message: impl Into<String>) -> Diagnostic {
        let info = lint_info(lint).unwrap_or_else(|| panic!("lint {lint:?} not in CATALOGUE"));
        Diagnostic {
            lint: lint.to_owned(),
            severity: info.default_severity,
            table: None,
            entry: None,
            message: message.into(),
            suggestion: None,
        }
    }

    /// Attach table provenance.
    pub fn table(mut self, t: impl Into<String>) -> Self {
        self.table = Some(t.into());
        self
    }

    /// Attach entry provenance.
    pub fn entry(mut self, row: usize) -> Self {
        self.entry = Some(row);
        self
    }

    /// Attach a repair suggestion.
    pub fn suggest(mut self, s: impl Into<String>) -> Self {
        self.suggestion = Some(s.into());
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.lint)?;
        match (&self.table, self.entry) {
            (Some(t), Some(e)) => write!(f, " {t}#{e}")?,
            (Some(t), None) => write!(f, " {t}")?,
            _ => {}
        }
        write!(f, ": {}", self.message)?;
        if let Some(s) = &self.suggestion {
            write!(f, "\n  = help: {s}")?;
        }
        Ok(())
    }
}

/// Per-lint severity overrides (`-A` allow, `-W` warn, `-D` deny), applied
/// after all passes run.
#[derive(Debug, Clone, Default)]
pub struct Overrides {
    /// Lints to drop entirely.
    pub allow: Vec<String>,
    /// Lints forced down to `Warn`.
    pub warn: Vec<String>,
    /// Lints forced up to `Error`.
    pub deny: Vec<String>,
    /// Treat every surviving `Warn` as `Error` (`--deny warn`).
    pub deny_warnings: bool,
}

impl Overrides {
    /// The first referenced lint id that is not in the catalogue, if any
    /// (a usage error for the CLI to report).
    pub fn unknown_lint(&self) -> Option<&str> {
        self.allow
            .iter()
            .chain(&self.warn)
            .chain(&self.deny)
            .map(String::as_str)
            .find(|id| lint_info(id).is_none())
    }
}

/// The aggregated result of a lint run.
#[derive(Debug, Clone, Default, serde::Serialize, serde::Deserialize)]
pub struct LintReport {
    /// All findings, in pass order (deterministic for a given program).
    pub diagnostics: Vec<Diagnostic>,
    /// How many liveness questions the run left undecided (cube backend
    /// budget exhaustion). Always zero under the DD backend, whose
    /// verdicts are exact; each undecided question also appears as an
    /// `undecided-liveness` diagnostic.
    pub unknown_findings: usize,
}

impl LintReport {
    /// Apply severity overrides: allows drop findings, warns/denies
    /// re-level them, and `deny_warnings` promotes the remaining warns.
    pub fn apply(&mut self, o: &Overrides) {
        self.diagnostics.retain(|d| !o.allow.contains(&d.lint));
        for d in &mut self.diagnostics {
            if o.warn.contains(&d.lint) {
                d.severity = Severity::Warn;
            }
            if o.deny.contains(&d.lint) {
                d.severity = Severity::Error;
            }
            if o.deny_warnings && d.severity == Severity::Warn {
                d.severity = Severity::Error;
            }
        }
    }

    /// Count of findings at the given severity.
    pub fn count(&self, s: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == s).count()
    }

    /// True when any finding is `Error`-severity.
    pub fn has_errors(&self) -> bool {
        self.count(Severity::Error) > 0
    }

    /// Findings with the given lint id.
    pub fn with_lint<'a>(&'a self, id: &'a str) -> impl Iterator<Item = &'a Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.lint == id)
    }

    /// The report as pretty JSON (stable field order, findings in pass
    /// order) — the machine interface CI goldens diff against.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// The report as human-readable text, one finding per stanza, with a
    /// trailing summary line.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let _ = writeln!(
            out,
            "{} findings: {} error, {} warn, {} info, {} unknown",
            self.diagnostics.len(),
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info),
            self.unknown_findings,
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_ids_unique_and_kebab() {
        let mut seen = std::collections::HashSet::new();
        for l in CATALOGUE {
            assert!(seen.insert(l.id), "duplicate lint id {}", l.id);
            assert!(
                l.id.chars().all(|c| c.is_ascii_lowercase() || c == '-'),
                "{} not kebab-case",
                l.id
            );
        }
    }

    #[test]
    fn overrides_relevel_and_drop() {
        let mut r = LintReport::default();
        r.diagnostics.push(Diagnostic::new("shadowed-entry", "x"));
        r.diagnostics
            .push(Diagnostic::new("unreachable-table", "y"));
        r.diagnostics.push(Diagnostic::new("bcnf-dependency", "z"));
        let o = Overrides {
            allow: vec!["shadowed-entry".into()],
            deny: vec!["bcnf-dependency".into()],
            deny_warnings: true,
            ..Default::default()
        };
        r.apply(&o);
        assert_eq!(r.diagnostics.len(), 2);
        // unreachable-table: warn → error via deny_warnings.
        assert_eq!(r.count(Severity::Error), 2);
        assert!(r.has_errors());
    }

    #[test]
    fn unknown_override_detected() {
        let o = Overrides {
            warn: vec!["no-such-lint".into()],
            ..Default::default()
        };
        assert_eq!(o.unknown_lint(), Some("no-such-lint"));
    }

    #[test]
    fn display_carries_provenance_and_help() {
        let d = Diagnostic::new("dead-entry", "covered")
            .table("t0")
            .entry(3)
            .suggest("remove it");
        let s = d.to_string();
        assert!(s.contains("error[dead-entry] t0#3: covered"), "{s}");
        assert!(s.contains("= help: remove it"), "{s}");
    }
}
