//! Capacity lints against `mapro-classifier`'s TCAM resource model.
//!
//! The paper's §2 motivates normalization partly by TCAM space: a
//! universal table multiplies out its factors and blows the entry budget,
//! and wide compound keys exceed the device's per-slice match width. This
//! pass re-uses [`mapro_classifier::TcamModel`]'s accounting to report
//! both statically.

use crate::diag::{Diagnostic, LintReport};
use crate::LintConfig;
use mapro_classifier::{TableView, TcamModel};
use mapro_core::Pipeline;

/// Check every table against the configured TCAM entry capacity and slice
/// width.
pub fn check_capacity(p: &Pipeline, cfg: &LintConfig, out: &mut LintReport) {
    for t in &p.tables {
        let view = TableView::of(t, &p.catalog);
        match TcamModel::build(&view, cfg.tcam_capacity_entries) {
            Err(full) => {
                out.diagnostics.push(
                    Diagnostic::new("tcam-capacity", full.to_string())
                        .table(&t.name)
                        .suggest(
                            "normalize the table: decomposed stages hold the factors, \
                             not their product",
                        ),
                );
            }
            Ok(model) => {
                // Track the modeled bit footprint even when within budget.
                mapro_obs::gauge!("lint.tcam_bits").add(model.bits_used() as i64);
            }
        }
        let row_bits: u32 = view.widths.iter().sum();
        if row_bits > cfg.tcam_slice_bits {
            out.diagnostics.push(
                Diagnostic::new(
                    "tcam-width",
                    format!(
                        "match key is {row_bits} bits; the modeled TCAM slice is {} bits",
                        cfg.tcam_slice_bits
                    ),
                )
                .table(&t.name)
                .suggest("decompose along an FD to split the compound key across stages"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::{ActionSem, Catalog, Table, Value};

    fn lint(p: &Pipeline, cfg: &LintConfig) -> LintReport {
        let mut r = LintReport::default();
        check_capacity(p, cfg, &mut r);
        r
    }

    #[test]
    fn capacity_exceeded_reported() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f], vec![out]);
        for i in 0..5 {
            t.row(vec![Value::Int(i)], vec![Value::sym("p")]);
        }
        let p = Pipeline::single(c, t);
        let cfg = LintConfig {
            tcam_capacity_entries: 4,
            ..Default::default()
        };
        let r = lint(&p, &cfg);
        let d: Vec<_> = r.with_lint("tcam-capacity").collect();
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("5 entries requested, 4 available"));
    }

    #[test]
    fn wide_key_reported() {
        let mut c = Catalog::new();
        let a = c.field("a", 48);
        let b = c.field("b", 48);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![a, b], vec![out]);
        t.row(vec![Value::Int(1), Value::Int(2)], vec![Value::sym("p")]);
        let p = Pipeline::single(c, t);
        let cfg = LintConfig {
            tcam_slice_bits: 64,
            ..Default::default()
        };
        let r = lint(&p, &cfg);
        assert_eq!(r.with_lint("tcam-width").count(), 1);
    }

    #[test]
    fn within_budget_is_clean() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f], vec![out]);
        t.row(vec![Value::Int(1)], vec![Value::sym("p")]);
        let p = Pipeline::single(c, t);
        assert!(lint(&p, &LintConfig::default()).diagnostics.is_empty());
    }
}
