//! # mapro-lint — symbolic static analysis for match-action programs
//!
//! A linter over the relational program model of *Normal Forms for
//! Match-Action Programs* (CoNEXT'19). Every pass analyzes the
//! [`Pipeline`] — tables, entries, the jump graph, mined dependencies —
//! without evaluating a single packet:
//!
//! * [`entries`] — shadowed and dead entries, proved by the ternary-cover
//!   algebra (`Value::as_ternary` / `Value::subsumes` in `mapro-core`,
//!   lifted to whole-entry cubes in [`cover`]).
//! * [`graph`] — unknown jump targets, unreachable tables, reachable goto
//!   cycles, and metadata-tag hygiene.
//! * [`redundancy`] — the paper's normal-form theory as diagnostics:
//!   2NF/3NF/BCNF violations with the concrete Heath decomposition
//!   `mapro normalize` would apply as the suggested fix, and the Fig. 3
//!   action-to-match hazard.
//! * [`capacity`] — TCAM entry/width budgets via `mapro-classifier`'s
//!   resource model.
//!
//! Findings carry a stable lint id from [`CATALOGUE`], a severity, and
//! table/entry provenance; [`LintReport`] renders as human text or as the
//! JSON that CI goldens diff against. `Error`-severity lints are reserved
//! for provably wasted or broken program text, so a normalized,
//! equivalence-checked pipeline lints clean at that level (property-tested
//! in `tests/lint_guard.rs`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capacity;
pub mod cover;
pub mod diag;
pub mod entries;
pub mod graph;
pub mod redundancy;

pub use capacity::check_capacity;
pub use cover::{covered_by, Cube, Tern};
pub use diag::{lint_info, Diagnostic, LintInfo, LintReport, Overrides, Severity, CATALOGUE};
pub use entries::check_entries;
pub use graph::check_graph;
pub use redundancy::{check_redundancy, DeclaredFd};

use mapro_core::Pipeline;
pub use mapro_sym::CoverBackend;

/// Tunables for a lint run.
#[derive(Debug, Clone)]
pub struct LintConfig {
    /// Modeled TCAM entry capacity per table (default 4096).
    pub tcam_capacity_entries: usize,
    /// Modeled TCAM per-slice match width in bits (default 640).
    pub tcam_slice_bits: u32,
    /// Step budget for the recursive union-cover check (cube backend
    /// only); exhaustion counts as an unknown finding (sound: never a
    /// false positive).
    pub cover_budget: usize,
    /// Which engine decides union-cover liveness: `Cube` is the budgeted
    /// recursive split, `Dd` is exact decision-diagram subtraction with no
    /// budget, `Auto` (the default) runs the cube check and escalates to
    /// the DD engine only for the questions the budget left open.
    pub backend: CoverBackend,
    /// Model-level dependencies the author declares to hold, unioned with
    /// the mined ones before normal-form analysis.
    pub declared_fds: Vec<DeclaredFd>,
}

impl Default for LintConfig {
    fn default() -> Self {
        LintConfig {
            tcam_capacity_entries: 4096,
            tcam_slice_bits: 640,
            cover_budget: 10_000,
            backend: CoverBackend::default(),
            declared_fds: Vec::new(),
        }
    }
}

/// Run every pass over `p` and aggregate the findings.
///
/// Passes run in a fixed order (entries, graph, redundancy, capacity) so
/// the report is deterministic for a given program — a requirement for the
/// golden-file CI job.
pub fn lint(p: &Pipeline, cfg: &LintConfig) -> LintReport {
    let mut report = LintReport::default();
    {
        let _t = mapro_obs::time!("lint.pass_ns");
        check_entries(p, cfg, &mut report);
    }
    {
        let _t = mapro_obs::time!("lint.pass_ns");
        check_graph(p, &mut report);
    }
    {
        let _t = mapro_obs::time!("lint.pass_ns");
        check_redundancy(p, cfg, &mut report);
    }
    {
        let _t = mapro_obs::time!("lint.pass_ns");
        check_capacity(p, cfg, &mut report);
    }
    mapro_obs::counter!("lint.findings").add(report.diagnostics.len() as u64);
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_workloads_lint_without_errors() {
        // The figures are legal programs: redundant (that is the paper's
        // point) but with nothing provably dead or broken.
        for (name, p) in [
            ("fig1", mapro_workloads::Gwlb::fig1().universal),
            ("fig2", mapro_workloads::L3::fig2().universal),
            ("fig3", mapro_workloads::Vlan::fig3().universal),
            ("fig5", mapro_workloads::Sdx::fig5().universal),
            (
                "enterprise",
                mapro_workloads::Enterprise::random(12, 3, 5).pipeline,
            ),
        ] {
            let r = lint(&p, &LintConfig::default());
            assert_eq!(r.count(Severity::Error), 0, "{name}: {}", r.to_text());
        }
    }

    #[test]
    fn fig1_reports_ip_to_tcp_redundancy() {
        // In the literal Fig. 1a instance ip_dst ↔ tcp_dst holds both ways,
        // so each is prime and the finding lands at the BCNF level.
        let r = lint(
            &mapro_workloads::Gwlb::fig1().universal,
            &LintConfig::default(),
        );
        assert!(
            r.with_lint("bcnf-dependency")
                .any(|d| d.message.contains("ip_dst") && d.message.contains("tcp_dst")),
            "{}",
            r.to_text()
        );
    }

    #[test]
    fn unnormalized_random_gwlb_reports_decomposable_redundancy() {
        let r = lint(
            &mapro_workloads::Gwlb::random(6, 4, 7).universal,
            &LintConfig::default(),
        );
        let nf_findings = r.with_lint("partial-dependency").count()
            + r.with_lint("transitive-dependency").count()
            + r.with_lint("bcnf-dependency").count();
        assert!(nf_findings > 0, "{}", r.to_text());
    }

    #[test]
    fn report_roundtrips_through_json() {
        let r = lint(
            &mapro_workloads::Vlan::fig3().universal,
            &LintConfig::default(),
        );
        let j = r.to_json();
        let back: LintReport = serde_json::from_str(&j).unwrap();
        assert_eq!(back.diagnostics, r.diagnostics);
    }
}
