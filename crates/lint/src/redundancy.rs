//! Redundancy lints — the paper's normal-form theory as diagnostics.
//!
//! Each table is analyzed over its [`mapro_normalize::program_view`]
//! (plumbing columns excluded) with FDs mined from the instance plus any
//! caller-declared model-level dependencies. Violations of 1NF
//! order-independence, 2NF, 3NF, and BCNF become findings; where the
//! violation is decomposable, the suggestion is the concrete Heath
//! decomposition `mapro normalize` would apply (`X → X⁺ ∖ X`); where the
//! determinant contains actions and the dependents contain match fields,
//! the Fig. 3 action-to-match hazard is reported instead — that violation
//! cannot be fixed by decomposition.

use crate::diag::{Diagnostic, LintReport};
use crate::LintConfig;
use mapro_core::{AttrId, Pipeline};
use mapro_fd::{analyze_with, mine_fds, Fd, FdSet, FirstNfIssue};
use mapro_normalize::program_view;

/// A model-level dependency the program author declares to hold, named by
/// attribute (the paper's "inherently encoded" dependencies, e.g.
/// `ip_dst → tcp_dst` in Fig. 1a). Declared FDs are unioned with the
/// mined ones before normal-form analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeclaredFd {
    /// Table the dependency applies to.
    pub table: String,
    /// Determinant attribute names.
    pub lhs: Vec<String>,
    /// Dependent attribute names.
    pub rhs: Vec<String>,
}

/// Names of the attributes in `s`, via the report's universe.
fn decode_names(p: &Pipeline, fds: &FdSet, s: mapro_fd::AttrSet) -> Vec<String> {
    fds.universe
        .decode(s)
        .into_iter()
        .map(|a| p.catalog.name(a).to_owned())
        .collect()
}

/// Run the normal-form redundancy lints over every table.
pub fn check_redundancy(p: &Pipeline, cfg: &LintConfig, out: &mut LintReport) {
    for t in &p.tables {
        let view = program_view(t, p);
        if view.is_empty() {
            continue;
        }
        let mut fds = mine_fds(&view, &p.catalog).fds;
        for d in cfg.declared_fds.iter().filter(|d| d.table == t.name) {
            fn resolve(
                names: &[String],
                p: &Pipeline,
                uni: &mapro_fd::Universe,
            ) -> Option<Vec<AttrId>> {
                names
                    .iter()
                    .map(|n| p.catalog.lookup(n).filter(|&a| uni.position(a).is_some()))
                    .collect()
            }
            let lhs = resolve(&d.lhs, p, &fds.universe);
            let rhs = resolve(&d.rhs, p, &fds.universe);
            match (lhs, rhs) {
                (Some(lhs), Some(rhs)) => fds.add_ids(&lhs, &rhs),
                _ => out.diagnostics.push(
                    Diagnostic::new(
                        "unknown-declared-fd",
                        format!(
                            "declared FD ({}) -> ({}) names attributes outside the table",
                            d.lhs.join(", "),
                            d.rhs.join(", ")
                        ),
                    )
                    .table(&t.name),
                ),
            }
        }
        let rep = analyze_with(&view, &p.catalog, fds);

        for issue in &rep.first_issues {
            if let FirstNfIssue::OrderDependent { first, second } = issue {
                out.diagnostics.push(
                    Diagnostic::new(
                        "overlapping-entries",
                        format!(
                            "entries {first} and {second} can match the same packet; \
                             semantics depend on entry order (not 1NF)"
                        ),
                    )
                    .table(&t.name)
                    .entry(*second),
                );
            }
            // DuplicateMatch is subsumed by shadowed-entry (identical
            // predicates always shadow) — not re-reported here.
        }

        // Classify each violating FD once, at its most damning level:
        // partial ⊂ transitive ⊂ bcnf witnesses.
        let emit = |fd: Fd, lint: &'static str, out: &mut LintReport| {
            let lhs = decode_names(p, &rep.fds, fd.lhs);
            let closure = rep.fds.closure(fd.lhs);
            let gained = closure.minus(fd.lhs);
            let rhs = decode_names(p, &rep.fds, gained);
            let lhs_ids = rep.fds.universe.decode(fd.lhs);
            let gained_ids = rep.fds.universe.decode(gained);
            let lhs_has_action = lhs_ids.iter().any(|&a| p.catalog.attr(a).kind.is_action());
            let rhs_has_match = gained_ids
                .iter()
                .any(|&a| p.catalog.attr(a).kind.is_matchable());
            let mut d = Diagnostic::new(
                lint,
                format!(
                    "({}) -> ({}) holds, so those facts are stated once per matching entry",
                    lhs.join(", "),
                    rhs.join(", ")
                ),
            )
            .table(&t.name);
            if lhs_has_action && rhs_has_match {
                let msg = format!(
                    "violating FD ({}) -> ({}) has actions determining match fields; \
                     decomposing along it yields non-1NF stages that misroute packets (Fig. 3)",
                    lhs.join(", "),
                    rhs.join(", ")
                );
                // Several violating FDs can share a determinant; warn once.
                if !out
                    .diagnostics
                    .iter()
                    .any(|x| x.lint == "action-to-match-dependency" && x.message == msg)
                {
                    out.diagnostics
                        .push(Diagnostic::new("action-to-match-dependency", msg).table(&t.name));
                }
                d = d.suggest(
                    "not auto-fixable: the Fig. 3 action-to-match shape refuses decomposition",
                );
            } else {
                d = d.suggest(format!(
                    "decompose {} along ({}) -> ({}); `mapro normalize` applies this \
                     Heath decomposition",
                    t.name,
                    lhs.join(", "),
                    rhs.join(", ")
                ));
            }
            // Distinct FDs with the same closure (e.g. () -> a and () -> b)
            // collapse to one finding — the decomposition fixing one fixes all.
            if !out
                .diagnostics
                .iter()
                .any(|x| x.lint == d.lint && x.table == d.table && x.message == d.message)
            {
                out.diagnostics.push(d);
            }
        };

        for &fd in &rep.partial_deps {
            emit(fd, "partial-dependency", out);
        }
        for &fd in &rep.transitive_deps {
            if !rep.partial_deps.contains(&fd) {
                emit(fd, "transitive-dependency", out);
            }
        }
        for &fd in &rep.bcnf_deps {
            if !rep.transitive_deps.contains(&fd) {
                emit(fd, "bcnf-dependency", out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Severity;
    use mapro_core::{ActionSem, Catalog, Table, Value};

    fn lint(p: &Pipeline, cfg: &LintConfig) -> LintReport {
        let mut r = LintReport::default();
        check_redundancy(p, cfg, &mut r);
        r
    }

    /// Fig. 1a in miniature: (src, dst) key, dst → port partial dependency.
    fn fig1_like() -> Pipeline {
        let mut c = Catalog::new();
        let src = c.field("src", 8);
        let dst = c.field("dst", 8);
        let port = c.field("port", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![src, dst, port], vec![out]);
        for (s, d, pt, o) in [
            (0u64, 1u64, 80u64, "vm1"),
            (1, 1, 80, "vm2"),
            (0, 2, 80, "vm3"),
            (1, 2, 80, "vm4"),
            (0, 3, 22, "vm5"),
        ] {
            t.row(
                vec![Value::Int(s), Value::Int(d), Value::Int(pt)],
                vec![Value::sym(o)],
            );
        }
        Pipeline::single(c, t)
    }

    #[test]
    fn partial_dependency_with_heath_suggestion() {
        let p = fig1_like();
        let r = lint(&p, &LintConfig::default());
        let d: Vec<_> = r.with_lint("partial-dependency").collect();
        assert!(!d.is_empty(), "{:?}", r.diagnostics);
        let fix = d[0].suggestion.as_deref().unwrap();
        assert!(fix.contains("decompose t along (dst) -> "), "{fix}");
        assert!(fix.contains("port"), "{fix}");
    }

    #[test]
    fn fig3_action_to_match_flagged() {
        let v = mapro_workloads::Vlan::fig3();
        let r = lint(&v.universal, &LintConfig::default());
        let d: Vec<_> = r.with_lint("action-to-match-dependency").collect();
        assert!(!d.is_empty(), "{:?}", r.diagnostics);
        assert!(d[0].message.contains("out"), "{}", d[0].message);
        // The underlying violation is reported as not auto-fixable.
        assert!(r.diagnostics.iter().any(|d| d
            .suggestion
            .as_deref()
            .is_some_and(|s| s.contains("not auto-fixable"))));
    }

    #[test]
    fn overlap_reported_as_order_dependence() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let out = c.action("out", ActionSem::Output);
        let mut t = Table::new("t", vec![f], vec![out]);
        t.row(vec![Value::prefix(0, 4, 8)], vec![Value::sym("a")]);
        t.row(vec![Value::prefix(0, 2, 8)], vec![Value::sym("b")]);
        let p = Pipeline::single(c, t);
        let r = lint(&p, &LintConfig::default());
        assert_eq!(r.with_lint("overlapping-entries").count(), 1);
    }

    #[test]
    fn declared_fd_participates() {
        // Instance too small for mining to see dst → port? Mining always
        // sees instance-true FDs, so declare one the instance does NOT
        // witness is impossible; instead declare one that mining already
        // finds and check nothing breaks, plus a bad declaration warns.
        let p = fig1_like();
        let cfg = LintConfig {
            declared_fds: vec![
                DeclaredFd {
                    table: "t".into(),
                    lhs: vec!["dst".into()],
                    rhs: vec!["port".into()],
                },
                DeclaredFd {
                    table: "t".into(),
                    lhs: vec!["nope".into()],
                    rhs: vec!["port".into()],
                },
            ],
            ..Default::default()
        };
        let r = lint(&p, &cfg);
        assert!(r.with_lint("partial-dependency").count() >= 1);
        assert!(r
            .diagnostics
            .iter()
            .any(|d| d.message.contains("declared FD")));
    }

    #[test]
    fn normalized_pipeline_has_no_redundancy_errors() {
        let g = mapro_workloads::Gwlb::random(6, 4, 7);
        let n =
            mapro_normalize::normalize(&g.universal, &mapro_normalize::NormalizeOpts::default());
        assert!(n.complete());
        let r = lint(&n.pipeline, &LintConfig::default());
        assert_eq!(r.count(Severity::Error), 0, "{:?}", r.diagnostics);
        assert_eq!(r.with_lint("partial-dependency").count(), 0);
        assert_eq!(r.with_lint("transitive-dependency").count(), 0);
    }
}
