//! Pipeline-level control-flow analysis: the jump graph.
//!
//! Nodes are tables; edges are every way control can transfer — `Goto`
//! action parameters, implicit [`Table::next`] chaining, and
//! `MissPolicy::Fall` targets. The pass reports jumps to nonexistent
//! tables, tables no path from the start reaches, reachable cycles (the
//! static counterpart of [`mapro_core::EvalError::GotoCycle`]), and
//! metadata-tag hygiene (tags written but never matched, or matched but
//! never written).

use crate::diag::{Diagnostic, LintReport};
use mapro_core::{ActionSem, AttrId, AttrKind, Pipeline, Table, Value};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Every jump edge out of `t`, as `(target name, description)`.
fn edges(t: &Table, p: &Pipeline) -> Vec<(String, String)> {
    let mut out = Vec::new();
    for (col, &attr) in t.action_attrs.iter().enumerate() {
        if !matches!(p.catalog.attr(attr).kind, AttrKind::Action(ActionSem::Goto)) {
            continue;
        }
        for (row, e) in t.entries.iter().enumerate() {
            match &e.actions[col] {
                Value::Sym(s) => out.push((s.to_string(), format!("goto in entry {row}"))),
                Value::Any => {}
                other => out.push((
                    format!("<malformed: {other}>"),
                    format!("goto in entry {row}"),
                )),
            }
        }
    }
    if let Some(n) = &t.next {
        out.push((n.clone(), "next chaining".to_owned()));
    }
    if let mapro_core::MissPolicy::Fall(n) = &t.miss {
        out.push((n.clone(), "miss fall-through".to_owned()));
    }
    out
}

/// Run reachability, cycle, and metadata-hygiene checks.
pub fn check_graph(p: &Pipeline, out: &mut LintReport) {
    let names: BTreeSet<&str> = p.tables.iter().map(|t| t.name.as_str()).collect();

    // Adjacency over existing tables; unknown targets are reported and
    // dropped from the graph.
    let mut adj: BTreeMap<&str, Vec<String>> = BTreeMap::new();
    for t in &p.tables {
        let mut next = Vec::new();
        for (target, what) in edges(t, p) {
            if names.contains(target.as_str()) {
                next.push(target);
            } else {
                out.diagnostics.push(
                    Diagnostic::new(
                        "unknown-goto-target",
                        format!("{what} names {target:?}, which is not a table"),
                    )
                    .table(&t.name),
                );
            }
        }
        adj.insert(&t.name, next);
    }

    if !names.contains(p.start.as_str()) {
        out.diagnostics.push(Diagnostic::new(
            "unknown-goto-target",
            format!("start table {:?} does not exist", p.start),
        ));
        return;
    }

    // Reachability from the start table.
    let mut reachable: BTreeSet<&str> = BTreeSet::new();
    let mut stack = vec![p.start.as_str()];
    while let Some(n) = stack.pop() {
        if !reachable.insert(n) {
            continue;
        }
        for m in &adj[n] {
            stack.push(*names.get(m.as_str()).expect("edge into known table"));
        }
    }
    for t in &p.tables {
        if !reachable.contains(t.name.as_str()) {
            out.diagnostics.push(
                Diagnostic::new(
                    "unreachable-table",
                    format!("no jump path from start table {:?} reaches it", p.start),
                )
                .table(&t.name)
                .suggest("remove the table or add a jump to it"),
            );
        }
    }

    // Cycle detection (DFS, white/grey/black) on the reachable subgraph.
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Grey,
        Black,
    }
    let mut color: HashMap<&str, Color> = reachable.iter().map(|&n| (n, Color::White)).collect();
    let mut trail: Vec<&str> = Vec::new();
    // Iterative DFS with an explicit enter/exit stack so the grey trail is
    // maintained correctly without recursion.
    enum Op<'a> {
        Enter(&'a str),
        Exit(&'a str),
    }
    let mut ops = vec![Op::Enter(p.start.as_str())];
    let mut cycle: Option<Vec<&str>> = None;
    while let Some(op) = ops.pop() {
        match op {
            Op::Enter(n) => match color[n] {
                Color::Grey | Color::Black => {}
                Color::White => {
                    color.insert(n, Color::Grey);
                    trail.push(n);
                    ops.push(Op::Exit(n));
                    for m in &adj[n] {
                        let m = *names.get(m.as_str()).expect("known");
                        match color[m] {
                            Color::Grey => {
                                if cycle.is_none() {
                                    let start = trail.iter().position(|&x| x == m).unwrap_or(0);
                                    let mut c: Vec<&str> = trail[start..].to_vec();
                                    c.push(m);
                                    cycle = Some(c);
                                }
                            }
                            Color::White => ops.push(Op::Enter(m)),
                            Color::Black => {}
                        }
                    }
                }
            },
            Op::Exit(n) => {
                color.insert(n, Color::Black);
                trail.pop();
            }
        }
    }
    if let Some(c) = cycle {
        out.diagnostics.push(
            Diagnostic::new(
                "goto-cycle",
                format!("reachable jump cycle: {}", c.join(" -> ")),
            )
            .table(c[0])
            .suggest("break the cycle; packets traversing it exhaust the evaluator's step budget"),
        );
    }

    // Metadata-tag hygiene, over reachable tables only (unreachable ones
    // are already reported wholesale).
    let mut written: BTreeMap<AttrId, &str> = BTreeMap::new(); // tag -> first writing table
    let mut matched: BTreeMap<AttrId, &str> = BTreeMap::new(); // tag -> first matching table
    for t in p
        .tables
        .iter()
        .filter(|t| reachable.contains(t.name.as_str()))
    {
        for (col, &attr) in t.action_attrs.iter().enumerate() {
            if let AttrKind::Action(ActionSem::SetField(target)) = p.catalog.attr(attr).kind {
                if matches!(p.catalog.attr(target).kind, AttrKind::Meta)
                    && t.entries
                        .iter()
                        .any(|e| !matches!(e.actions[col], Value::Any))
                {
                    written.entry(target).or_insert(&t.name);
                }
            }
        }
        for (col, &attr) in t.match_attrs.iter().enumerate() {
            if matches!(p.catalog.attr(attr).kind, AttrKind::Meta)
                && t.entries
                    .iter()
                    .any(|e| !matches!(e.matches[col], Value::Any))
            {
                matched.entry(attr).or_insert(&t.name);
            }
        }
    }
    for (&tag, &writer) in &written {
        if !matched.contains_key(&tag) {
            out.diagnostics.push(
                Diagnostic::new(
                    "meta-never-matched",
                    format!(
                        "metadata field {:?} is written but no reachable table matches it",
                        p.catalog.name(tag)
                    ),
                )
                .table(writer)
                .suggest("drop the write, or the field if nothing else uses it"),
            );
        }
    }
    for (&tag, &reader) in &matched {
        if !written.contains_key(&tag) {
            out.diagnostics.push(
                Diagnostic::new(
                    "meta-never-written",
                    format!(
                        "metadata field {:?} is matched but never written; it is always zero",
                        p.catalog.name(tag)
                    ),
                )
                .table(reader)
                .suggest("entries requiring a nonzero value can never fire"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::{Catalog, Table};

    fn goto_chain() -> Pipeline {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let goto = c.action("goto", ActionSem::Goto);
        let out = c.action("out", ActionSem::Output);
        let mut t0 = Table::new("t0", vec![f], vec![goto]);
        t0.row(vec![Value::Int(1)], vec![Value::sym("t1")]);
        let mut t1 = Table::new("t1", vec![f], vec![out]);
        t1.row(vec![Value::Any], vec![Value::sym("p")]);
        let mut t2 = Table::new("t2", vec![f], vec![out]);
        t2.row(vec![Value::Any], vec![Value::sym("q")]);
        Pipeline::new(c, vec![t0, t1, t2], "t0")
    }

    fn lint(p: &Pipeline) -> LintReport {
        let mut r = LintReport::default();
        check_graph(p, &mut r);
        r
    }

    #[test]
    fn unreachable_table_found() {
        let p = goto_chain();
        let r = lint(&p);
        let d: Vec<_> = r.with_lint("unreachable-table").collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].table.as_deref(), Some("t2"));
    }

    #[test]
    fn unknown_target_found() {
        let mut p = goto_chain();
        p.table_mut("t0").unwrap().entries[0].actions[0] = Value::sym("nope");
        let r = lint(&p);
        assert_eq!(r.with_lint("unknown-goto-target").count(), 1);
    }

    #[test]
    fn cycle_found() {
        let mut p = goto_chain();
        // t1 jumps back to t0.
        p.table_mut("t1").unwrap().next = Some("t0".into());
        let r = lint(&p);
        let d: Vec<_> = r.with_lint("goto-cycle").collect();
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("t0 -> t1 -> t0"), "{}", d[0].message);
    }

    #[test]
    fn acyclic_reachable_pipeline_clean() {
        let mut p = goto_chain();
        p.tables.retain(|t| t.name != "t2");
        assert!(lint(&p).diagnostics.is_empty());
    }

    #[test]
    fn meta_hygiene() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let m1 = c.meta("tag_w", 8); // written, never matched
        let m2 = c.meta("tag_r", 8); // matched, never written
        let w1 = c.action("set_tag_w", ActionSem::SetField(m1));
        let out = c.action("out", ActionSem::Output);
        let mut t0 = Table::new("t0", vec![f], vec![w1]);
        t0.row(vec![Value::Int(1)], vec![Value::Int(3)]);
        t0.next = Some("t1".into());
        let mut t1 = Table::new("t1", vec![m2], vec![out]);
        t1.row(vec![Value::Int(7)], vec![Value::sym("p")]);
        let p = Pipeline::new(c, vec![t0, t1], "t0");
        let r = lint(&p);
        assert_eq!(r.with_lint("meta-never-matched").count(), 1);
        assert_eq!(r.with_lint("meta-never-written").count(), 1);
    }

    #[test]
    fn healthy_meta_join_is_clean() {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let m = c.meta("tag", 8);
        let w = c.action("set_tag", ActionSem::SetField(m));
        let out = c.action("out", ActionSem::Output);
        let mut t0 = Table::new("t0", vec![f], vec![w]);
        t0.row(vec![Value::Int(1)], vec![Value::Int(3)]);
        t0.next = Some("t1".into());
        let mut t1 = Table::new("t1", vec![m], vec![out]);
        t1.row(vec![Value::Int(3)], vec![Value::sym("p")]);
        let p = Pipeline::new(c, vec![t0, t1], "t0");
        assert!(lint(&p).diagnostics.is_empty());
    }
}
