//! Shadowed- and dead-entry detection — classifier minimization as a
//! *symbolic* pass.
//!
//! `mapro_normalize::prune_dead_entries` establishes the same facts by
//! enumerating the packet domain; this pass proves them from the program
//! text alone, in time polynomial in the table size, independent of field
//! widths. The union-cover question ("do the higher-priority entries
//! together leave this one nothing to match?") is decided by the engine
//! [`LintConfig::backend`] selects: the budgeted recursive cube split
//! ([`crate::cover::covered_by`]) or exact decision-diagram subtraction
//! ([`mapro_sym::TableLiveness`]); `Auto` runs the cube check and
//! escalates to the DD engine only for questions the budget left open, so
//! every verdict is decided unless the cube backend is forced explicitly.

use crate::cover::{covered_by, Cube};
use crate::diag::{Diagnostic, LintReport};
use crate::{CoverBackend, LintConfig};
use mapro_core::Pipeline;
use mapro_sym::{SymConfig, TableLiveness};

/// Run shadowed-/dead-entry detection over every table.
pub fn check_entries(p: &Pipeline, cfg: &LintConfig, out: &mut LintReport) {
    let max_nodes = SymConfig::default().max_nodes;
    for t in &p.tables {
        let widths: Vec<u32> = t
            .match_attrs
            .iter()
            .map(|&a| p.catalog.attr(a).width)
            .collect();
        let cubes: Vec<Option<Cube>> = t
            .entries
            .iter()
            .map(|e| Cube::of(&e.matches, &widths))
            .collect();
        // DD liveness for this table, built on first use. Outer `None` =
        // not built yet; inner `None` = the arena limit was hit (treated
        // as undecided, like a blown cube budget).
        let mut dd: Option<Option<TableLiveness>> = None;
        for (j, cj) in cubes.iter().enumerate() {
            let Some(cj) = cj else {
                out.diagnostics.push(
                    Diagnostic::new(
                        "dead-entry",
                        "a match cell holds a symbolic value, which matches no packet",
                    )
                    .table(&t.name)
                    .entry(j),
                );
                continue;
            };
            // Single-cube shadow: the first earlier entry covering this one.
            if let Some(i) = cubes[..j]
                .iter()
                .position(|ci| ci.as_ref().is_some_and(|ci| ci.subsumes(cj)))
            {
                out.diagnostics.push(
                    Diagnostic::new(
                        "shadowed-entry",
                        format!("every packet it matches is claimed by entry {i} first"),
                    )
                    .table(&t.name)
                    .entry(j)
                    .suggest(format!("remove entry {j}; entry {i} subsumes it")),
                );
                continue;
            }
            // Union cover: no single entry shadows it, but together the
            // earlier entries leave it nothing to match.
            let earlier: Vec<&Cube> = cubes[..j].iter().flatten().collect();
            if earlier.len() < 2 {
                continue;
            }
            let dd_verdict = |dd: &mut Option<Option<TableLiveness>>| -> Option<bool> {
                let lv =
                    dd.get_or_insert_with(|| TableLiveness::build(&widths, &cubes, max_nodes).ok());
                lv.as_ref().and_then(|lv| lv.covered[j])
            };
            let verdict = match cfg.backend {
                CoverBackend::Cube => {
                    let mut budget = cfg.cover_budget;
                    covered_by(cj, &earlier, &mut budget)
                }
                CoverBackend::Dd => dd_verdict(&mut dd),
                CoverBackend::Auto => {
                    let mut budget = cfg.cover_budget;
                    match covered_by(cj, &earlier, &mut budget) {
                        Some(v) => Some(v),
                        None => {
                            mapro_obs::counter!("lint.dd_resolved").inc();
                            dd_verdict(&mut dd)
                        }
                    }
                }
            };
            match verdict {
                Some(true) => {
                    out.diagnostics.push(
                        Diagnostic::new(
                            "dead-entry",
                            format!(
                                "the union of the {} higher-priority entries covers it",
                                earlier.len()
                            ),
                        )
                        .table(&t.name)
                        .entry(j)
                        .suggest(format!("remove entry {j}; no packet can reach it")),
                    );
                }
                Some(false) => {}
                None => {
                    out.unknown_findings += 1;
                    mapro_obs::counter!("lint.unknown").inc();
                    out.diagnostics.push(
                        Diagnostic::new(
                            "undecided-liveness",
                            format!(
                                "the union-cover check against the {} higher-priority entries \
                                 exhausted its budget; liveness is undecided",
                                earlier.len()
                            ),
                        )
                        .table(&t.name)
                        .entry(j)
                        .suggest("re-run with --backend dd for an exact verdict".to_owned()),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::{ActionSem, Catalog, Table, Value};

    fn lint_table(t: Table, c: Catalog) -> LintReport {
        let p = Pipeline::single(c, t);
        let mut r = LintReport::default();
        check_entries(&p, &LintConfig::default(), &mut r);
        r
    }

    fn cat() -> (Catalog, Vec<mapro_core::AttrId>, mapro_core::AttrId) {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let g = c.field("g", 8);
        let out = c.action("out", ActionSem::Output);
        (c, vec![f, g], out)
    }

    #[test]
    fn shadowed_by_single_entry() {
        let (c, fs, out) = cat();
        let mut t = Table::new("t", fs, vec![out]);
        t.row(
            vec![Value::prefix(0, 1, 8), Value::Any],
            vec![Value::sym("a")],
        );
        t.row(vec![Value::Int(1), Value::Int(9)], vec![Value::sym("b")]);
        let r = lint_table(t, c);
        let d: Vec<_> = r.with_lint("shadowed-entry").collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].entry, Some(1));
    }

    #[test]
    fn dead_by_union_not_single() {
        let (c, fs, out) = cat();
        let mut t = Table::new("t", fs, vec![out]);
        // 0*/any and 1*/any together cover any/any; neither alone does.
        t.row(
            vec![Value::prefix(0, 1, 8), Value::Any],
            vec![Value::sym("a")],
        );
        t.row(
            vec![Value::prefix(0x80, 1, 8), Value::Any],
            vec![Value::sym("b")],
        );
        t.row(vec![Value::Any, Value::Any], vec![Value::sym("c")]);
        let r = lint_table(t, c);
        assert_eq!(r.with_lint("shadowed-entry").count(), 0);
        let d: Vec<_> = r.with_lint("dead-entry").collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].entry, Some(2));
    }

    #[test]
    fn live_entries_unflagged() {
        let (c, fs, out) = cat();
        let mut t = Table::new("t", fs, vec![out]);
        t.row(vec![Value::Int(1), Value::Any], vec![Value::sym("a")]);
        t.row(vec![Value::Int(2), Value::Any], vec![Value::sym("b")]);
        t.row(vec![Value::Any, Value::Int(5)], vec![Value::sym("c")]);
        let r = lint_table(t, c);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn cube_budget_exhaustion_reports_unknown_and_dd_decides_it() {
        let (c, fs, out) = cat();
        let mut t = Table::new("t", fs, vec![out]);
        // 0*/any ∪ 1*/any covers any/any by union only; a 1-step budget
        // cannot decide it.
        t.row(
            vec![Value::prefix(0, 1, 8), Value::Any],
            vec![Value::sym("a")],
        );
        t.row(
            vec![Value::prefix(0x80, 1, 8), Value::Any],
            vec![Value::sym("b")],
        );
        t.row(vec![Value::Any, Value::Any], vec![Value::sym("c")]);
        let p = Pipeline::single(c, t);
        let tiny = |backend| LintConfig {
            cover_budget: 1,
            backend,
            ..LintConfig::default()
        };
        // Forced cube backend: undecided, surfaced as an unknown finding.
        let mut r = LintReport::default();
        check_entries(&p, &tiny(crate::CoverBackend::Cube), &mut r);
        assert_eq!(r.unknown_findings, 1);
        assert_eq!(r.with_lint("undecided-liveness").count(), 1);
        assert_eq!(r.with_lint("dead-entry").count(), 0);
        assert!(r.to_text().contains("1 unknown"), "{}", r.to_text());
        // DD backend (and Auto's escalation): exact, no budget, no unknown.
        for backend in [crate::CoverBackend::Dd, crate::CoverBackend::Auto] {
            let mut r = LintReport::default();
            check_entries(&p, &tiny(backend), &mut r);
            assert_eq!(r.unknown_findings, 0, "{backend:?}");
            let d: Vec<_> = r.with_lint("dead-entry").collect();
            assert_eq!(d.len(), 1, "{backend:?}");
            assert_eq!(d[0].entry, Some(2));
        }
    }

    #[test]
    fn symbolic_match_cell_is_dead() {
        let (c, fs, out) = cat();
        let mut t = Table::new("t", fs, vec![out]);
        t.row(vec![Value::sym("oops"), Value::Any], vec![Value::sym("a")]);
        let r = lint_table(t, c);
        assert_eq!(r.with_lint("dead-entry").count(), 1);
    }
}
