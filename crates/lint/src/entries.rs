//! Shadowed- and dead-entry detection — classifier minimization as a
//! *symbolic* pass.
//!
//! `mapro_normalize::prune_dead_entries` establishes the same facts by
//! enumerating the packet domain; this pass proves them from the program
//! text alone via the ternary-cover algebra ([`crate::cover`]), in time
//! polynomial in the table size (plus a bounded cover-split budget),
//! independent of field widths.

use crate::cover::{covered_by, Cube};
use crate::diag::{Diagnostic, LintReport};
use crate::LintConfig;
use mapro_core::Pipeline;

/// Run shadowed-/dead-entry detection over every table.
pub fn check_entries(p: &Pipeline, cfg: &LintConfig, out: &mut LintReport) {
    for t in &p.tables {
        let widths: Vec<u32> = t
            .match_attrs
            .iter()
            .map(|&a| p.catalog.attr(a).width)
            .collect();
        let cubes: Vec<Option<Cube>> = t
            .entries
            .iter()
            .map(|e| Cube::of(&e.matches, &widths))
            .collect();
        for (j, cj) in cubes.iter().enumerate() {
            let Some(cj) = cj else {
                out.diagnostics.push(
                    Diagnostic::new(
                        "dead-entry",
                        "a match cell holds a symbolic value, which matches no packet",
                    )
                    .table(&t.name)
                    .entry(j),
                );
                continue;
            };
            // Single-cube shadow: the first earlier entry covering this one.
            if let Some(i) = cubes[..j]
                .iter()
                .position(|ci| ci.as_ref().is_some_and(|ci| ci.subsumes(cj)))
            {
                out.diagnostics.push(
                    Diagnostic::new(
                        "shadowed-entry",
                        format!("every packet it matches is claimed by entry {i} first"),
                    )
                    .table(&t.name)
                    .entry(j)
                    .suggest(format!("remove entry {j}; entry {i} subsumes it")),
                );
                continue;
            }
            // Union cover: no single entry shadows it, but together the
            // earlier entries leave it nothing to match.
            let earlier: Vec<&Cube> = cubes[..j].iter().flatten().collect();
            if earlier.len() >= 2 {
                let mut budget = cfg.cover_budget;
                if covered_by(cj, &earlier, &mut budget) == Some(true) {
                    out.diagnostics.push(
                        Diagnostic::new(
                            "dead-entry",
                            format!(
                                "the union of the {} higher-priority entries covers it",
                                earlier.len()
                            ),
                        )
                        .table(&t.name)
                        .entry(j)
                        .suggest(format!("remove entry {j}; no packet can reach it")),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mapro_core::{ActionSem, Catalog, Table, Value};

    fn lint_table(t: Table, c: Catalog) -> LintReport {
        let p = Pipeline::single(c, t);
        let mut r = LintReport::default();
        check_entries(&p, &LintConfig::default(), &mut r);
        r
    }

    fn cat() -> (Catalog, Vec<mapro_core::AttrId>, mapro_core::AttrId) {
        let mut c = Catalog::new();
        let f = c.field("f", 8);
        let g = c.field("g", 8);
        let out = c.action("out", ActionSem::Output);
        (c, vec![f, g], out)
    }

    #[test]
    fn shadowed_by_single_entry() {
        let (c, fs, out) = cat();
        let mut t = Table::new("t", fs, vec![out]);
        t.row(
            vec![Value::prefix(0, 1, 8), Value::Any],
            vec![Value::sym("a")],
        );
        t.row(vec![Value::Int(1), Value::Int(9)], vec![Value::sym("b")]);
        let r = lint_table(t, c);
        let d: Vec<_> = r.with_lint("shadowed-entry").collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].entry, Some(1));
    }

    #[test]
    fn dead_by_union_not_single() {
        let (c, fs, out) = cat();
        let mut t = Table::new("t", fs, vec![out]);
        // 0*/any and 1*/any together cover any/any; neither alone does.
        t.row(
            vec![Value::prefix(0, 1, 8), Value::Any],
            vec![Value::sym("a")],
        );
        t.row(
            vec![Value::prefix(0x80, 1, 8), Value::Any],
            vec![Value::sym("b")],
        );
        t.row(vec![Value::Any, Value::Any], vec![Value::sym("c")]);
        let r = lint_table(t, c);
        assert_eq!(r.with_lint("shadowed-entry").count(), 0);
        let d: Vec<_> = r.with_lint("dead-entry").collect();
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].entry, Some(2));
    }

    #[test]
    fn live_entries_unflagged() {
        let (c, fs, out) = cat();
        let mut t = Table::new("t", fs, vec![out]);
        t.row(vec![Value::Int(1), Value::Any], vec![Value::sym("a")]);
        t.row(vec![Value::Int(2), Value::Any], vec![Value::sym("b")]);
        t.row(vec![Value::Any, Value::Int(5)], vec![Value::sym("c")]);
        let r = lint_table(t, c);
        assert!(r.diagnostics.is_empty(), "{:?}", r.diagnostics);
    }

    #[test]
    fn symbolic_match_cell_is_dead() {
        let (c, fs, out) = cat();
        let mut t = Table::new("t", fs, vec![out]);
        t.row(vec![Value::sym("oops"), Value::Any], vec![Value::sym("a")]);
        let r = lint_table(t, c);
        assert_eq!(r.with_lint("dead-entry").count(), 1);
    }
}
