//! # mapro-dd — hash-consed decision diagrams over header bits
//!
//! A node arena with structural hash-consing (the *unique table*) for
//! reduced ordered binary decision diagrams, in the KATch style: every
//! `(var, lo, hi)` triple exists at most once, so two diagrams denote the
//! same function **iff** their [`NodeRef`]s are equal — canonical equality
//! is one integer comparison, independent of diagram size.
//!
//! Two flavors share the arena:
//!
//! * **Boolean BDDs** — terminals [`NodeRef::FALSE`] / [`NodeRef::TRUE`];
//!   combined with the memoized apply operations [`Mgr::and`], [`Mgr::or`],
//!   [`Mgr::not`], [`Mgr::diff`] (set subtraction `a ∧ ¬b`) and
//!   [`Mgr::cofactor`]. These are the header-space predicates: a ternary
//!   match row becomes a conjunction of bit literals ([`Mgr::cube`]).
//! * **Terminal-labeled MTBDDs** — terminals carry an arbitrary `u32`
//!   label (a behavior id interned by the caller); built by selecting
//!   between labeled terminals with [`Mgr::ite`] under boolean guards.
//!   A whole pipeline compiles to one MTBDD mapping every point of header
//!   space to its behavior id, and pipeline equivalence is root-pointer
//!   equality.
//!
//! Variables are plain `u32` bit indices; smaller indices sit closer to
//! the root. Callers fix the order (`mapro-sym` uses field-declaration
//! order, MSB first within a field). All shaping operations are memoized
//! in shared-node caches so repeated subproblems cost one hash lookup;
//! every allocation is bounded by a configurable node limit whose
//! exhaustion is the recoverable [`Overflow`] error, never an abort.
//!
//! Instrumented via `mapro-obs`: `dd.nodes` (fresh allocations),
//! `dd.unique.hits`, `dd.memo.hits` / `dd.memo.misses`, and
//! `dd.gc.collected` (nodes reclaimed by [`Mgr::gc`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};

/// Terminal tag bit: refs with it set are terminals, payload in the low
/// 31 bits.
const TERM_BIT: u32 = 1 << 31;

/// Largest terminal label an MTBDD can carry.
pub const MAX_TERM: u32 = TERM_BIT - 1;

/// A canonical reference to a decision-diagram node (or terminal).
///
/// Within one [`Mgr`], two refs are equal **iff** the functions they
/// denote are equal — the hash-consing invariant. Refs from different
/// managers are not comparable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeRef(u32);

impl NodeRef {
    /// The constant-false boolean terminal (label 0).
    pub const FALSE: NodeRef = NodeRef(TERM_BIT);
    /// The constant-true boolean terminal (label 1).
    pub const TRUE: NodeRef = NodeRef(TERM_BIT | 1);

    /// The terminal carrying MTBDD label `v`.
    ///
    /// # Panics
    /// Panics if `v` exceeds [`MAX_TERM`].
    #[inline]
    pub fn term(v: u32) -> NodeRef {
        assert!(v <= MAX_TERM, "terminal label {v} exceeds MAX_TERM");
        NodeRef(TERM_BIT | v)
    }

    /// Is this a terminal?
    #[inline]
    pub fn is_term(self) -> bool {
        self.0 & TERM_BIT != 0
    }

    /// The terminal label, if this is a terminal.
    #[inline]
    pub fn term_value(self) -> Option<u32> {
        self.is_term().then_some(self.0 & !TERM_BIT)
    }

    #[inline]
    fn index(self) -> usize {
        debug_assert!(!self.is_term());
        self.0 as usize
    }
}

/// One interior node: test `var`, follow `lo` on 0 and `hi` on 1.
#[derive(Debug, Clone, Copy)]
struct Node {
    var: u32,
    lo: NodeRef,
    hi: NodeRef,
}

/// The node limit was reached mid-operation.
///
/// The manager is left in a consistent state (partial results are interned
/// but harmless); callers treat this like a blown budget — fall back to
/// another engine or retry after [`Mgr::gc`] with a higher limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow {
    /// The limit that was hit.
    pub limit: usize,
}

impl std::fmt::Display for Overflow {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decision-diagram node limit ({}) exhausted", self.limit)
    }
}

impl std::error::Error for Overflow {}

/// Binary apply operations, used as memo keys.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
enum Op {
    And,
    Or,
    Diff,
    Cofactor0,
    Cofactor1,
}

/// The decision-diagram manager: node arena, unique table, memo caches.
///
/// All diagrams of one comparison domain must live in one manager —
/// canonical equality only holds within it. The manager is deliberately
/// single-threaded (`&mut self` everywhere): determinism comes for free,
/// and the symbolic compiler parallelizes *across* checks, not within one.
pub struct Mgr {
    nodes: Vec<Node>,
    unique: HashMap<(u32, NodeRef, NodeRef), u32>,
    memo_bin: HashMap<(Op, NodeRef, NodeRef), NodeRef>,
    memo_ite: HashMap<(NodeRef, NodeRef, NodeRef), NodeRef>,
    max_nodes: usize,
}

impl Default for Mgr {
    fn default() -> Self {
        Mgr::new()
    }
}

impl Mgr {
    /// Default node limit: ~4M interior nodes (64 MiB of arena), far above
    /// anything the workloads need but a hard stop for pathological input.
    pub const DEFAULT_MAX_NODES: usize = 1 << 22;

    /// A manager with the default node limit.
    pub fn new() -> Mgr {
        Mgr::with_limit(Self::DEFAULT_MAX_NODES)
    }

    /// A manager that refuses to allocate more than `max_nodes` interior
    /// nodes (clamped to the 2^31 arena address space).
    pub fn with_limit(max_nodes: usize) -> Mgr {
        Mgr {
            nodes: Vec::new(),
            unique: HashMap::new(),
            memo_bin: HashMap::new(),
            memo_ite: HashMap::new(),
            max_nodes: max_nodes.min(TERM_BIT as usize - 1),
        }
    }

    /// Number of interior nodes currently in the arena (live + garbage).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no interior node has been allocated yet.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    #[inline]
    fn node(&self, r: NodeRef) -> Node {
        self.nodes[r.index()]
    }

    /// The decision variable at the root, or `u32::MAX` for terminals
    /// (sorts after every real variable).
    #[inline]
    fn var_of(&self, r: NodeRef) -> u32 {
        if r.is_term() {
            u32::MAX
        } else {
            self.nodes[r.index()].var
        }
    }

    /// Hash-consed node constructor: reduces `lo == hi`, dedups through
    /// the unique table, allocates otherwise.
    fn mk(&mut self, var: u32, lo: NodeRef, hi: NodeRef) -> Result<NodeRef, Overflow> {
        if lo == hi {
            return Ok(lo);
        }
        debug_assert!(
            self.var_of(lo) > var && self.var_of(hi) > var,
            "order violation"
        );
        if let Some(&i) = self.unique.get(&(var, lo, hi)) {
            mapro_obs::counter!("dd.unique.hits").inc();
            return Ok(NodeRef(i));
        }
        if self.nodes.len() >= self.max_nodes {
            return Err(Overflow {
                limit: self.max_nodes,
            });
        }
        let i = self.nodes.len() as u32;
        self.nodes.push(Node { var, lo, hi });
        self.unique.insert((var, lo, hi), i);
        mapro_obs::counter!("dd.nodes").inc();
        Ok(NodeRef(i))
    }

    /// The single-bit predicate "variable `v` is 1".
    pub fn var(&mut self, v: u32) -> Result<NodeRef, Overflow> {
        self.mk(v, NodeRef::FALSE, NodeRef::TRUE)
    }

    /// Conjunction of bit literals `(var, value)` — a ternary match row as
    /// a predicate. Literals must be sorted by strictly ascending `var`.
    pub fn cube(&mut self, lits: &[(u32, bool)]) -> Result<NodeRef, Overflow> {
        debug_assert!(
            lits.windows(2).all(|w| w[0].0 < w[1].0),
            "cube literals must be sorted by strictly ascending var"
        );
        let mut acc = NodeRef::TRUE;
        for &(v, b) in lits.iter().rev() {
            acc = if b {
                self.mk(v, NodeRef::FALSE, acc)?
            } else {
                self.mk(v, acc, NodeRef::FALSE)?
            };
        }
        Ok(acc)
    }

    /// Boolean terminal short-circuits of one apply op; `None` means both
    /// sides are interior (or mixed) and recursion must proceed.
    fn terminal_case(op: Op, a: NodeRef, b: NodeRef) -> Option<NodeRef> {
        match op {
            Op::And => {
                if a == NodeRef::FALSE || b == NodeRef::FALSE {
                    Some(NodeRef::FALSE)
                } else if a == NodeRef::TRUE {
                    Some(b)
                } else if b == NodeRef::TRUE || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Or => {
                if a == NodeRef::TRUE || b == NodeRef::TRUE {
                    Some(NodeRef::TRUE)
                } else if a == NodeRef::FALSE {
                    Some(b)
                } else if b == NodeRef::FALSE || a == b {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Diff => {
                if a == NodeRef::FALSE || b == NodeRef::TRUE || a == b {
                    Some(NodeRef::FALSE)
                } else if b == NodeRef::FALSE {
                    Some(a)
                } else {
                    None
                }
            }
            Op::Cofactor0 | Op::Cofactor1 => unreachable!("cofactor is not a binary apply"),
        }
    }

    fn apply(&mut self, op: Op, a: NodeRef, b: NodeRef) -> Result<NodeRef, Overflow> {
        if let Some(t) = Self::terminal_case(op, a, b) {
            return Ok(t);
        }
        assert!(
            !(a.is_term() && b.is_term()),
            "boolean apply on non-boolean terminals"
        );
        // And/or are commutative: canonicalize the memo key so `a op b`
        // and `b op a` share one cache line.
        let key = match op {
            Op::And | Op::Or if b < a => (op, b, a),
            _ => (op, a, b),
        };
        if let Some(&r) = self.memo_bin.get(&key) {
            mapro_obs::counter!("dd.memo.hits").inc();
            return Ok(r);
        }
        mapro_obs::counter!("dd.memo.misses").inc();
        let v = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = if self.var_of(a) == v {
            let n = self.node(a);
            (n.lo, n.hi)
        } else {
            (a, a)
        };
        let (b0, b1) = if self.var_of(b) == v {
            let n = self.node(b);
            (n.lo, n.hi)
        } else {
            (b, b)
        };
        let lo = self.apply(op, a0, b0)?;
        let hi = self.apply(op, a1, b1)?;
        let r = self.mk(v, lo, hi)?;
        self.memo_bin.insert(key, r);
        Ok(r)
    }

    /// Boolean conjunction `a ∧ b`.
    pub fn and(&mut self, a: NodeRef, b: NodeRef) -> Result<NodeRef, Overflow> {
        self.apply(Op::And, a, b)
    }

    /// Boolean disjunction `a ∨ b`.
    pub fn or(&mut self, a: NodeRef, b: NodeRef) -> Result<NodeRef, Overflow> {
        self.apply(Op::Or, a, b)
    }

    /// Set subtraction `a ∧ ¬b` — the operation that replaces recursive
    /// cube splitting.
    pub fn diff(&mut self, a: NodeRef, b: NodeRef) -> Result<NodeRef, Overflow> {
        self.apply(Op::Diff, a, b)
    }

    /// Boolean negation `¬a`.
    pub fn not(&mut self, a: NodeRef) -> Result<NodeRef, Overflow> {
        self.apply(Op::Diff, NodeRef::TRUE, a)
    }

    /// If-then-else: boolean guard `f` selecting between `g` and `h`
    /// (which may be MTBDDs) — the MTBDD constructor.
    pub fn ite(&mut self, f: NodeRef, g: NodeRef, h: NodeRef) -> Result<NodeRef, Overflow> {
        if f == NodeRef::TRUE {
            return Ok(g);
        }
        if f == NodeRef::FALSE || g == h {
            return Ok(h);
        }
        if g == NodeRef::TRUE && h == NodeRef::FALSE {
            return Ok(f);
        }
        let key = (f, g, h);
        if let Some(&r) = self.memo_ite.get(&key) {
            mapro_obs::counter!("dd.memo.hits").inc();
            return Ok(r);
        }
        mapro_obs::counter!("dd.memo.misses").inc();
        let v = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let split = |s: &Self, x: NodeRef| {
            if s.var_of(x) == v {
                let n = s.node(x);
                (n.lo, n.hi)
            } else {
                (x, x)
            }
        };
        let (f0, f1) = split(self, f);
        let (g0, g1) = split(self, g);
        let (h0, h1) = split(self, h);
        let lo = self.ite(f0, g0, h0)?;
        let hi = self.ite(f1, g1, h1)?;
        let r = self.mk(v, lo, hi)?;
        self.memo_ite.insert(key, r);
        Ok(r)
    }

    /// Cofactor (restriction): `f` with variable `var` pinned to `val`.
    pub fn cofactor(&mut self, f: NodeRef, var: u32, val: bool) -> Result<NodeRef, Overflow> {
        if self.var_of(f) > var {
            // `var` cannot appear below the root in an ordered diagram.
            return Ok(f);
        }
        if self.var_of(f) == var {
            let n = self.node(f);
            return Ok(if val { n.hi } else { n.lo });
        }
        let op = if val { Op::Cofactor1 } else { Op::Cofactor0 };
        // The pinned variable rides in the memo key's second operand slot
        // as a terminal ref (terminals never appear there otherwise).
        let key = (op, f, NodeRef::term(var));
        if let Some(&r) = self.memo_bin.get(&key) {
            mapro_obs::counter!("dd.memo.hits").inc();
            return Ok(r);
        }
        mapro_obs::counter!("dd.memo.misses").inc();
        let n = self.node(f);
        let lo = self.cofactor(n.lo, var, val)?;
        let hi = self.cofactor(n.hi, var, val)?;
        let r = self.mk(n.var, lo, hi)?;
        self.memo_bin.insert(key, r);
        Ok(r)
    }

    /// Evaluate to the terminal label under a concrete assignment.
    pub fn eval(&self, mut f: NodeRef, bit: impl Fn(u32) -> bool) -> u32 {
        loop {
            match f.term_value() {
                Some(v) => return v,
                None => {
                    let n = self.node(f);
                    f = if bit(n.var) { n.hi } else { n.lo };
                }
            }
        }
    }

    /// The first satisfying assignment of a boolean BDD in 0-preferring
    /// path order: `(var, value)` for each decision on the path; unlisted
    /// variables are free (callers pin them to 0 for byte-stable
    /// representatives). `None` iff `f` is `FALSE`.
    ///
    /// Every reduced non-`FALSE` node is satisfiable, so the walk never
    /// backtracks.
    pub fn first_sat(&self, f: NodeRef) -> Option<Vec<(u32, bool)>> {
        if f == NodeRef::FALSE {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_term() {
            let n = self.node(cur);
            if n.lo != NodeRef::FALSE {
                path.push((n.var, false));
                cur = n.lo;
            } else {
                path.push((n.var, true));
                cur = n.hi;
            }
        }
        debug_assert_ne!(cur, NodeRef::FALSE);
        Some(path)
    }

    /// The first assignment (0-preferring path order) on which two MTBDDs
    /// reach different terminals, or `None` iff `a == b`. This is the
    /// counterexample extractor: by hash-consing, semantic equality is
    /// exactly ref equality, so the answer is `None` iff the functions
    /// agree everywhere.
    ///
    /// Pairs proven equal are memoized in a visited set, bounding the walk
    /// by the number of distinct `(a, b)` subproblems.
    pub fn first_diff(&self, a: NodeRef, b: NodeRef) -> Option<Vec<(u32, bool)>> {
        fn go(
            m: &Mgr,
            a: NodeRef,
            b: NodeRef,
            path: &mut Vec<(u32, bool)>,
            equal: &mut HashSet<(NodeRef, NodeRef)>,
        ) -> bool {
            if a == b || equal.contains(&(a, b)) {
                return false;
            }
            if a.is_term() && b.is_term() {
                return true; // distinct terminals: the path differs here
            }
            let v = m.var_of(a).min(m.var_of(b));
            let split = |x: NodeRef| {
                if m.var_of(x) == v {
                    let n = m.node(x);
                    (n.lo, n.hi)
                } else {
                    (x, x)
                }
            };
            let (a0, a1) = split(a);
            let (b0, b1) = split(b);
            path.push((v, false));
            if go(m, a0, b0, path, equal) {
                return true;
            }
            path.pop();
            path.push((v, true));
            if go(m, a1, b1, path, equal) {
                return true;
            }
            path.pop();
            equal.insert((a, b));
            false
        }
        let mut path = Vec::new();
        let mut equal = HashSet::new();
        go(self, a, b, &mut path, &mut equal).then_some(path)
    }

    /// Count the distinct interior nodes reachable from `roots` (shared
    /// nodes counted once — the honest size of the shared structure).
    pub fn node_count(&self, roots: &[NodeRef]) -> usize {
        let mut seen = HashSet::new();
        let mut stack: Vec<NodeRef> = roots.iter().copied().filter(|r| !r.is_term()).collect();
        while let Some(r) = stack.pop() {
            if !seen.insert(r) {
                continue;
            }
            let n = self.node(r);
            for c in [n.lo, n.hi] {
                if !c.is_term() && !seen.contains(&c) {
                    stack.push(c);
                }
            }
        }
        seen.len()
    }

    /// Mark-sweep garbage collection: keep exactly the nodes reachable
    /// from `roots`, compacting the arena in stable (allocation) order and
    /// rewriting `roots` in place. All memo caches are dropped (they may
    /// reference collected nodes). Returns the number of nodes collected.
    pub fn gc(&mut self, roots: &mut [NodeRef]) -> usize {
        let before = self.nodes.len();
        let mut live = vec![false; before];
        let mut stack: Vec<usize> = roots
            .iter()
            .filter(|r| !r.is_term())
            .map(|r| r.index())
            .collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            let n = self.nodes[i];
            for c in [n.lo, n.hi] {
                if !c.is_term() && !live[c.index()] {
                    stack.push(c.index());
                }
            }
        }
        // Stable compaction: children always precede parents in the arena
        // (mk allocates bottom-up), so one forward pass remaps everything.
        let mut remap = vec![u32::MAX; before];
        let mut kept = Vec::with_capacity(live.iter().filter(|&&l| l).count());
        for (i, n) in self.nodes.iter().enumerate() {
            if !live[i] {
                continue;
            }
            let fix = |r: NodeRef, remap: &[u32]| {
                if r.is_term() {
                    r
                } else {
                    NodeRef(remap[r.index()])
                }
            };
            let fixed = Node {
                var: n.var,
                lo: fix(n.lo, &remap),
                hi: fix(n.hi, &remap),
            };
            remap[i] = kept.len() as u32;
            kept.push(fixed);
        }
        self.nodes = kept;
        self.unique = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, n)| ((n.var, n.lo, n.hi), i as u32))
            .collect();
        self.memo_bin.clear();
        self.memo_ite.clear();
        for r in roots.iter_mut() {
            if !r.is_term() {
                *r = NodeRef(remap[r.index()]);
            }
        }
        let collected = before - self.nodes.len();
        mapro_obs::counter!("dd.gc.collected").add(collected as u64);
        collected
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    const W: u32 = 8;

    /// Truth table of a boolean BDD over variables 0..W.
    fn table(m: &Mgr, f: NodeRef) -> Vec<bool> {
        (0..1u32 << W)
            .map(|x| m.eval(f, |v| (x >> (W - 1 - v)) & 1 == 1) == 1)
            .collect()
    }

    /// A random boolean function as a union of random cubes.
    fn random_fn(m: &mut Mgr, rng: &mut SmallRng) -> NodeRef {
        let mut acc = NodeRef::FALSE;
        for _ in 0..rng.gen_range(1..5) {
            let mut lits: Vec<(u32, bool)> = Vec::new();
            for v in 0..W {
                if rng.gen_bool(0.4) {
                    lits.push((v, rng.gen_bool(0.5)));
                }
            }
            let c = m.cube(&lits).unwrap();
            acc = m.or(acc, c).unwrap();
        }
        acc
    }

    #[test]
    fn hash_consing_gives_pointer_equality() {
        let mut m = Mgr::new();
        let a = m.cube(&[(0, true), (3, false)]).unwrap();
        let b1 = m.var(0).unwrap();
        let b2 = m.var(3).unwrap();
        let n2 = m.not(b2).unwrap();
        let b = m.and(b1, n2).unwrap();
        assert_eq!(a, b, "structurally equal builds intern to one node");
    }

    #[test]
    fn apply_ops_match_enumeration() {
        let mut rng = SmallRng::seed_from_u64(2019);
        let mut m = Mgr::new();
        for _ in 0..60 {
            let a = random_fn(&mut m, &mut rng);
            let b = random_fn(&mut m, &mut rng);
            let ta = table(&m, a);
            let tb = table(&m, b);
            let and = m.and(a, b).unwrap();
            let or = m.or(a, b).unwrap();
            let diff = m.diff(a, b).unwrap();
            let not = m.not(a).unwrap();
            assert_eq!(
                table(&m, and),
                ta.iter()
                    .zip(&tb)
                    .map(|(&x, &y)| x && y)
                    .collect::<Vec<_>>()
            );
            assert_eq!(
                table(&m, or),
                ta.iter()
                    .zip(&tb)
                    .map(|(&x, &y)| x || y)
                    .collect::<Vec<_>>()
            );
            assert_eq!(
                table(&m, diff),
                ta.iter()
                    .zip(&tb)
                    .map(|(&x, &y)| x && !y)
                    .collect::<Vec<_>>()
            );
            assert_eq!(table(&m, not), ta.iter().map(|&x| !x).collect::<Vec<_>>());
        }
    }

    #[test]
    fn semantic_equality_is_ref_equality() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut m = Mgr::new();
        for _ in 0..40 {
            let a = random_fn(&mut m, &mut rng);
            let b = random_fn(&mut m, &mut rng);
            // De Morgan: ¬(a ∨ b) == ¬a ∧ ¬b, as refs.
            let or = m.or(a, b).unwrap();
            let lhs = m.not(or).unwrap();
            let na = m.not(a).unwrap();
            let nb = m.not(b).unwrap();
            let rhs = m.and(na, nb).unwrap();
            assert_eq!(lhs, rhs);
        }
    }

    #[test]
    fn ite_builds_mtbdds() {
        let mut m = Mgr::new();
        let guard = m.cube(&[(0, true)]).unwrap();
        let t5 = NodeRef::term(5);
        let t9 = NodeRef::term(9);
        let f = m.ite(guard, t5, t9).unwrap();
        assert_eq!(m.eval(f, |_| true), 5);
        assert_eq!(m.eval(f, |_| false), 9);
        // Same-terminal branches collapse.
        let g = m.ite(guard, t5, t5).unwrap();
        assert_eq!(g, t5);
    }

    #[test]
    fn cofactor_matches_enumeration() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut m = Mgr::new();
        for _ in 0..40 {
            let a = random_fn(&mut m, &mut rng);
            let v = rng.gen_range(0..W);
            let val = rng.gen_bool(0.5);
            let c = m.cofactor(a, v, val).unwrap();
            for x in 0..1u32 << W {
                let pinned = if val {
                    x | (1 << (W - 1 - v))
                } else {
                    x & !(1 << (W - 1 - v))
                };
                assert_eq!(
                    m.eval(c, |b| (x >> (W - 1 - b)) & 1 == 1),
                    m.eval(a, |b| (pinned >> (W - 1 - b)) & 1 == 1),
                );
            }
        }
    }

    #[test]
    fn first_sat_is_a_member_preferring_zero() {
        let mut m = Mgr::new();
        assert_eq!(m.first_sat(NodeRef::FALSE), None);
        assert_eq!(m.first_sat(NodeRef::TRUE), Some(vec![]));
        let c = m.cube(&[(1, true), (4, false)]).unwrap();
        let v2 = m.var(2).unwrap();
        let f = m.or(c, v2).unwrap();
        let path = m.first_sat(f).unwrap();
        // The 0-preferring walk lands in the var-2 branch with 1 pinned 0.
        let mut assign = [false; W as usize];
        for &(v, b) in &path {
            assign[v as usize] = b;
        }
        assert_eq!(m.eval(f, |v| assign[v as usize]), 1);
    }

    #[test]
    fn first_diff_finds_a_disagreement_or_proves_equality() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut m = Mgr::new();
        for _ in 0..60 {
            let a = random_fn(&mut m, &mut rng);
            let b = random_fn(&mut m, &mut rng);
            match m.first_diff(a, b) {
                None => assert_eq!(a, b, "None is a proof of equality"),
                Some(path) => {
                    let mut assign = [false; W as usize];
                    for &(v, val) in &path {
                        assign[v as usize] = val;
                    }
                    assert_ne!(
                        m.eval(a, |v| assign[v as usize]),
                        m.eval(b, |v| assign[v as usize]),
                        "returned path must witness the difference"
                    );
                }
            }
        }
    }

    #[test]
    fn node_limit_overflows_recoverably() {
        let mut m = Mgr::with_limit(4);
        let mut acc = NodeRef::FALSE;
        let mut overflowed = false;
        for v in 0..8 {
            let Ok(x) = m.var(v) else {
                overflowed = true;
                break;
            };
            match m.and(x, acc) {
                Ok(_) => {}
                Err(Overflow { limit }) => {
                    assert_eq!(limit, 4);
                    overflowed = true;
                    break;
                }
            }
            acc = x;
        }
        assert!(overflowed, "4-node arena cannot hold 8 variables");
    }

    #[test]
    fn gc_preserves_roots_and_collects_garbage() {
        let mut m = Mgr::new();
        let mut rng = SmallRng::seed_from_u64(17);
        let keep = random_fn(&mut m, &mut rng);
        let keep_table = table(&m, keep);
        for _ in 0..20 {
            let _ = random_fn(&mut m, &mut rng); // garbage
        }
        let before = m.len();
        let mut roots = [keep];
        let collected = m.gc(&mut roots);
        assert!(collected > 0, "garbage was allocated");
        assert_eq!(m.len(), before - collected);
        assert_eq!(
            table(&m, roots[0]),
            keep_table,
            "root survives semantically"
        );
        assert_eq!(
            m.node_count(&[roots[0]]),
            m.len(),
            "arena is exactly the live set"
        );
        // The manager stays usable: hash-consing still canonical.
        let a = m.not(roots[0]).unwrap();
        let b = m.not(roots[0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn node_count_shares_common_structure() {
        let mut m = Mgr::new();
        let a = m.cube(&[(0, true), (1, true)]).unwrap();
        let b = m.cube(&[(1, true)]).unwrap();
        // b is a's subgraph: counting both adds only a's extra root node.
        assert_eq!(m.node_count(&[a, b]), m.node_count(&[a]));
    }
}
