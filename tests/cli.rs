//! End-to-end test of the `mapro` CLI binary: demo → analyze → normalize →
//! check → export, chained through files the way a user would drive it.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // The CLI lives in the mapro-bench package; cargo puts sibling binaries
    // next to the test executable's parent directory.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/
    p.push(format!("mapro{}", std::env::consts::EXE_SUFFIX));
    p
}

fn run(args: &[&str], stdin_file: Option<&std::path::Path>) -> (String, String, bool) {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    if let Some(f) = stdin_file {
        cmd.stdin(std::fs::File::open(f).expect("stdin file"));
    }
    let out = cmd.output().expect("CLI runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn cli_pipeline_end_to_end() {
    if !bin().exists() {
        // Binary not built in this invocation profile; the unit/integration
        // coverage of the underlying functions stands on its own.
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mapro-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("g.json");
    let norm = dir.join("g_norm.json");

    // demo
    let (json, _, ok) = run(
        &[
            "demo",
            "gwlb",
            "--services",
            "5",
            "--backends",
            "4",
            "--seed",
            "7",
        ],
        None,
    );
    assert!(ok);
    std::fs::write(&prog, &json).unwrap();

    // analyze
    let (report, _, ok) = run(&["analyze", prog.to_str().unwrap()], None);
    assert!(ok);
    assert!(report.contains("table t0: 1NF"), "{report}");
    assert!(
        report.contains("3NF violation: (ip_dst) -> (tcp_dst)"),
        "{report}"
    );

    // normalize
    let (json, log, ok) = run(
        &[
            "normalize",
            prog.to_str().unwrap(),
            "--join",
            "goto",
            "--verify",
        ],
        None,
    );
    assert!(ok, "{log}");
    assert!(log.contains("complete: true"), "{log}");
    std::fs::write(&norm, &json).unwrap();

    // check
    let (out, _, ok) = run(
        &["check", prog.to_str().unwrap(), norm.to_str().unwrap()],
        None,
    );
    assert!(ok);
    assert!(out.contains("EQUIVALENT"), "{out}");

    // export
    let (of, _, ok) = run(
        &["export", norm.to_str().unwrap(), "--format", "openflow"],
        None,
    );
    assert!(ok);
    assert!(of.contains("goto_table:"), "{of}");

    // flatten back
    let (flat_json, log, ok) = run(&["flatten", norm.to_str().unwrap()], None);
    assert!(ok, "{log}");
    let flat = dir.join("flat.json");
    std::fs::write(&flat, &flat_json).unwrap();
    let (out, _, ok) = run(
        &["check", prog.to_str().unwrap(), flat.to_str().unwrap()],
        None,
    );
    assert!(ok);
    assert!(out.contains("EQUIVALENT"), "{out}");

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_detects_inequivalence() {
    if !bin().exists() {
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mapro-cli-neq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    let (fig1, _, _) = run(&["demo", "fig1"], None);
    let (vlan, _, _) = run(&["demo", "vlan"], None);
    std::fs::write(&a, fig1).unwrap();
    std::fs::write(&b, vlan).unwrap();
    let (out, _, ok) = run(&["check", a.to_str().unwrap(), b.to_str().unwrap()], None);
    assert!(!ok);
    assert!(
        out.contains("NOT EQUIVALENT") || out.contains("NOT COMPARABLE"),
        "{out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
