//! End-to-end test of the `mapro` CLI binary: demo → analyze → normalize →
//! check → export, chained through files the way a user would drive it.

use std::path::PathBuf;
use std::process::Command;

fn bin() -> PathBuf {
    // The CLI lives in the mapro-bench package; cargo puts sibling binaries
    // next to the test executable's parent directory.
    let mut p = std::env::current_exe().expect("test exe path");
    p.pop(); // deps/
    p.pop(); // debug/
    p.push(format!("mapro{}", std::env::consts::EXE_SUFFIX));
    p
}

fn run(args: &[&str], stdin_file: Option<&std::path::Path>) -> (String, String, bool) {
    let mut cmd = Command::new(bin());
    cmd.args(args);
    if let Some(f) = stdin_file {
        cmd.stdin(std::fs::File::open(f).expect("stdin file"));
    }
    let out = cmd.output().expect("CLI runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn cli_pipeline_end_to_end() {
    if !bin().exists() {
        // Binary not built in this invocation profile; the unit/integration
        // coverage of the underlying functions stands on its own.
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mapro-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("g.json");
    let norm = dir.join("g_norm.json");

    // demo
    let (json, _, ok) = run(
        &[
            "demo",
            "gwlb",
            "--services",
            "5",
            "--backends",
            "4",
            "--seed",
            "7",
        ],
        None,
    );
    assert!(ok);
    std::fs::write(&prog, &json).unwrap();

    // analyze
    let (report, _, ok) = run(&["analyze", prog.to_str().unwrap()], None);
    assert!(ok);
    assert!(report.contains("table t0: 1NF"), "{report}");
    assert!(
        report.contains("3NF violation: (ip_dst) -> (tcp_dst)"),
        "{report}"
    );

    // normalize
    let (json, log, ok) = run(
        &[
            "normalize",
            prog.to_str().unwrap(),
            "--join",
            "goto",
            "--verify",
        ],
        None,
    );
    assert!(ok, "{log}");
    assert!(log.contains("complete: true"), "{log}");
    std::fs::write(&norm, &json).unwrap();

    // check
    let (out, _, ok) = run(
        &["check", prog.to_str().unwrap(), norm.to_str().unwrap()],
        None,
    );
    assert!(ok);
    assert!(out.contains("EQUIVALENT"), "{out}");

    // export
    let (of, _, ok) = run(
        &["export", norm.to_str().unwrap(), "--format", "openflow"],
        None,
    );
    assert!(ok);
    assert!(of.contains("goto_table:"), "{of}");

    // flatten back
    let (flat_json, log, ok) = run(&["flatten", norm.to_str().unwrap()], None);
    assert!(ok, "{log}");
    let flat = dir.join("flat.json");
    std::fs::write(&flat, &flat_json).unwrap();
    let (out, _, ok) = run(
        &["check", prog.to_str().unwrap(), flat.to_str().unwrap()],
        None,
    );
    assert!(ok);
    assert!(out.contains("EQUIVALENT"), "{out}");

    let _ = std::fs::remove_dir_all(&dir);
}

/// Like [`run`] but reporting the raw exit code (for the exit-code
/// contract: 0 clean, 1 findings/failures, 2 usage errors).
fn run_code(bin_path: &std::path::Path, args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(bin_path).args(args).output().expect("runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

fn repro_bin() -> PathBuf {
    let mut p = bin();
    p.pop();
    p.push(format!("repro{}", std::env::consts::EXE_SUFFIX));
    p
}

#[test]
fn cli_lint_reports_and_exit_codes() {
    if !bin().exists() {
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mapro-cli-lint-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("vlan.json");
    let (vlan, _, ok) = run(&["demo", "vlan"], None);
    assert!(ok);
    std::fs::write(&prog, vlan).unwrap();
    let path = prog.to_str().unwrap();

    // Clean of error-severity findings: exit 0, human summary on stdout.
    let (out, _, code) = run_code(&bin(), &["lint", path]);
    assert_eq!(code, Some(0), "{out}");
    assert!(out.contains("findings:"), "{out}");
    assert!(out.contains("action-to-match-dependency"), "{out}");

    // JSON is the machine interface.
    let (out, _, code) = run_code(&bin(), &["lint", path, "--format", "json"]);
    assert_eq!(code, Some(0));
    let parsed = serde_json::parse(&out).expect("valid JSON");
    assert!(parsed.get("diagnostics").is_some(), "{out}");

    // --deny warn promotes the Fig. 3 warning to an error: exit 1.
    let (out, _, code) = run_code(&bin(), &["lint", path, "--deny", "warn"]);
    assert_eq!(code, Some(1), "{out}");

    // ...unless the lint is allowed away.
    let (_, _, code) = run_code(
        &bin(),
        &[
            "lint",
            path,
            "--deny",
            "warn",
            "-A",
            "action-to-match-dependency",
            "-A",
            "bcnf-dependency",
            "-A",
            "overlapping-entries",
        ],
    );
    assert_eq!(code, Some(0));

    // -D promotes a single lint to error severity.
    let (_, _, code) = run_code(&bin(), &["lint", path, "-D", "action-to-match-dependency"]);
    assert_eq!(code, Some(1));

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_usage_errors_exit_2_with_one_line() {
    if !bin().exists() {
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mapro-cli-usage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("f.json");
    let (fig1, _, _) = run(&["demo", "fig1"], None);
    std::fs::write(&prog, fig1).unwrap();
    let path = prog.to_str().unwrap();

    let cases: &[&[&str]] = &[
        &[],
        &["bogus"],
        &["demo", "bogus"],
        &["lint", path, "--format", "yaml"],
        &["lint", path, "-D", "not-a-lint"],
        &["lint", path, "-A"],
        &["lint", path, "--deny", "error"],
        &["normalize", path, "--join", "bogus"],
        &["normalize", path, "--target", "4nf"],
        &["export", path, "--format", "xml"],
        &["show", "--threads", "zero"],
    ];
    for args in cases {
        let (_, err, code) = run_code(&bin(), args);
        assert_eq!(code, Some(2), "mapro {args:?}: {err}");
        assert_eq!(
            err.trim_end().lines().count(),
            1,
            "mapro {args:?} usage message not one line: {err:?}"
        );
    }

    if repro_bin().exists() {
        for args in [&["--experiment", "bogus"][..], &["--bogus-flag"][..]] {
            let (_, err, code) = run_code(&repro_bin(), args);
            assert_eq!(code, Some(2), "repro {args:?}: {err}");
            assert_eq!(
                err.trim_end().lines().count(),
                1,
                "repro {args:?} usage message not one line: {err:?}"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_replay_seed_reproducible_and_engine_contract() {
    if !bin().exists() {
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mapro-cli-replay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let prog = dir.join("fig1.json");
    let (fig1, _, ok) = run(&["demo", "fig1"], None);
    assert!(ok);
    std::fs::write(&prog, fig1).unwrap();
    let path = prog.to_str().unwrap();

    let digest_of = |extra: &[&str]| -> String {
        let mut args = vec!["replay", path, "--packets", "2000"];
        args.extend_from_slice(extra);
        let (out, err, code) = run_code(&bin(), &args);
        assert_eq!(code, Some(0), "replay {extra:?}: {err}");
        out.lines()
            .find(|l| l.trim_start().starts_with("digest:"))
            .unwrap_or_else(|| panic!("no digest line in {out}"))
            .to_owned()
    };

    // `--seed` must reach the trace generator: same seed twice is
    // bit-identical, a different seed draws different traffic.
    let a = digest_of(&["--seed", "7"]);
    let b = digest_of(&["--seed", "7"]);
    let c = digest_of(&["--seed", "8"]);
    assert_eq!(a, b, "same seed must replay identically");
    assert_ne!(a, c, "different seeds must draw different traffic");

    // All three execution tiers agree on the replay digest (the interp
    // baseline uses the eswitch model the tiers specialize).
    let interp = digest_of(&["--seed", "7", "--switch", "eswitch"]);
    let compiled = digest_of(&["--seed", "7", "--engine", "compiled"]);
    let cached = digest_of(&["--seed", "7", "--engine", "cached"]);
    assert_eq!(interp, compiled, "compiled tier diverged from interpreter");
    assert_eq!(interp, cached, "cached tier diverged from interpreter");

    // The cached tier reports its megaflow hit rate.
    let (out, _, code) = run_code(
        &bin(),
        &["replay", path, "--engine", "cached", "--packets", "2000"],
    );
    assert_eq!(code, Some(0));
    assert!(out.contains("megaflow:"), "{out}");
    assert!(out.contains("hit rate"), "{out}");

    // Usage errors: exit 2, one line on stderr.
    let cases: &[&[&str]] = &[
        &["replay", path, "--seed", "NaN"],
        &["replay", path, "--engine", "bogus"],
        &["replay", path, "--engine", "compiled", "--switch", "ovs"],
    ];
    for args in cases {
        let (_, err, code) = run_code(&bin(), args);
        assert_eq!(code, Some(2), "mapro {args:?}: {err}");
        assert_eq!(
            err.trim_end().lines().count(),
            1,
            "mapro {args:?} usage message not one line: {err:?}"
        );
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cli_detects_inequivalence() {
    if !bin().exists() {
        eprintln!("skipping: {} not built", bin().display());
        return;
    }
    let dir = std::env::temp_dir().join(format!("mapro-cli-neq-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let a = dir.join("a.json");
    let b = dir.join("b.json");
    let (fig1, _, _) = run(&["demo", "fig1"], None);
    let (vlan, _, _) = run(&["demo", "vlan"], None);
    std::fs::write(&a, fig1).unwrap();
    std::fs::write(&b, vlan).unwrap();
    let (out, _, ok) = run(&["check", a.to_str().unwrap(), b.to_str().unwrap()], None);
    assert!(!ok);
    assert!(
        out.contains("NOT EQUIVALENT") || out.contains("NOT COMPARABLE"),
        "{out}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
