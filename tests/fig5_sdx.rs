//! E10 — Fig. 5 / appendix: decomposition beyond 3NF.

use mapro::fd::{join_dependency_holds, mine_fds, Fd};
use mapro::normalize::{chain_components_naive, decompose_jd};
use mapro::prelude::*;

#[test]
fn sdx_split_is_a_join_dependency() {
    let s = Sdx::fig5();
    let t = s.universal.table("sdx").unwrap();
    assert!(join_dependency_holds(t, &s.components));
}

#[test]
fn split_is_not_fd_derivable() {
    // "This decomposition belongs to the fourth and the fifth normal forms
    // as it cannot be derived from functional dependencies alone."
    let s = Sdx::fig5();
    let t = s.universal.table("sdx").unwrap();
    let mined = mine_fds(t, &s.universal.catalog);
    let u = &mined.fds.universe;
    // Nothing smaller than the full match key determines fwd.
    assert!(!mined
        .fds
        .implies(Fd::new(u.encode(&[s.member]), u.encode(&[s.fwd]))));
    assert!(!mined
        .fds
        .implies(Fd::new(u.encode(&[s.ip_src]), u.encode(&[s.fwd]))));
    // (member, ip_src) → fwd *does* hold — that's the inbound table — but
    // member itself is an action, so the decomposition needs the Fig. 5c
    // metadata machinery rather than a Theorem-1-style split.
    assert!(mined
        .fds
        .implies(Fd::new(u.encode(&[s.member, s.ip_src]), u.encode(&[s.fwd]))));
}

#[test]
fn naive_chain_order_dependent_and_misroutes() {
    let s = Sdx::fig5();
    let naive = chain_components_naive(&s.universal, "sdx", &s.components).unwrap();
    let last = naive.tables.last().unwrap();
    assert!(!last.order_independence(&naive.catalog).is_empty());
    let r = check_equivalent(&s.universal, &naive, &EquivConfig::default()).unwrap();
    match r {
        EquivOutcome::Counterexample(cx) => {
            // Both pipelines deliver *something*; they just disagree.
            assert_ne!(cx.left.observable(), cx.right.observable());
        }
        _ => panic!("naive chain must be incorrect"),
    }
}

#[test]
fn all_metadata_pipeline_correct_and_deferred_actions_fire_late() {
    let s = Sdx::fig5();
    let tagged = decompose_jd(&s.universal, "sdx", &s.components).unwrap();
    assert_eq!(tagged.tables.len(), 3);
    assert_equivalent(&s.universal, &tagged);
    // `member` is not determined by the announcement stage alone (dst = P1
    // admits both C and D), so it must fire at a later stage.
    let stage1 = &tagged.tables[0];
    assert!(
        !stage1.action_attrs.contains(&s.member),
        "member must be deferred past the announcement stage"
    );
}

#[test]
fn tagged_pipeline_balances_both_members() {
    let s = Sdx::fig5();
    let tagged = decompose_jd(&s.universal, "sdx", &s.components).unwrap();
    let p1 = mapro::packet::ipv4("203.0.113.0") as u64;
    let p2 = mapro::packet::ipv4("198.51.100.0") as u64;
    let cases = [
        (p1, 80u64, 0u64, "c1"),
        (p1, 80, 1 << 31, "c2"),
        (p1, 22, 0, "d1"),
        (p1, 22, 1 << 31, "d2"),
        (p2, 80, 0, "d1"),
        (p2, 22, 1 << 31, "d2"),
    ];
    for (dst, port, src, want) in cases {
        let pkt = Packet::from_fields(
            &tagged.catalog,
            &[("ip_dst", dst), ("tcp_dst", port), ("ip_src", src)],
        );
        let v = tagged.run(&pkt).unwrap();
        assert_eq!(
            v.output.as_deref(),
            Some(want),
            "{dst}:{port} from {src:#x}"
        );
    }
}

#[test]
fn lossy_splits_are_refused() {
    use mapro::normalize::JdError;
    let s = Sdx::fig5();
    let bad = vec![vec![s.ip_dst, s.member], vec![s.tcp_dst, s.ip_src, s.fwd]];
    assert_eq!(
        decompose_jd(&s.universal, "sdx", &bad),
        Err(JdError::JoinDependencyDoesNotHold)
    );
}
