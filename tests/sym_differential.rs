//! Differential harness: the symbolic atom-based equivalence engine must
//! return the *same verdict* as the enumerative oracle on every workload —
//! the paper pipelines, their normalized forms, and random tables — and
//! every symbolic counterexample must be confirmed by directly evaluating
//! both pipelines on the reported packet.
//!
//! CI runs this file at `MAPRO_THREADS=1` and `=4` and diffs the verdict
//! digests, so everything asserted here must be thread-count independent.

use mapro::prelude::*;
use mapro_sym::{check_symbolic, SymConfig};
use mapro_workloads::{random_table, RandomSpec};
use proptest::prelude::*;

/// Run both engines on the same pair; assert they agree on equivalence,
/// that each reports its own method honestly, and that any counterexample
/// either engine produces is real. Returns the shared verdict.
fn engines_agree(l: &Pipeline, r: &Pipeline, ctx: &str) -> bool {
    let enum_cfg = EquivConfig {
        mode: EquivMode::Enumerate,
        ..EquivConfig::default()
    };
    let e = mapro::core::check_equivalent(l, r, &enum_cfg)
        .unwrap_or_else(|err| panic!("{ctx}: enumerative engine errored: {err}"));
    let s = check_symbolic(l, r, &SymConfig::default())
        .unwrap_or_else(|err| panic!("{ctx}: symbolic engine errored: {err}"));
    assert_eq!(
        e.is_equivalent(),
        s.is_equivalent(),
        "{ctx}: engines disagree — enumerative says {e:?}, symbolic says {s:?}"
    );
    if let EquivOutcome::Equivalent {
        method, exhaustive, ..
    } = &s
    {
        assert_eq!(*method, CheckMethod::Symbolic, "{ctx}: wrong method tag");
        assert!(*exhaustive, "{ctx}: symbolic verdicts are always complete");
    }
    if let EquivOutcome::Equivalent { method, .. } = &e {
        assert_eq!(*method, CheckMethod::Exhaustive, "{ctx}: wrong method tag");
    }
    for (engine, out) in [("enumerative", &e), ("symbolic", &s)] {
        if let EquivOutcome::Counterexample(cx) = out {
            confirm_counterexample(l, r, cx, &format!("{ctx} ({engine})"));
        }
    }
    s.is_equivalent()
}

/// A counterexample is only as good as the packet it names: re-run both
/// pipelines on it and require observably different behavior, matching
/// the verdicts recorded in the report.
fn confirm_counterexample(l: &Pipeline, r: &Pipeline, cx: &mapro::core::Counterexample, ctx: &str) {
    let lv = l
        .run_indexed(&cx.packet, &l.name_index())
        .unwrap_or_else(|e| panic!("{ctx}: cx packet fails on left: {e}"));
    let rv = r
        .run_indexed(&cx.packet, &r.name_index())
        .unwrap_or_else(|e| panic!("{ctx}: cx packet fails on right: {e}"));
    assert_ne!(
        lv.observable(),
        rv.observable(),
        "{ctx}: reported counterexample does not actually distinguish the pipelines"
    );
    assert_eq!(
        lv.observable(),
        cx.left.observable(),
        "{ctx}: stale left verdict"
    );
    assert_eq!(
        rv.observable(),
        cx.right.observable(),
        "{ctx}: stale right verdict"
    );
}

/// Rename the first symbolic output parameter found in the pipeline —
/// guaranteed observable divergence because every row of these workloads
/// is reachable (exact, deduplicated matches).
fn perturb_one_output(p: &Pipeline) -> Pipeline {
    let mut q = p.clone();
    'edit: for t in &mut q.tables {
        for e in &mut t.entries {
            for v in &mut e.actions {
                if let Value::Sym(s) = v {
                    *v = Value::sym(format!("{s}-perturbed"));
                    break 'edit;
                }
            }
        }
    }
    q
}

#[test]
fn paper_workloads_agree_on_both_engines() {
    let g = Gwlb::fig1();
    for join in [JoinKind::Goto, JoinKind::Metadata, JoinKind::Rematch] {
        let n = g.normalized(join).unwrap();
        assert!(engines_agree(
            &g.universal,
            &n,
            &format!("gwlb fig1 {join:?}")
        ));
    }

    let l3 = L3::fig2();
    let n = normalize(&l3.universal, &NormalizeOpts::default());
    assert!(engines_agree(
        &l3.universal,
        &n.pipeline,
        "l3 fig2 normalized"
    ));

    let vlan = Vlan::fig3();
    let n = normalize(&vlan.universal, &NormalizeOpts::default());
    assert!(engines_agree(
        &vlan.universal,
        &n.pipeline,
        "vlan fig3 normalized"
    ));

    let sdx = Sdx::fig5();
    let n = normalize(&sdx.universal, &NormalizeOpts::default());
    assert!(engines_agree(
        &sdx.universal,
        &n.pipeline,
        "sdx fig5 normalized"
    ));
}

#[test]
fn paper_workload_perturbations_caught_by_both_engines() {
    for (name, p) in [
        ("gwlb fig1", Gwlb::fig1().universal),
        ("l3 fig2", L3::fig2().universal),
        ("vlan fig3", Vlan::fig3().universal),
        ("sdx fig5", Sdx::fig5().universal),
    ] {
        let bad = perturb_one_output(&p);
        assert!(
            !engines_agree(&p, &bad, &format!("{name} perturbed")),
            "{name}: perturbation went undetected"
        );
    }
}

#[test]
fn auto_mode_front_door_reports_symbolic() {
    // The prelude `check_equivalent` is mapro-sym's mode-dispatching front
    // door; on a fully supported pipeline the default `Auto` mode must
    // decide symbolically, not silently fall back.
    let g = Gwlb::fig1();
    let n = g.normalized(JoinKind::Goto).unwrap();
    let out = check_equivalent(&g.universal, &n, &EquivConfig::default()).unwrap();
    match out {
        EquivOutcome::Equivalent { method, .. } => assert_eq!(method, CheckMethod::Symbolic),
        other => panic!("expected equivalence, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random tables, their normalized forms, and a planted divergence:
    /// both engines must agree on all three pairings.
    #[test]
    fn random_tables_agree_on_both_engines(
        seed in 0u64..2000,
        fields in 2usize..4,
        rows in 4usize..12,
    ) {
        let spec = RandomSpec { fields, rows, domain: 6, planted: vec![(0, 1)] };
        let rt = random_table(&spec, seed);

        // Self-check: trivially equivalent, both engines.
        prop_assert!(engines_agree(&rt.pipeline, &rt.pipeline, "random self"));

        // Normalization preserves semantics — both engines must concur.
        let n = normalize(&rt.pipeline, &NormalizeOpts::default());
        prop_assert!(engines_agree(&rt.pipeline, &n.pipeline, "random normalized"));

        // Planted divergence: both engines must find it, and the symbolic
        // counterexample is confirmed by direct evaluation inside
        // `engines_agree`.
        let bad = perturb_one_output(&rt.pipeline);
        prop_assert!(!engines_agree(&rt.pipeline, &bad, "random perturbed"));
    }
}
