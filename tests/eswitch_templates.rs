//! E11 — the §5 ESwitch mechanism: per-table template specialization.

use mapro::classifier::{table_shape, TableShape, TableView};
use mapro::prelude::*;
use mapro_bench::{eswitch_templates, BenchConfig};

#[test]
fn universal_table_only_fits_the_wildcard_template() {
    // "The universal table can be encoded only with the slowest wildcard
    // matching template."
    let g = Gwlb::random(20, 8, 2019);
    let t = g.universal.table("t0").unwrap();
    let view = TableView::of(t, &g.universal.catalog);
    assert_eq!(table_shape(&view), TableShape::General);
}

#[test]
fn decomposed_stages_fit_exact_and_lpm_templates() {
    // "the first table will be compiled to the very fast exact-match
    // template and the second table to an efficient longest-prefix-
    // matching template".
    let g = Gwlb::random(20, 8, 2019);
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let t0 = TableView::of(goto.table("t0").unwrap(), &goto.catalog);
    assert!(matches!(table_shape(&t0), TableShape::AllExact { .. }));
    for sub in &goto.tables[1..] {
        let v = TableView::of(sub, &goto.catalog);
        assert!(
            matches!(table_shape(&v), TableShape::SinglePrefix { .. }),
            "table {}",
            sub.name
        );
    }
}

#[test]
fn template_report_covers_all_representations() {
    let rows = eswitch_templates(&BenchConfig::default());
    assert_eq!(rows.len(), 4);
    let uni = rows.iter().find(|r| r.repr == "universal").unwrap();
    assert!(uni.templates.iter().all(|t| t.ends_with(":linear")));
    let goto = rows.iter().find(|r| r.repr == "goto").unwrap();
    assert_eq!(goto.templates.len(), 21); // T0 + 20 per-tenant tables
                                          // Metadata join: the second stage matches (tag, ip_src) — two active
                                          // columns with prefixes — so it stays on the generic template. The
                                          // join abstraction matters to the datapath, not just normalization.
    let meta = rows.iter().find(|r| r.repr == "metadata").unwrap();
    assert!(meta.templates.iter().any(|t| t.ends_with(":exact")));
    assert!(meta.templates.iter().any(|t| t.ends_with(":linear")));
}

#[test]
fn specialized_templates_agree_with_reference_semantics() {
    use mapro::classifier::{build_specialized, TemplateKind};
    let g = Gwlb::random(10, 4, 5);
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let trace = mapro::packet::generate(&g.universal.catalog, &g.trace_spec(), 1_000, 6);
    for table in &goto.tables {
        let view = TableView::of(table, &goto.catalog);
        let spec = build_specialized(&view, TemplateKind::Linear);
        for (_, pkt) in &trace.packets {
            let key: Vec<u64> = table.match_attrs.iter().map(|&a| pkt.get(a)).collect();
            assert_eq!(
                spec.lookup(&key),
                view.linear_lookup(&key),
                "table {} key {key:?}",
                table.name
            );
        }
    }
}
