//! E14 acceptance: the fault sweep is deterministic under a fixed seed,
//! reconciliation converges in every cell, and the goto-normalized form's
//! goodput advantage over the universal table *grows* with the fault rate
//! (update amplification × fault probability → retries → stalls).

use mapro_bench::{faults, BenchConfig};

const RATES: [f64; 4] = [0.0, 0.1, 0.2, 0.3];

#[test]
fn fault_sweep_deterministic_under_fixed_seed() {
    let cfg = BenchConfig::default();
    let a = faults(&cfg, &RATES);
    let b = faults(&cfg, &RATES);
    assert_eq!(a, b, "same seed must reproduce the sweep bit-for-bit");
}

#[test]
fn normalized_goodput_gap_grows_with_fault_rate() {
    let cfg = BenchConfig::default();
    let rows = faults(&cfg, &RATES);
    assert_eq!(rows.len(), 2 * RATES.len());
    let mut prev_gap = f64::NEG_INFINITY;
    for pair in rows.chunks(2) {
        let (uni, goto) = (&pair[0], &pair[1]);
        assert_eq!(uni.repr, "universal");
        assert_eq!(goto.repr, "goto");
        assert_eq!(uni.fault_rate, goto.fault_rate);
        assert!(
            goto.goodput_mpps >= uni.goodput_mpps,
            "at p={} goto {} must beat universal {}",
            uni.fault_rate,
            goto.goodput_mpps,
            uni.goodput_mpps
        );
        let gap = goto.goodput_mpps - uni.goodput_mpps;
        assert!(
            gap > prev_gap,
            "gap must grow with the fault rate: {gap} after {prev_gap} at p={}",
            uni.fault_rate
        );
        prev_gap = gap;
    }
}

#[test]
fn every_cell_reconciles_and_restarts_fire() {
    let cfg = BenchConfig::default();
    let rows = faults(&cfg, &RATES);
    for r in &rows {
        assert!(
            r.reconciled,
            "switch must converge to intended state at p={} ({})",
            r.fault_rate, r.repr
        );
        assert!(
            r.restarts > 0,
            "the sweep must actually inject restarts at p={} ({})",
            r.fault_rate,
            r.repr
        );
    }
    // Faults must be visibly at work: the lossy cells cost retries.
    assert!(rows
        .iter()
        .filter(|r| r.fault_rate > 0.0)
        .all(|r| r.retries > 0));
}
