//! E2 — Fig. 2: the L3 pipeline's normalization chain.

use mapro::prelude::*;

#[test]
fn fig2a_violates_2nf_via_dmac_dependency() {
    let l3 = L3::fig2();
    let t = l3.universal.table("l3").unwrap();
    let r = analyze(t, &l3.universal.catalog);
    // mod_dmac → mod_smac and mod_dmac → out hold (next-hop actions are a
    // function of the next-hop), and dst is the only match-side key.
    let u = &r.fds.universe;
    assert!(r.fds.implies(mapro::fd::Fd::new(
        u.encode(&[l3.mod_dmac]),
        u.encode(&[l3.mod_smac, l3.out])
    )));
    assert!(pipeline_level(&l3.universal) < NfLevel::Third);
}

#[test]
fn fig2b_decomposition_reproduces_group_tables() {
    let l3 = L3::fig2();
    // Decompose along mod_dmac → (mod_ttl, mod_smac, out): the second
    // stage is the OpenFlow group-table / neighbor-table abstraction (§3).
    let p = decompose(
        &l3.universal,
        "l3",
        &[l3.mod_dmac],
        &[l3.mod_ttl, l3.mod_smac, l3.out],
        &DecomposeOpts::default(),
    )
    .unwrap();
    assert_eq!(p.tables.len(), 2);
    // Three distinct next-hops → three group entries.
    assert_eq!(p.tables[1].len(), 3);
    assert_eq!(p.tables[1].action_attrs.len(), 4);
    assert_equivalent(&l3.universal, &p);
}

#[test]
fn fig2c_full_3nf_chain() {
    let l3 = L3::fig2();
    let factored = factor_constants(
        &l3.universal,
        "l3",
        Some(&[l3.eth_type, l3.mod_ttl]),
        FactorPlacement::Before,
    )
    .unwrap();
    let n = normalize(&factored, &NormalizeOpts::default());
    assert!(n.complete(), "skipped: {:?}", n.skipped);
    assert!(pipeline_level(&n.pipeline) >= NfLevel::Third);
    assert_equivalent(&l3.universal, &n.pipeline);
    // The chain has at least the Cartesian stage plus two join stages.
    assert!(n.pipeline.tables.len() >= 3, "{}", n.pipeline.tables.len());
}

#[test]
fn cartesian_product_commutes() {
    // §3: "we could as well append T0 at the end of the pipeline or
    // anywhere in between". Constant actions may trail; constant matches
    // must lead (and the library enforces that soundness condition).
    let l3 = L3::fig2();
    let leading = factor_constants(
        &l3.universal,
        "l3",
        Some(&[l3.eth_type, l3.mod_ttl]),
        FactorPlacement::Before,
    )
    .unwrap();
    let trailing = factor_constants(
        &l3.universal,
        "l3",
        Some(&[l3.mod_ttl]),
        FactorPlacement::After,
    )
    .unwrap();
    assert_equivalent(&l3.universal, &leading);
    assert_equivalent(&l3.universal, &trailing);
    assert_equivalent(&leading, &trailing);
}

#[test]
fn normalization_shrinks_l3_encoding() {
    // With shared next-hops the normalized form states each next-hop's
    // actions once.
    let l3 = L3::random(48, 6, 3, 99);
    let n = normalize(&l3.universal, &NormalizeOpts::default());
    assert!(n.complete());
    let before = SizeReport::of(&l3.universal).fields();
    let after = SizeReport::of(&n.pipeline).fields();
    assert!(
        after < before,
        "normalization should deduplicate: {after} !< {before}"
    );
    assert_equivalent(&l3.universal, &n.pipeline);
}

#[test]
fn denormalize_roundtrip_restores_semantics() {
    let l3 = L3::fig2();
    let n = normalize(&l3.universal, &NormalizeOpts::default());
    let flat = flatten(&n.pipeline, "flat").unwrap();
    let flat_pipe = Pipeline::single(n.pipeline.catalog.clone(), flat);
    assert_equivalent(&l3.universal, &flat_pipe);
}
