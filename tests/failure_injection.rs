//! Failure injection: malformed inputs must produce errors, never panics
//! or silent corruption.

use mapro::control::{apply_prefix, RuleUpdate, UpdatePlan};
use mapro::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Frame parsing never panics on arbitrary bytes.
    #[test]
    fn frame_parse_total(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = mapro::packet::Frame::parse(&bytes);
    }

    /// Frames emitted from arbitrary (well-typed) headers re-parse to the
    /// same headers.
    #[test]
    fn frame_roundtrip(
        src in any::<u32>(), dst in any::<u32>(),
        sport in any::<u16>(), dport in any::<u16>(),
        ttl in any::<u8>(), vlan in proptest::option::of(0u16..4096),
    ) {
        let f = mapro::packet::Frame {
            ip_src: src, ip_dst: dst, sport, dport, ttl, vlan,
            ..Default::default()
        };
        let g = mapro::packet::Frame::parse(&f.emit()).unwrap();
        prop_assert_eq!(g.ip_src, src);
        prop_assert_eq!(g.ip_dst, dst);
        prop_assert_eq!(g.sport, sport);
        prop_assert_eq!(g.dport, dport);
        prop_assert_eq!(g.ttl, ttl);
        prop_assert_eq!(g.vlan, vlan);
    }

    /// Applying any prefix of a valid plan either succeeds or reports a
    /// structured error — and prefix application composes (applying k then
    /// checking equals applying k in one go).
    #[test]
    fn partial_update_application_is_consistent(k in 0usize..6, port in 1024u16..9999) {
        let g = Gwlb::fig1();
        let plan = g.move_service_port(&g.universal, 1, port);
        let k = k.min(plan.updates.len());
        let state = apply_prefix(&g.universal, &plan, k).unwrap();
        // Re-deriving via individual updates matches.
        let mut step = g.universal.clone();
        for u in plan.updates.iter().take(k) {
            mapro::control::apply_update(&mut step, u).unwrap();
        }
        prop_assert_eq!(state, step);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The .mat parser is total: arbitrary text yields Ok or a ParseError
    /// with a line number, never a panic.
    #[test]
    fn mat_parser_total(src in "\\PC{0,200}") {
        let _ = mapro::core::parse_program(&src);
    }

    /// Line-noise around a valid program still errors with a line number
    /// pointing into the noise.
    #[test]
    fn mat_parser_locates_errors(noise in "[a-z]{1,8}") {
        let src = format!("field f 8\ntable t [f | ]\n  1 |\n{noise} {noise} {noise}");
        match mapro::core::parse_program(&src) {
            Ok(_) => {} // the noise may accidentally be a valid entry? no: arity
            Err(e) => prop_assert_eq!(e.line, 4),
        }
    }
}

#[test]
fn evaluator_surfaces_goto_cycles_not_hangs() {
    use mapro::core::{ActionSem, Catalog, EvalError, Table, Value};
    let mut c = Catalog::new();
    let f = c.field("f", 8);
    let goto = c.action("goto", ActionSem::Goto);
    let mut a = Table::new("a", vec![f], vec![goto]);
    a.row(vec![Value::Any], vec![Value::sym("b")]);
    let mut b = Table::new("b", vec![f], vec![goto]);
    b.row(vec![Value::Any], vec![Value::sym("a")]);
    let p = Pipeline::new(c, vec![a, b], "a");
    let pkt = Packet::zero(&p.catalog);
    assert!(matches!(p.run(&pkt), Err(EvalError::GotoCycle { .. })));
    // Flatten and the datapath compiler handle it too.
    assert!(flatten(&p, "flat").is_err());
}

#[test]
fn update_plan_against_wrong_representation_fails_cleanly() {
    // A plan compiled for the universal table names entries that do not
    // exist in the goto form; application must error, not corrupt.
    let g = Gwlb::fig1();
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let uni_plan = g.move_service_port(&g.universal, 0, 9999);
    let mut target = goto.clone();
    let mut failed = false;
    for u in &uni_plan.updates {
        if mapro::control::apply_update(&mut target, u).is_err() {
            failed = true;
        }
    }
    assert!(failed, "cross-representation plan should not apply cleanly");
}

#[test]
fn empty_and_degenerate_plans() {
    let g = Gwlb::fig1();
    let empty = UpdatePlan {
        intent: "noop".into(),
        updates: vec![],
    };
    let state = apply_prefix(&g.universal, &empty, 0).unwrap();
    assert_eq!(state, g.universal);
    let inv = g.one_port_per_ip();
    let rep = mapro::control::exposure(&g.universal, &empty, &&inv).unwrap();
    assert!(rep.safe());
}

#[test]
fn deleting_all_entries_yields_drop_everything() {
    let g = Gwlb::fig1();
    let mut p = g.universal.clone();
    let all: Vec<RuleUpdate> = p
        .table("t0")
        .unwrap()
        .entries
        .iter()
        .map(|e| RuleUpdate::Delete {
            table: "t0".into(),
            matches: e.matches.clone(),
        })
        .collect();
    for u in &all {
        mapro::control::apply_update(&mut p, u).unwrap();
    }
    assert_eq!(p.table("t0").unwrap().len(), 0);
    let pkt = Packet::from_fields(
        &p.catalog,
        &[
            ("ip_dst", mapro::packet::ipv4("192.0.2.1") as u64),
            ("tcp_dst", 80),
        ],
    );
    assert!(p.run(&pkt).unwrap().dropped);
}
