//! Failure injection: malformed inputs must produce errors, never panics
//! or silent corruption.

use mapro::control::{apply_prefix, RuleUpdate, UpdatePlan};
use mapro::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Frame parsing never panics on arbitrary bytes.
    #[test]
    fn frame_parse_total(bytes in proptest::collection::vec(any::<u8>(), 0..96)) {
        let _ = mapro::packet::Frame::parse(&bytes);
    }

    /// Frames emitted from arbitrary (well-typed) headers re-parse to the
    /// same headers.
    #[test]
    fn frame_roundtrip(
        src in any::<u32>(), dst in any::<u32>(),
        sport in any::<u16>(), dport in any::<u16>(),
        ttl in any::<u8>(), vlan in proptest::option::of(0u16..4096),
    ) {
        let f = mapro::packet::Frame {
            ip_src: src, ip_dst: dst, sport, dport, ttl, vlan,
            ..Default::default()
        };
        let g = mapro::packet::Frame::parse(&f.emit()).unwrap();
        prop_assert_eq!(g.ip_src, src);
        prop_assert_eq!(g.ip_dst, dst);
        prop_assert_eq!(g.sport, sport);
        prop_assert_eq!(g.dport, dport);
        prop_assert_eq!(g.ttl, ttl);
        prop_assert_eq!(g.vlan, vlan);
    }

    /// Applying any prefix of a valid plan either succeeds or reports a
    /// structured error — and prefix application composes (applying k then
    /// checking equals applying k in one go).
    #[test]
    fn partial_update_application_is_consistent(k in 0usize..6, port in 1024u16..9999) {
        let g = Gwlb::fig1();
        let plan = g.move_service_port(&g.universal, 1, port);
        let k = k.min(plan.updates.len());
        let state = apply_prefix(&g.universal, &plan, k).unwrap();
        // Re-deriving via individual updates matches.
        let mut step = g.universal.clone();
        for u in plan.updates.iter().take(k) {
            mapro::control::apply_update(&mut step, u).unwrap();
        }
        prop_assert_eq!(state, step);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The .mat parser is total: arbitrary text yields Ok or a ParseError
    /// with a line number, never a panic.
    #[test]
    fn mat_parser_total(src in "\\PC{0,200}") {
        let _ = mapro::core::parse_program(&src);
    }

    /// Line-noise around a valid program still errors with a line number
    /// pointing into the noise.
    #[test]
    fn mat_parser_locates_errors(noise in "[a-z]{1,8}") {
        let src = format!("field f 8\ntable t [f | ]\n  1 |\n{noise} {noise} {noise}");
        match mapro::core::parse_program(&src) {
            Ok(_) => {} // the noise may accidentally be a valid entry? no: arity
            Err(e) => prop_assert_eq!(e.line, 4),
        }
    }
}

#[test]
fn evaluator_surfaces_goto_cycles_not_hangs() {
    use mapro::core::{ActionSem, Catalog, EvalError, Table, Value};
    let mut c = Catalog::new();
    let f = c.field("f", 8);
    let goto = c.action("goto", ActionSem::Goto);
    let mut a = Table::new("a", vec![f], vec![goto]);
    a.row(vec![Value::Any], vec![Value::sym("b")]);
    let mut b = Table::new("b", vec![f], vec![goto]);
    b.row(vec![Value::Any], vec![Value::sym("a")]);
    let p = Pipeline::new(c, vec![a, b], "a");
    let pkt = Packet::zero(&p.catalog);
    assert!(matches!(p.run(&pkt), Err(EvalError::GotoCycle { .. })));
    // Flatten and the datapath compiler handle it too.
    assert!(flatten(&p, "flat").is_err());
}

#[test]
fn update_plan_against_wrong_representation_fails_cleanly() {
    // A plan compiled for the universal table names entries that do not
    // exist in the goto form; application must error, not corrupt.
    let g = Gwlb::fig1();
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let uni_plan = g.move_service_port(&g.universal, 0, 9999);
    let mut target = goto.clone();
    let mut failed = false;
    for u in &uni_plan.updates {
        if mapro::control::apply_update(&mut target, u).is_err() {
            failed = true;
        }
    }
    assert!(failed, "cross-representation plan should not apply cleanly");
}

#[test]
fn empty_and_degenerate_plans() {
    let g = Gwlb::fig1();
    let empty = UpdatePlan {
        intent: "noop".into(),
        updates: vec![],
    };
    let state = apply_prefix(&g.universal, &empty, 0).unwrap();
    assert_eq!(state, g.universal);
    let inv = g.one_port_per_ip();
    let rep = mapro::control::exposure(&g.universal, &empty, &&inv).unwrap();
    assert!(rep.safe());
}

#[test]
fn deleting_all_entries_yields_drop_everything() {
    let g = Gwlb::fig1();
    let mut p = g.universal.clone();
    let all: Vec<RuleUpdate> = p
        .table("t0")
        .unwrap()
        .entries
        .iter()
        .map(|e| RuleUpdate::Delete {
            table: "t0".into(),
            matches: e.matches.clone(),
        })
        .collect();
    for u in &all {
        mapro::control::apply_update(&mut p, u).unwrap();
    }
    assert_eq!(p.table("t0").unwrap().len(), 0);
    let pkt = Packet::from_fields(
        &p.catalog,
        &[
            ("ip_dst", mapro::packet::ipv4("192.0.2.1") as u64),
            ("tcp_dst", 80),
        ],
    );
    assert!(p.run(&pkt).unwrap().dropped);
}

// ------------------------------------------------------------------------
// Fault-injected control channel: the controller must converge the switch
// to the intended pipeline under any survivable fault plan, and the
// switch's txn dedup must make duplicated/reordered flow-mods harmless.

use mapro::control::{
    Controller, DriverConfig, Endpoint, FaultPlan, FaultyChannel, FlowMod, FlowModOp,
};
use mapro::switch::LiveSwitch;

/// Drive `intents` service moves through a faulty channel, then reconcile
/// until switch and controller agree. Individual intents may fail (that is
/// the point); convergence must not.
fn drive_and_converge(universal: bool, plan: FaultPlan) {
    let g = Gwlb::random(3, 2, plan.seed ^ 0xA5A5);
    let repr = if universal {
        g.universal.clone()
    } else {
        g.normalized(JoinKind::Goto).unwrap()
    };
    let sw = LiveSwitch::eswitch(repr.clone()).unwrap();
    let mut ch = FaultyChannel::new(sw, plan);
    // Generous retries: at p_drop = 0.7 a round trip survives with p ≈
    // 0.09, so a bounded-retry RPC still occasionally reports Unreachable;
    // the outer reconcile loop below absorbs that.
    let cfg = DriverConfig {
        max_retries: 60,
        ..Default::default()
    };
    let mut ctl = Controller::new(repr, cfg);
    for k in 0..6usize {
        let intended = ctl.intended().clone();
        let plan = g.move_service_port(&intended, k % 3, 11_000 + k as u16);
        let _ = ctl.apply_plan(&mut ch, &plan); // errors repaired below
    }
    let mut converged = false;
    for _ in 0..6 {
        let _ = ctl.reconcile(&mut ch);
        if ch.endpoint().pipeline() == ctl.intended() {
            converged = true;
            break;
        }
    }
    assert!(
        converged,
        "reconciliation must converge (plan {:?})",
        ch.plan()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Reconciliation converges for any fault plan with p_drop < 1,
    /// within bounded rounds, for both representations.
    #[test]
    fn reconciliation_converges_under_faults(
        drop_pct in 0u32..=70, dup_pct in 0u32..=50, reorder_pct in 0u32..=50,
        restart in 0u64..=1, seed in 0u64..10_000, universal in 0u8..=1,
    ) {
        let plan = FaultPlan {
            p_drop: drop_pct as f64 / 100.0,
            p_dup: dup_pct as f64 / 100.0,
            p_reorder: reorder_pct as f64 / 100.0,
            // Either no restarts or sparse ones: a switch that restarts
            // faster than a repair round can finish never converges (nor
            // would its hardware counterpart).
            restart_every: restart * 25,
            latency_ns: 10_000,
            seed,
        };
        drive_and_converge(universal == 1, plan);
    }

    /// Delivering the same flow-mod multiset twice (second time in reverse
    /// order) leaves the pipeline exactly where one delivery put it: txn
    /// dedup makes redelivery and reordering harmless.
    #[test]
    fn redelivered_flowmods_are_idempotent(
        seed in 0u64..10_000, moves in 1usize..8,
    ) {
        let g = Gwlb::random(4, 2, seed);
        let goto = g.normalized(JoinKind::Goto).unwrap();
        let mut sw = LiveSwitch::eswitch(goto.clone()).unwrap();
        // Build the delivered multiset: each intent as one Apply flow-mod.
        let mut msgs = Vec::new();
        let mut intended = goto.clone();
        for k in 0..moves {
            let plan = g.move_service_port(&intended, k % 4, 12_000 + k as u16);
            for u in &plan.updates {
                mapro::control::apply_update(&mut intended, u).unwrap();
                msgs.push(FlowMod {
                    txn: msgs.len() as u64 + 1,
                    epoch: 0,
                    op: FlowModOp::Apply(u.clone()),
                });
            }
        }
        for m in &msgs {
            prop_assert!(sw.deliver(m).result.is_ok());
        }
        prop_assert_eq!(sw.pipeline(), &intended);
        let once = sw.pipeline().clone();
        // Redeliver everything, reversed: acks replay, state is untouched.
        for m in msgs.iter().rev() {
            let ack = sw.deliver(m);
            prop_assert!(ack.result.is_ok());
        }
        prop_assert_eq!(sw.pipeline(), &once);
    }
}

/// CI fault-matrix entry point: a fixed fault storm whose seed comes from
/// `MAPRO_FAULT_SEED` (default 2019). Two runs under one seed must produce
/// byte-identical channel statistics and final state — the determinism
/// that makes every fault bug in this suite replayable.
#[test]
fn fault_storm_is_deterministic_and_converges() {
    let seed: u64 = std::env::var("MAPRO_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(2019);
    let run = |seed: u64| {
        let g = Gwlb::random(4, 2, 7);
        let goto = g.normalized(JoinKind::Goto).unwrap();
        let sw = LiveSwitch::eswitch(goto.clone()).unwrap();
        let plan = FaultPlan {
            p_drop: 0.3,
            p_dup: 0.15,
            p_reorder: 0.15,
            restart_every: 40,
            latency_ns: 10_000,
            seed,
        };
        let mut ch = FaultyChannel::new(sw, plan);
        let mut ctl = Controller::new(goto, DriverConfig::default());
        for k in 0..10usize {
            let intended = ctl.intended().clone();
            let plan = g.move_service_port(&intended, k % 4, 13_000 + k as u16);
            let _ = ctl.apply_plan(&mut ch, &plan);
            let _ = ctl.reconcile(&mut ch);
        }
        for _ in 0..4 {
            if ch.endpoint().pipeline() == ctl.intended() {
                break;
            }
            let _ = ctl.reconcile(&mut ch);
        }
        assert_eq!(
            ch.endpoint().pipeline(),
            ctl.intended(),
            "storm under seed {seed} must reconcile"
        );
        (
            ch.stats().clone(),
            ch.now_ns(),
            ch.endpoint().pipeline().clone(),
        )
    };
    let a = run(seed);
    let b = run(seed);
    assert_eq!(a.0, b.0, "channel stats must replay exactly");
    assert_eq!(a.1, b.1, "virtual clock must replay exactly");
    assert_eq!(a.2, b.2, "final state must replay exactly");
}

/// Regression: at p_drop = 0.9 reconciliation used to spin its full round
/// budget and surface an error; it must now stop within its deadline and
/// report a typed `Exhausted` outcome the caller can act on.
#[test]
fn reconcile_exhausts_with_typed_outcome_at_extreme_drop() {
    use mapro::control::ReconcileOutcome;
    let g = Gwlb::random(3, 2, 99);
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let sw = LiveSwitch::eswitch(goto.clone()).unwrap();
    let plan = FaultPlan {
        p_drop: 0.9,
        p_dup: 0.1,
        p_reorder: 0.1,
        restart_every: 0,
        latency_ns: 10_000,
        seed: 99,
    };
    let mut ch = FaultyChannel::new(sw, plan);
    let cfg = DriverConfig {
        max_retries: 4,
        reconcile_deadline_ns: 50_000_000,
        ..Default::default()
    };
    let mut ctl = Controller::new(goto, cfg);
    // Create real divergence so the pass has work it cannot finish.
    let intent = g.move_service_port(&ctl.intended().clone(), 0, 14_000);
    let _ = ctl.apply_plan(&mut ch, &intent);
    match ctl.reconcile(&mut ch) {
        Ok(ReconcileOutcome::Exhausted { rounds, .. }) => {
            assert!(rounds >= 1, "at least one round was attempted");
        }
        Ok(ReconcileOutcome::Converged(_)) => {
            // Seeded luck is allowed, but the budget must have held
            // regardless — nothing to assert beyond termination.
        }
        Err(e) => panic!("reconcile must exhaust, not error: {e}"),
    }
    assert!(
        ch.now_ns() < 2_000_000_000,
        "the deadline must bound the spin: burned {} ns",
        ch.now_ns()
    );
}
