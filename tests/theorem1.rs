//! E9 — Theorem 1: the machine-checked derivation replay.

use mapro::netkat::{derivation, verify};
use mapro::prelude::*;
use mapro_bench::theorem1_replay;

#[test]
fn derivation_on_fig1_verifies_line_by_line() {
    let s = theorem1_replay();
    assert_eq!(s.steps, 9);
    assert!(s.packets_checked > 0);
    assert!(s.laws[0].contains("Eq.(1)"));
    assert!(s.laws.last().unwrap().contains("T_XY >> T_XZ"));
    // Every axiom the proof cites appears.
    for law in ["BA-Seq-Idem", "BA-Seq-Comm", "KA-Plus-Idem", "BA-Contra"] {
        assert!(s.laws.iter().any(|l| l.contains(law)), "missing law {law}");
    }
}

#[test]
fn derivation_final_line_matches_actual_decomposition_semantics() {
    // The last proof line (T_XY ; T_XZ) and the executable rematch-join
    // decomposition must agree on every packet.
    let g = Gwlb::fig1();
    let t = g.universal.table("t0").unwrap();
    let steps = derivation(t, &g.universal.catalog, &[g.ip_dst], &[g.tcp_dst]).unwrap();
    verify(&steps, &g.universal.catalog).expect("all lines equivalent");
    let rematch = g.normalized(JoinKind::Rematch).unwrap();
    assert_equivalent(&g.universal, &rematch);
}

#[test]
fn theorem_hypotheses_are_enforced() {
    use mapro::netkat::Theorem1Error;
    let g = Gwlb::fig1();
    let t = g.universal.table("t0").unwrap();
    // Actions on either side are outside the theorem.
    assert_eq!(
        derivation(t, &g.universal.catalog, &[g.out], &[g.tcp_dst]).unwrap_err(),
        Theorem1Error::SidesMustBeMatchFields
    );
    // A dependency that does not hold is caught.
    assert_eq!(
        derivation(t, &g.universal.catalog, &[g.tcp_dst], &[g.ip_src]).unwrap_err(),
        Theorem1Error::DependencyDoesNotHold
    );
}

#[test]
fn derivation_scales_to_the_benchmark_workload() {
    let g = Gwlb::random(8, 4, 1);
    let t = g.universal.table("t0").unwrap();
    let steps = derivation(t, &g.universal.catalog, &[g.ip_dst], &[g.tcp_dst]).unwrap();
    verify(&steps, &g.universal.catalog).expect("derivation verifies on 32 rows");
}
