//! Crash-recovery properties of the WAL-backed, epoch-fenced control
//! plane (DESIGN.md §13): killing a controller at *any* WAL injection
//! point must leave a log from which a successor recovers the switch to
//! a `mapro_sym`-verified pipeline, and a deposed generation's bundles
//! must never tear the switch state, no matter how its flow-mods
//! interleave with the successor's.

use mapro::control::{
    Controller, CrashInjector, CrashPoint, DriverConfig, DriverError, FaultPlan, FaultyChannel, Wal,
};
use mapro::prelude::*;
use mapro::switch::LiveSwitch;
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kill generation 1 at the `nth` occurrence of each crash point —
    /// before the WAL `Begin`, with a flow-mod on the wire, mid-retry,
    /// between bundle prepare and commit, after commit but before the
    /// WAL `Commit`, or inside reconciliation — under a faulty channel.
    /// A successor replaying the shared WAL must reconcile the switch to
    /// its recovered intent and pass the equivalence guardrail.
    #[test]
    fn successor_recovers_verified_after_crash_at_any_wal_point(
        point_idx in 0usize..CrashPoint::ALL.len(),
        nth in 0u32..3,
        seed in 0u64..1u64 << 16,
    ) {
        let point = CrashPoint::ALL[point_idx];
        let g = Gwlb::random(4, 2, 11);
        let base = g.universal.clone();
        let sw = Rc::new(RefCell::new(LiveSwitch::noviflow(base.clone()).unwrap()));
        let mut ch = FaultyChannel::new(
            sw.clone(),
            FaultPlan {
                p_drop: 0.1,
                p_dup: 0.05,
                p_reorder: 0.05,
                restart_every: 30,
                latency_ns: 10_000,
                seed,
            },
        );
        let wal = Wal::shared(base.clone());
        let cfg = DriverConfig::default();
        let mut gen1 =
            Controller::recover(wal.clone(), cfg.clone(), 1, CrashInjector::at_nth(point, nth));
        for k in 0..6u16 {
            let intended = gen1.intended().clone();
            let plan = g.move_service_port(&intended, k as usize % 4, 10_000 + k);
            if matches!(gen1.apply_plan(&mut ch, &plan), Err(DriverError::Crashed(_))) {
                break;
            }
            if matches!(gen1.reconcile(&mut ch), Err(DriverError::Crashed(_))) {
                break;
            }
        }
        // Whatever generation 1 got to — including nothing, when the
        // injection point never fired — the successor must recover from
        // the log alone, over its own (clean) channel to the same switch.
        let mut ch2 = FaultyChannel::new(sw.clone(), FaultPlan::lossless(seed ^ 1));
        let mut gen2 = Controller::recover(wal.clone(), cfg, 2, CrashInjector::Never);
        let rep = gen2.recover_switch(&mut ch2).expect("successor recovers");
        prop_assert!(rep.reconciled && rep.verified, "unverified recovery: {rep:?}");
        let swb = sw.borrow();
        assert_equivalent(swb.pipeline(), gen2.intended());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// A deposed generation keeps pushing multi-flow-mod bundles after a
    /// fresher epoch fenced the switch. Every attempt must bounce off
    /// the fence as `Deposed` and leave the switch byte-identical: no
    /// prefix of the stale bundle may stick (the torn-update hazard the
    /// two-phase protocol plus epoch fencing is there to kill).
    #[test]
    fn interleaved_epochs_never_tear_bundles(
        split in 1usize..5,
        stale_tries in 1usize..4,
        seed in 0u64..1u64 << 16,
    ) {
        let g = Gwlb::random(4, 2, 13);
        let base = g.universal.clone();
        let sw = Rc::new(RefCell::new(LiveSwitch::noviflow(base.clone()).unwrap()));
        let mut ch1 = FaultyChannel::new(sw.clone(), FaultPlan::lossless(seed));
        let mut ch2 = FaultyChannel::new(sw.clone(), FaultPlan::lossless(seed ^ 7));
        let wal = Wal::shared(base.clone());
        let cfg = DriverConfig::default();
        let mut gen1 = Controller::recover(wal.clone(), cfg.clone(), 1, CrashInjector::Never);
        for k in 0..split {
            let intended = gen1.intended().clone();
            let plan = g.move_service_port(&intended, k % 4, 10_000 + k as u16);
            gen1.apply_plan(&mut ch1, &plan).expect("lossless apply");
        }
        // Epoch 2 takes over: replays the WAL and fences the switch.
        let mut gen2 = Controller::recover(wal.clone(), cfg, 2, CrashInjector::Never);
        let rep = gen2.recover_switch(&mut ch2).expect("takeover");
        prop_assert!(rep.reconciled && rep.verified, "takeover unverified: {rep:?}");
        for k in 0..stale_tries {
            let before = sw.borrow().pipeline().clone();
            let intended = gen1.intended().clone();
            let plan = g.move_service_port(&intended, (split + k) % 4, 20_000 + k as u16);
            prop_assert!(plan.updates.len() > 1, "need a bundle to tear");
            let res = gen1.apply_plan(&mut ch1, &plan);
            prop_assert!(
                matches!(res, Err(DriverError::Deposed { .. })),
                "stale bundle not fenced: {res:?}"
            );
            let swb = sw.borrow();
            prop_assert_eq!(&before, swb.pipeline(), "stale epoch tore the switch");
        }
        // The live generation is undisturbed and still verifies.
        let rep = gen2.recover_switch(&mut ch2).expect("still leads");
        prop_assert!(rep.reconciled && rep.verified);
    }
}
