//! Shape-machinery fuzzing: random tables with randomly *kinded* columns
//! (match fields vs output/opaque/set-field actions), random planted
//! dependencies, random join kinds. Whatever `decompose` accepts must be
//! semantically equivalent; whatever it refuses must be a structured
//! error. This exercises shapes A–D and the Fig. 3 refusal far beyond the
//! paper's hand-picked instances.

use mapro::normalize::DecomposeError;
use mapro::prelude::*;
use proptest::prelude::*;

#[derive(Debug, Clone, Copy, PartialEq)]
enum ColKind {
    Field,
    Output,
    Opaque,
    SetField,
}

#[derive(Debug, Clone)]
struct Spec {
    kinds: Vec<ColKind>,
    rows: Vec<Vec<u64>>,
    det: usize,
    dep: usize,
    join: JoinKind,
}

fn arb_spec() -> impl Strategy<Value = Spec> {
    let kinds = proptest::collection::vec(
        prop_oneof![
            3 => Just(ColKind::Field),
            1 => Just(ColKind::Output),
            1 => Just(ColKind::Opaque),
            1 => Just(ColKind::SetField),
        ],
        3..6,
    )
    .prop_filter("need ≥1 field and ≥2 columns kinds", |ks| {
        ks.iter().filter(|k| **k == ColKind::Field).count() >= 2
    });
    (kinds, 2usize..12, any::<u64>(), 0usize..3)
        .prop_flat_map(|(kinds, nrows, seed, joinsel)| {
            let n = kinds.len();
            let rows =
                proptest::collection::vec(proptest::collection::vec(0u64..4, n), nrows..nrows + 1);
            let det = 0usize..n;
            let dep = 0usize..n;
            (Just(kinds), rows, det, dep, Just(seed), Just(joinsel))
        })
        .prop_map(|(kinds, mut rows, det, dep, _seed, joinsel)| {
            // Plant det → dep: dep value becomes a function of det value.
            if det != dep {
                for row in rows.iter_mut() {
                    row[dep] = (row[det] * 7 + 3) % 4;
                }
            }
            let join = match joinsel {
                0 => JoinKind::Goto,
                1 => JoinKind::Metadata,
                _ => JoinKind::Rematch,
            };
            Spec {
                kinds,
                rows,
                det,
                dep,
                join,
            }
        })
}

fn build(spec: &Spec) -> Option<(Pipeline, Vec<mapro::core::AttrId>)> {
    use mapro::core::{ActionSem, Catalog, Table, Value};
    let mut c = Catalog::new();
    // Targets for set-field actions.
    let targets: Vec<_> = (0..spec.kinds.len())
        .map(|i| c.field(format!("t{i}"), 8))
        .collect();
    let ids: Vec<_> = spec
        .kinds
        .iter()
        .enumerate()
        .map(|(i, k)| match k {
            ColKind::Field => c.field(format!("f{i}"), 8),
            ColKind::Output => c.action(format!("out{i}"), ActionSem::Output),
            ColKind::Opaque => c.action(format!("op{i}"), ActionSem::Opaque),
            ColKind::SetField => c.action(format!("set{i}"), ActionSem::SetField(targets[i])),
        })
        .collect();
    let match_ids: Vec<_> = ids
        .iter()
        .zip(&spec.kinds)
        .filter(|(_, k)| **k == ColKind::Field)
        .map(|(id, _)| *id)
        .collect();
    let action_ids: Vec<_> = ids
        .iter()
        .zip(&spec.kinds)
        .filter(|(_, k)| **k != ColKind::Field)
        .map(|(id, _)| *id)
        .collect();
    let mut t = Table::new("t", match_ids, action_ids);
    let mut seen = std::collections::HashSet::new();
    for row in &spec.rows {
        let matches: Vec<Value> = row
            .iter()
            .zip(&spec.kinds)
            .filter(|(_, k)| **k == ColKind::Field)
            .map(|(v, _)| Value::Int(*v))
            .collect();
        if !seen.insert(matches.clone()) {
            continue; // keep 1NF
        }
        let actions: Vec<Value> = row
            .iter()
            .zip(&spec.kinds)
            .filter(|(_, k)| **k != ColKind::Field)
            .map(|(v, k)| match k {
                ColKind::Output | ColKind::Opaque => Value::sym(format!("s{v}")),
                _ => Value::Int(*v),
            })
            .collect();
        t.push(mapro::core::Entry::new(matches, actions));
    }
    if t.is_empty() {
        return None;
    }
    Some((Pipeline::single(c, t), ids))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(384))]

    #[test]
    fn decompose_is_sound_or_refuses_with_structure(spec in arb_spec()) {
        prop_assume!(spec.det != spec.dep);
        let Some((p, ids)) = build(&spec) else { return Ok(()); };
        let x = vec![ids[spec.det]];
        let y = vec![ids[spec.dep]];
        let opts = DecomposeOpts { join: spec.join, ..Default::default() };
        match decompose(&p, "t", &x, &y, &opts) {
            Ok(q) => {
                // Anything accepted must preserve semantics.
                match check_equivalent(&p, &q, &EquivConfig::default()).unwrap() {
                    EquivOutcome::Equivalent { .. } => {}
                    EquivOutcome::Counterexample(cx) => {
                        prop_assert!(false, "ACCEPTED BUT WRONG: {:?}\nspec {:?}", cx.fields, spec);
                    }
                }
            }
            Err(
                DecomposeError::FdDoesNotHold { .. }
                | DecomposeError::StageNot1NF { .. }
                | DecomposeError::RematchNeedsFieldX
                | DecomposeError::GotoNotInLastStage
                | DecomposeError::SourceNot1NF
                | DecomposeError::OrderSensitiveActionSplit { .. }
                | DecomposeError::RewriteBeforeMatch { .. }
                | DecomposeError::BadSides,
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error {e:?} for {spec:?}"),
        }
    }

    /// When the planted dependency holds and both sides are fields, every
    /// join kind must accept (Theorem 1's hypothesis) — refusal would be a
    /// completeness bug.
    #[test]
    fn field_to_field_dependencies_always_decompose(mut spec in arb_spec()) {
        // Remap det/dep onto two distinct *field* columns (the generator
        // guarantees at least two), replant, and rebuild.
        let fields: Vec<usize> = spec
            .kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| **k == ColKind::Field)
            .map(|(i, _)| i)
            .collect();
        spec.det = fields[spec.det % fields.len()];
        spec.dep = fields[spec.dep % fields.len()];
        prop_assume!(spec.det != spec.dep);
        for row in spec.rows.iter_mut() {
            row[spec.dep] = (row[spec.det] * 7 + 3) % 4;
        }
        let Some((p, ids)) = build(&spec) else { return Ok(()); };
        // Planting happened before 1NF dedup; re-check the FD on the built
        // table (dedup can only remove rows, never break an FD).
        let x = vec![ids[spec.det]];
        let y = vec![ids[spec.dep]];
        let opts = DecomposeOpts { join: spec.join, ..Default::default() };
        let q = decompose(&p, "t", &x, &y, &opts);
        prop_assert!(q.is_ok(), "refused field→field FD: {:?} ({spec:?})", q.err());
        assert_equivalent(&p, &q.unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// The join-dependency decomposition under the same fuzz: any accepted
    /// split must be equivalent; refusals must be structured.
    #[test]
    fn decompose_jd_sound_or_refuses(spec in arb_spec(), cut in 1usize..4) {
        use mapro::normalize::{decompose_jd, JdError};
        let Some((p, ids)) = build(&spec) else { return Ok(()); };
        let n = ids.len();
        let cut = cut.min(n - 1);
        // Binary split with one shared column (the first) as join glue.
        let mut a: Vec<_> = ids[..cut].to_vec();
        let b: Vec<_> = std::iter::once(ids[0])
            .chain(ids[cut..].iter().copied())
            .collect();
        if a.is_empty() {
            a.push(ids[0]);
        }
        match decompose_jd(&p, "t", &[a.clone(), b.clone()]) {
            Ok(q) => match check_equivalent(&p, &q, &EquivConfig::default()).unwrap() {
                EquivOutcome::Equivalent { .. } => {}
                EquivOutcome::Counterexample(cx) => {
                    prop_assert!(
                        false,
                        "JD ACCEPTED BUT WRONG: {:?}\nsplit {a:?} | {b:?}\nspec {spec:?}",
                        cx.fields
                    );
                }
            },
            Err(
                JdError::JoinDependencyDoesNotHold
                | JdError::StageNot1NF { .. }
                | JdError::SourceNot1NF
                | JdError::ComponentsDontCover,
            ) => {}
            Err(e) => prop_assert!(false, "unexpected JD error {e:?}"),
        }
    }

    /// Same for the MVD binary split.
    #[test]
    fn decompose_mvd_sound_or_refuses(spec in arb_spec()) {
        use mapro::normalize::{decompose_mvd, JdError};
        prop_assume!(spec.det != spec.dep);
        prop_assume!(spec.kinds[spec.det] == ColKind::Field);
        let Some((p, ids)) = build(&spec) else { return Ok(()); };
        let x = vec![ids[spec.det]];
        let y = vec![ids[spec.dep]];
        match decompose_mvd(&p, "t", &x, &y) {
            Ok(q) => match check_equivalent(&p, &q, &EquivConfig::default()).unwrap() {
                EquivOutcome::Equivalent { .. } => {}
                EquivOutcome::Counterexample(cx) => {
                    prop_assert!(false, "MVD ACCEPTED BUT WRONG: {:?}\nspec {spec:?}", cx.fields);
                }
            },
            Err(
                JdError::JoinDependencyDoesNotHold
                | JdError::StageNot1NF { .. }
                | JdError::SourceNot1NF
                | JdError::ComponentsDontCover,
            ) => {}
            Err(e) => prop_assert!(false, "unexpected MVD error {e:?}"),
        }
    }
}
