//! Golden checks on the figure renderings (E1/E2/E3/E10 text output):
//! load-bearing lines of each rendering must keep appearing, so a
//! formatting or transformation regression cannot slip out unnoticed.

use mapro_bench::{fig1_rendering, fig2_rendering, fig3_rendering, fig5_rendering};

#[test]
fn fig1_rendering_contains_paper_structure() {
    let s = fig1_rendering();
    // The universal table, rendered in the paper's notation.
    for line in [
        "Fig. 1a: universal table",
        "| 0*     192.0.2.1 80",
        "| 1*     192.0.2.2 443",
        "| *      192.0.2.3 22",
        "Fig. 1b: goto join",
        "Fig. 1c: metadata join",
        "Fig. 1d: rematch join",
    ] {
        assert!(s.contains(line), "missing {line:?} in:\n{s}");
    }
    // Goto join: the per-tenant tables exist.
    assert!(s.contains("table t0_x1:"));
    assert!(s.contains("table t0_x3:"));
    // Metadata join introduces the tag pair.
    assert!(s.contains("M_t0"));
    assert!(s.contains("A_t0"));
}

#[test]
fn fig2_rendering_shows_the_chain() {
    let s = fig2_rendering();
    assert!(s.contains("Fig. 2a: universal L3 table"));
    assert!(s.contains("Cartesian factor"));
    assert!(s.contains("normalized to 3NF") || s.contains("normalized to BCNF"));
    // The group table: mod_dmac and friends in a second-stage table.
    assert!(s.contains("mod_dmac"));
    assert!(s.contains("mod_smac"));
}

#[test]
fn fig3_rendering_reports_the_refusal() {
    let s = fig3_rendering();
    assert!(s.contains("REFUSED"));
    assert!(s.contains("Fig. 3 phenomenon"));
}

#[test]
fn fig5_rendering_contrasts_naive_and_tagged() {
    let s = fig5_rendering();
    assert!(s.contains("Naive 3-table chain equivalent? false"));
    assert!(s.contains("Tagged pipeline equivalent? true"));
    assert!(s.contains("all"), "the `all` metadata fields should show");
}
