//! E6 — §2 encoding-size claims: 24 vs 21 on Fig. 1, and the parametric
//! `4MN` vs `N(3+2M)` formulas, including the asymptotic "roughly half"
//! claim for large M.

use mapro::prelude::*;
use mapro_bench::encoding_sizes;

#[test]
fn fig1_counts_24_vs_21() {
    let g = Gwlb::fig1();
    assert_eq!(g.universal.field_count(), 24);
    assert_eq!(g.normalized(JoinKind::Goto).unwrap().field_count(), 21);
}

#[test]
fn parametric_formulas_hold_exactly() {
    for row in encoding_sizes(&[5, 10, 20], &[2, 4, 8, 16], 2019) {
        assert_eq!(
            row.universal, row.formula_universal,
            "N={} M={}",
            row.n, row.m
        );
        assert_eq!(row.goto, row.formula_goto, "N={} M={}", row.n, row.m);
    }
}

#[test]
fn goto_approaches_half_the_universal_size_for_large_m() {
    // §2: "roughly half the data-plane encoding size … for M large enough":
    // N(3+2M) / 4MN → 1/2 as M → ∞.
    let rows = encoding_sizes(&[10], &[2, 4, 8, 16, 32], 2019);
    let mut prev_ratio = f64::MAX;
    for r in &rows {
        let ratio = r.goto as f64 / r.universal as f64;
        assert!(ratio < prev_ratio, "ratio should fall with M");
        prev_ratio = ratio;
    }
    let last = rows.last().unwrap();
    let ratio = last.goto as f64 / last.universal as f64;
    assert!((0.5..0.56).contains(&ratio), "M=32 ratio {ratio:.3}");
}

#[test]
fn join_size_ordering_goto_smallest() {
    // §4: "the goto_table … join abstraction results [in] the smallest
    // aggregate space in general". (Metadata vs rematch is workload-
    // dependent: for a single-field X the rematch form saves the tag
    // column; the paper only warns rematch *may* be larger "since X may
    // involve matching on multiple header fields".)
    for row in encoding_sizes(&[10, 20], &[4, 8], 2019) {
        assert!(row.goto <= row.metadata, "N={} M={}", row.n, row.m);
        assert!(row.goto <= row.rematch, "N={} M={}", row.n, row.m);
        assert!(row.goto < row.universal);
    }
}

#[test]
fn tcam_bits_shrink_too() {
    let g = Gwlb::random(20, 8, 2019);
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let uni_bits = SizeReport::of(&g.universal).tcam_bits();
    let goto_bits = SizeReport::of(&goto).tcam_bits();
    assert!(goto_bits < uni_bits, "TCAM bits {goto_bits} !< {uni_bits}");
}

#[test]
fn size_report_breakdown_consistent() {
    let g = Gwlb::fig1();
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let rep = SizeReport::of(&goto);
    assert_eq!(rep.tables.len(), 4);
    assert_eq!(rep.fields(), goto.field_count());
    assert_eq!(
        rep.entries(),
        goto.tables.iter().map(|t| t.len()).sum::<usize>()
    );
}
