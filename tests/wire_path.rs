//! The full wire path: synthesize real Ethernet/IPv4/TCP frames, parse
//! them back, bind header fields to the program's attributes, and drive
//! the switch models — the end-to-end plumbing a testbed exercises.

use mapro::packet::{Binding, Frame};
use mapro::prelude::*;
use std::collections::HashMap;

#[test]
fn frames_route_identically_to_abstract_packets() {
    let g = Gwlb::fig1();
    let binding = Binding::standard(&g.universal.catalog);
    let goto = g.normalized(JoinKind::Goto).unwrap();

    let cases = [
        (0x0a00_0001u32, "192.0.2.1", 80u16, Some("vm1")),
        (0xc0a8_0101, "192.0.2.1", 80, Some("vm2")),
        (0x0a00_0001, "192.0.2.2", 443, Some("vm3")),
        (0x9000_0000, "192.0.2.2", 443, Some("vm5")),
        (0x0a00_0001, "192.0.2.3", 22, Some("vm6")),
        (0x0a00_0001, "192.0.2.3", 80, None),
    ];
    for (src, dst, port, want) in cases {
        // Synthesize a 64-byte-class frame, serialize, re-parse.
        let frame = Frame {
            ip_src: src,
            ip_dst: mapro::packet::ipv4(dst),
            dport: port,
            ..Default::default()
        };
        let wire = frame.emit();
        assert_eq!(wire.len(), mapro::packet::MIN_FRAME);
        let parsed = Frame::parse(&wire).expect("round-trips");

        // Bind into an abstract packet and evaluate.
        let pkt = binding.to_packet(&g.universal.catalog, &parsed, &HashMap::new());
        let v = g.universal.run(&pkt).unwrap();
        assert_eq!(v.output.as_deref(), want, "{dst}:{port}");

        // And through a compiled switch on the normalized form.
        let mut sim = EswitchSim::compile(&goto).unwrap();
        let out = sim.process(&pkt);
        assert_eq!(out.output.as_deref(), want, "eswitch {dst}:{port}");
    }
}

#[test]
fn vlan_tagged_frames_bind_correctly() {
    let v = Vlan::fig3();
    let binding = Binding::standard(&v.universal.catalog);
    for (in_port, vlan, want) in [
        (1u64, 1u16, Some("1")),
        (1, 2, Some("2")),
        (3, 1, Some("3")),
        (9, 1, None),
    ] {
        let frame = Frame {
            vlan: Some(vlan),
            ..Default::default()
        };
        let wire = frame.emit();
        let parsed = Frame::parse(&wire).unwrap();
        // in_port is sideband (not on the wire).
        let mut sideband = HashMap::new();
        sideband.insert(v.in_port, in_port);
        let pkt = binding.to_packet(&v.universal.catalog, &parsed, &sideband);
        let verdict = v.universal.run(&pkt).unwrap();
        assert_eq!(
            verdict.output.as_deref(),
            want,
            "port {in_port} vlan {vlan}"
        );
    }
}

#[test]
fn header_rewrites_flow_back_to_frames() {
    // The L3 pipeline rewrites MACs; push a frame through and write the
    // verdict's modifications back into the frame.
    let l3 = L3::fig2();
    let binding = Binding::standard(&l3.universal.catalog);
    let frame = Frame {
        ip_dst: 10 << 24, // P1
        ..Default::default()
    };
    let parsed = Frame::parse(&frame.emit()).unwrap();
    let pkt = binding.to_packet(&l3.universal.catalog, &parsed, &HashMap::new());
    let v = l3.universal.run(&pkt).unwrap();
    assert_eq!(v.output.as_deref(), Some("p1"));
    let mut out_frame = parsed.clone();
    let mut sideband = HashMap::new();
    for (attr, value) in &v.header_mods {
        binding.write(*attr, *value, &mut out_frame, &mut sideband);
    }
    // D1's MAC (0xD1) and the shared source MAC (0x51) landed in the frame.
    assert_eq!(out_frame.eth_dst[5], 0xD1);
    assert_eq!(out_frame.eth_src[5], 0x51);
}
