//! E5 — Table 1: static-performance shapes.
//!
//! Paper claims (who wins / by what factor): OVS and Lagopus are agnostic
//! to normalization; ESwitch gains >50% throughput and roughly halves
//! latency on the goto form; NoviFlow forwards at line rate regardless,
//! with a small latency penalty for the deeper pipeline.

use mapro_bench::{table1, BenchConfig, Table1Row};

fn rows() -> Vec<Table1Row> {
    table1(&BenchConfig {
        packets: 4_000,
        ..Default::default()
    })
}

fn get(rows: &[Table1Row], switch: &str, repr: &str) -> Table1Row {
    rows.iter()
        .find(|r| r.switch == switch && r.repr == repr)
        .unwrap_or_else(|| panic!("{switch}/{repr} missing"))
        .clone()
}

#[test]
fn eswitch_gains_more_than_50_percent() {
    let rows = rows();
    let uni = get(&rows, "ESwitch", "universal");
    let goto = get(&rows, "ESwitch", "goto");
    let gain = goto.rate_mpps / uni.rate_mpps;
    assert!(
        (1.4..1.9).contains(&gain),
        "ESwitch gain ×{gain:.2}, paper ×1.56"
    );
    // Latency roughly halves (paper: 426 → 247 µs).
    let lat = uni.q3_latency_us / goto.q3_latency_us;
    assert!((1.4..2.0).contains(&lat), "latency factor {lat:.2}");
}

#[test]
fn eswitch_mechanism_is_template_specialization() {
    let rows = rows();
    let uni = get(&rows, "ESwitch", "universal");
    let goto = get(&rows, "ESwitch", "goto");
    assert!(uni.templates.iter().all(|t| t.ends_with(":linear")));
    assert!(goto.templates.iter().any(|t| t.ends_with(":exact")));
    assert!(goto.templates.iter().any(|t| t.ends_with(":lpm")));
}

#[test]
fn ovs_is_agnostic() {
    let rows = rows();
    let uni = get(&rows, "OVS", "universal");
    let goto = get(&rows, "OVS", "goto");
    let ratio = goto.rate_mpps / uni.rate_mpps;
    assert!((0.95..1.05).contains(&ratio), "OVS ratio {ratio:.3}");
}

#[test]
fn lagopus_is_agnostic() {
    let rows = rows();
    let uni = get(&rows, "Lagopus", "universal");
    let goto = get(&rows, "Lagopus", "goto");
    let ratio = goto.rate_mpps / uni.rate_mpps;
    assert!((0.9..1.1).contains(&ratio), "Lagopus ratio {ratio:.3}");
}

#[test]
fn noviflow_line_rate_with_latency_penalty() {
    let rows = rows();
    let uni = get(&rows, "NoviFlow", "universal");
    let goto = get(&rows, "NoviFlow", "goto");
    assert!((uni.rate_mpps - goto.rate_mpps).abs() < 0.01);
    assert!(goto.q3_latency_us > uni.q3_latency_us);
    let penalty = goto.q3_latency_us / uni.q3_latency_us;
    assert!((1.2..1.4).contains(&penalty), "penalty {penalty:.2}");
}

#[test]
fn switch_ordering_matches_paper() {
    // NoviFlow > ESwitch > OVS > Lagopus on the universal table.
    let rows = rows();
    let novi = get(&rows, "NoviFlow", "universal").rate_mpps;
    let esw = get(&rows, "ESwitch", "universal").rate_mpps;
    let ovs = get(&rows, "OVS", "universal").rate_mpps;
    let lag = get(&rows, "Lagopus", "universal").rate_mpps;
    assert!(
        novi > esw && esw > ovs && ovs > lag,
        "{novi} {esw} {ovs} {lag}"
    );
}

#[test]
fn all_switches_forward_correctly() {
    // The measured runs never drop benchmark traffic (every flow hits).
    use mapro::prelude::*;
    use mapro::switch::run_modeled;
    let g = Gwlb::random(20, 8, 2019);
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let trace = mapro::packet::generate(&g.universal.catalog, &g.trace_spec(), 2_000, 5);
    for repr in [&g.universal, &goto] {
        let mut s1 = EswitchSim::compile(repr).unwrap();
        let mut s2 = LagopusSim::compile(repr).unwrap();
        let mut s3 = NoviflowSim::compile(repr).unwrap();
        let mut s4 = OvsSim::compile(repr);
        for sim in [&mut s1 as &mut dyn Switch, &mut s2, &mut s3, &mut s4] {
            let r = run_modeled(sim, &trace);
            assert_eq!(r.dropped, 0, "{}", sim.name());
        }
    }
}

#[test]
fn join_choice_decides_the_win_on_specializing_datapaths() {
    // E5b: only the goto join specializes fully; the metadata and rematch
    // joins keep a multi-field wildcard stage and end up *slower than the
    // universal table* on the ESwitch model.
    let rows = mapro_bench::table1_joins(&BenchConfig {
        packets: 4_000,
        ..Default::default()
    });
    let by = |name: &str| {
        rows.iter()
            .find(|r| r.repr == name)
            .unwrap_or_else(|| panic!("{name}"))
            .clone()
    };
    let uni = by("universal");
    let goto = by("goto");
    let meta = by("metadata");
    let rem = by("rematch");
    assert!(goto.eswitch_mpps > 1.4 * uni.eswitch_mpps);
    assert!(meta.eswitch_mpps < uni.eswitch_mpps);
    assert!(rem.eswitch_mpps < uni.eswitch_mpps);
    // And the mechanism: their second stage stayed on the wildcard template.
    assert!(meta.templates.iter().any(|t| t.ends_with(":linear")));
    assert!(rem.templates.iter().any(|t| t.ends_with(":linear")));
    assert!(goto.templates.iter().all(|t| !t.ends_with(":linear")));
}
