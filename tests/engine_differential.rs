//! Differential harness for the three replay engines: the interpreter
//! (`EswitchSim`), the compiled tier (`CompiledEngine`), and the
//! megaflow-cached tier (`CachedEngine`) must produce *identical*
//! per-packet verdicts — output port and drop bit — and identical replay
//! digests on every pipeline and every trace, at any worker count.
//!
//! The cost model is allowed to differ (that is the whole point of the
//! cache: hits are cheaper), so only observable behavior is compared.
//!
//! CI runs this file at `MAPRO_THREADS=1` and `=4` and diffs the output,
//! so everything asserted here must be thread-count independent.

use mapro::prelude::*;
use mapro_packet::{generate, FlowSpec, Popularity, Trace, TraceSpec};
use mapro_switch::{replay_digest, CachedEngine, CompiledEngine};
use mapro_workloads::{random_table, RandomSpec};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

type Factory = Box<dyn Fn() -> Box<dyn Switch + Send> + Sync>;

/// One factory per engine tier, all over the same pipeline.
fn engine_factories(p: &Pipeline) -> Vec<(&'static str, Factory)> {
    let (a, b, c) = (p.clone(), p.clone(), p.clone());
    vec![
        (
            "interp",
            Box::new(move || {
                Box::new(EswitchSim::compile(&a).expect("interp compiles"))
                    as Box<dyn Switch + Send>
            }) as Factory,
        ),
        (
            "compiled",
            Box::new(move || {
                Box::new(CompiledEngine::eswitch(&b).expect("compiled tier compiles"))
                    as Box<dyn Switch + Send>
            }),
        ),
        (
            "cached",
            Box::new(move || {
                Box::new(CachedEngine::eswitch(&c).expect("cached tier compiles"))
                    as Box<dyn Switch + Send>
            }),
        ),
    ]
}

/// Assert all three engines agree packet-by-packet on (output, dropped),
/// and that their replay digests match at 1 and 4 workers.
fn engines_identical(p: &Pipeline, trace: &Trace, ctx: &str) {
    let engines = engine_factories(p);

    // Per-packet verdicts, serial: every packet in order through all
    // three tiers, compared pairwise against the interpreter.
    let mut sims: Vec<(&str, Box<dyn Switch + Send>)> =
        engines.iter().map(|(n, f)| (*n, f())).collect();
    for (i, (_, pkt)) in trace.packets.iter().enumerate() {
        let mut verdicts = sims.iter_mut().map(|(n, s)| {
            let r = s.process(pkt);
            (*n, r.output, r.dropped)
        });
        let (_, out0, drop0) = verdicts.next().expect("at least one engine");
        for (name, out, dropped) in verdicts {
            assert_eq!(
                (&out0, drop0),
                (&out, dropped),
                "{ctx}: {name} diverged from interp on packet {i}"
            );
        }
    }

    // Replay digests: identical across engines at every worker count.
    for workers in [1usize, 4] {
        let digests: Vec<(&str, u64)> = engines
            .iter()
            .map(|(n, f)| (*n, replay_digest(&**f, trace, workers)))
            .collect();
        for (name, d) in &digests[1..] {
            assert_eq!(
                digests[0].1, *d,
                "{ctx}: {name} digest differs from interp at {workers} workers"
            );
        }
    }
}

/// Trace over a random table's field space: values land in
/// `0..domain + 2`, so a slice of packets miss every row and exercise the
/// drop path (and the cache's dropped-atom cubes) alongside the hits.
fn random_trace(
    rt: &mapro_workloads::RandomTable,
    spec: &RandomSpec,
    popularity: Popularity,
    nflows: usize,
    packets: usize,
    seed: u64,
) -> Trace {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9);
    let flows = (0..nflows)
        .map(|_| FlowSpec {
            fields: rt
                .field_ids
                .iter()
                .map(|&id| (id, rng.gen::<u64>() % (spec.domain + 2)))
                .collect(),
            weight: 1 + rng.gen::<u64>() % 4,
        })
        .collect();
    let tspec = TraceSpec { flows, popularity };
    generate(&rt.pipeline.catalog, &tspec, packets, seed)
}

#[test]
fn gwlb_representations_identical_across_engines() {
    let g = Gwlb::fig1();
    let goto = g.normalized(JoinKind::Goto).expect("decomposes");
    let spec = TraceSpec {
        flows: g.trace_spec().flows,
        popularity: Popularity::Zipf(1.1),
    };
    for (name, repr) in [("universal", &g.universal), ("goto", &goto)] {
        let trace = generate(&repr.catalog, &spec, 4_000, 2019);
        engines_identical(repr, &trace, &format!("gwlb {name}"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random single-table pipelines under uniform traffic: all three
    /// tiers byte-identical, including on flows that miss every row.
    #[test]
    fn random_tables_identical_uniform(
        seed in 0u64..1000,
        fields in 2usize..4,
        rows in 4usize..12,
        nflows in 8usize..40,
    ) {
        let spec = RandomSpec { fields, rows, domain: 6, planted: vec![] };
        let rt = random_table(&spec, seed);
        let trace = random_trace(&rt, &spec, Popularity::Weighted, nflows, 2_000, seed);
        engines_identical(&rt.pipeline, &trace, "random uniform");
    }

    /// Same, under Zipf-skewed traffic — the regime where the megaflow
    /// cache serves almost everything from installed cubes.
    #[test]
    fn random_tables_identical_zipf(
        seed in 1000u64..2000,
        fields in 2usize..4,
        rows in 4usize..12,
        nflows in 8usize..40,
    ) {
        let spec = RandomSpec { fields, rows, domain: 6, planted: vec![] };
        let rt = random_table(&spec, seed);
        let trace = random_trace(&rt, &spec, Popularity::Zipf(1.2), nflows, 2_000, seed);
        engines_identical(&rt.pipeline, &trace, "random zipf");
    }
}
