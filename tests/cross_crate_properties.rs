//! Cross-crate property tests: the full stack holds together on random
//! inputs — random workloads normalize equivalently, every switch model
//! agrees with the abstract interpreter, classifiers agree with the
//! reference semantics, and flatten∘normalize is the identity up to
//! equivalence.

use mapro::prelude::*;
use mapro::switch::ProcessOut;
use mapro_workloads::{random_table, RandomSpec};
use proptest::prelude::*;

fn arb_gwlb() -> impl Strategy<Value = Gwlb> {
    (2usize..6, 0u32..3, 0u64..500).prop_map(|(n, mexp, seed)| Gwlb::random(n, 1 << mexp, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_join_is_equivalent_on_random_gwlb(g in arb_gwlb()) {
        for join in [JoinKind::Goto, JoinKind::Metadata, JoinKind::Rematch] {
            let p = g.normalized(join).unwrap();
            assert_equivalent(&g.universal, &p);
        }
    }

    #[test]
    fn switch_models_agree_with_interpreter(g in arb_gwlb(), seed in 0u64..100) {
        let goto = g.normalized(JoinKind::Goto).unwrap();
        let trace = mapro::packet::generate(&g.universal.catalog, &g.trace_spec(), 200, seed);
        for repr in [&g.universal, &goto] {
            let idx = repr.name_index();
            let mut eswitch = EswitchSim::compile(repr).unwrap();
            let mut lagopus = LagopusSim::compile(repr).unwrap();
            let mut noviflow = NoviflowSim::compile(repr).unwrap();
            let mut ovs = OvsSim::compile(repr);
            for (_, pkt) in &trace.packets {
                let want = repr.run_indexed(pkt, &idx).unwrap();
                let check = |got: ProcessOut, name: &str| {
                    prop_assert_eq!(got.output.as_deref(), want.output.as_deref(), "{}", name);
                    prop_assert_eq!(got.dropped, want.dropped, "{}", name);
                    Ok(())
                };
                check(eswitch.process(pkt), "eswitch")?;
                check(lagopus.process(pkt), "lagopus")?;
                check(noviflow.process(pkt), "noviflow")?;
                check(ovs.process(pkt), "ovs")?;
            }
        }
    }

    #[test]
    fn flatten_inverts_normalize(seed in 0u64..300, fields in 3usize..5, rows in 5usize..20) {
        let spec = RandomSpec {
            fields,
            rows,
            domain: 4,
            planted: vec![(0, 1)],
        };
        let rt = random_table(&spec, seed);
        let n = normalize(&rt.pipeline, &NormalizeOpts::default());
        assert_equivalent(&rt.pipeline, &n.pipeline);
        let flat = flatten(&n.pipeline, "flat").unwrap();
        let flat_pipe = Pipeline::single(n.pipeline.catalog.clone(), flat);
        assert_equivalent(&rt.pipeline, &flat_pipe);
    }

    #[test]
    fn normalized_pipelines_reach_third_normal_form(seed in 0u64..300) {
        let spec = RandomSpec {
            fields: 4,
            rows: 24,
            domain: 4,
            planted: vec![(0, 1), (1, 2)],
        };
        let rt = random_table(&spec, seed);
        let n = normalize(&rt.pipeline, &NormalizeOpts::default());
        if n.complete() {
            prop_assert!(pipeline_level(&n.pipeline) >= NfLevel::Third);
        }
        assert_equivalent(&rt.pipeline, &n.pipeline);
    }

    #[test]
    fn ovs_cache_never_changes_verdicts(g in arb_gwlb(), seed in 0u64..50) {
        // Replay the trace twice: cold then warm. Verdicts must match.
        let trace = mapro::packet::generate(&g.universal.catalog, &g.trace_spec(), 150, seed);
        let mut sim = OvsSim::compile(&g.universal);
        let cold: Vec<_> = trace.packets.iter()
            .map(|(_, p)| sim.process(p).output).collect();
        let warm: Vec<_> = trace.packets.iter()
            .map(|(_, p)| sim.process(p).output).collect();
        prop_assert_eq!(cold, warm);
    }
}

#[test]
fn intent_application_preserves_equivalence_between_representations() {
    // Apply a whole batch of intents to both representations and check
    // they stay in lockstep — the "more reactive data plane" (§2) without
    // semantic drift.
    let g = Gwlb::random(6, 4, 11);
    let goto0 = g.normalized(JoinKind::Goto).unwrap();
    let mut uni = g.universal.clone();
    let mut goto = goto0.clone();
    for (i, port) in [(0usize, 1111u16), (2, 2222), (4, 3333), (0, 4444)] {
        let plan = g.move_service_port(&uni, i, port);
        mapro::control::apply_plan(&mut uni, &plan).unwrap();
        let plan = g.move_service_port(&goto, i, port);
        mapro::control::apply_plan(&mut goto, &plan).unwrap();
    }
    assert_equivalent(&uni, &goto);
}

#[test]
fn normalization_of_gwlb_is_dependency_preserving() {
    // 3NF synthesis is dependency-preserving in relational theory; check
    // the property end-to-end on our decomposition: project the declared
    // dependencies onto the produced stages' attribute sets and verify the
    // union still implies everything. (The metadata tag columns carry the
    // determinant's identity, so we check over the program-view columns.)
    let g = Gwlb::random(6, 4, 5);
    let n = normalize(&g.universal, &NormalizeOpts::default());
    assert!(n.complete());
    // Mined dependencies of the source table.
    let src = g.universal.table("t0").unwrap();
    let mined = mine_fds(src, &g.universal.catalog);
    // Stage attribute sets, with the metadata tag mapped back to its
    // determinant: the tag is a bijection of the X-class, so for
    // preservation purposes a stage matching the tag "knows" X. Our
    // decomposition records X in the first stage; substitute accordingly.
    let stages: Vec<Vec<mapro::core::AttrId>> = n
        .pipeline
        .tables
        .iter()
        .map(|t| {
            t.attrs()
                .into_iter()
                .flat_map(|a| match n.pipeline.catalog.name(a) {
                    // Tag columns stand for the decomposition key ip_dst.
                    name if name.starts_with("M_") || name.starts_with("A_") => {
                        vec![g.ip_dst]
                    }
                    _ => vec![a],
                })
                .filter(|a| a.index() < g.universal.catalog.len())
                .collect()
        })
        .collect();
    assert!(
        mined.fds.preserved_by(&stages),
        "3NF normalization should preserve the mined dependencies"
    );
}
