//! E8 — §2 monitorability claims.

use mapro::prelude::*;
use mapro_bench::{monitorability, BenchConfig};

#[test]
fn fig1_needs_3_counters_universal_1_normalized() {
    let g = Gwlb::fig1();
    // "This requires the installation of 3 counters into the universal
    // table (for entries 3-5)".
    let rules = g.tenant_counters(&g.universal, 1);
    assert_eq!(rules.len(), 3);
    assert_eq!(
        rules,
        vec![
            ("t0".to_owned(), 2),
            ("t0".to_owned(), 3),
            ("t0".to_owned(), 4)
        ]
    );
    // "…the normal form allows to monitor at a single point".
    for join in [JoinKind::Goto, JoinKind::Metadata, JoinKind::Rematch] {
        let p = g.normalized(join).unwrap();
        assert_eq!(g.tenant_counters(&p, 1).len(), 1, "{join}");
    }
}

#[test]
fn aggregates_agree_with_ground_truth_in_all_representations() {
    let rows = monitorability(&BenchConfig {
        packets: 6_000,
        ..Default::default()
    });
    assert_eq!(rows.len(), 4);
    for r in &rows {
        assert_eq!(r.aggregate, r.ground_truth, "{}", r.repr);
    }
    let uni = rows.iter().find(|r| r.repr == "universal").unwrap();
    let goto = rows.iter().find(|r| r.repr == "goto").unwrap();
    assert_eq!(uni.counters, 8); // M = 8
    assert_eq!(goto.counters, 1);
}

#[test]
fn counter_readback_effort_scales_with_placement() {
    // The controller-side work is one read per counter plus the sum.
    let g = Gwlb::random(10, 4, 3);
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let mut uni_counters = mapro::control::CounterSet::new(g.tenant_counters(&g.universal, 2));
    let mut norm_counters = mapro::control::CounterSet::new(g.tenant_counters(&goto, 2));
    assert_eq!(uni_counters.readings().len(), 4);
    assert_eq!(norm_counters.readings().len(), 1);
    // Both see the same traffic.
    let trace = mapro::packet::generate(&g.universal.catalog, &g.trace_spec(), 3_000, 4);
    let ui = g.universal.name_index();
    let ni = goto.name_index();
    for (_, pkt) in &trace.packets {
        uni_counters.observe(&g.universal.run_indexed(pkt, &ui).unwrap());
        norm_counters.observe(&goto.run_indexed(pkt, &ni).unwrap());
    }
    assert_eq!(uni_counters.aggregate(), norm_counters.aggregate());
}
