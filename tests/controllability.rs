//! E7 — §2 controllability and update-consistency claims.

use mapro::control::{apply_plan, exposure};
use mapro::prelude::*;
use mapro_bench::{controllability, BenchConfig};

#[test]
fn paper_narrative_on_fig1() {
    let g = Gwlb::fig1();
    let goto = g.normalized(JoinKind::Goto).unwrap();
    // "the controller needs to update both of the two entries that relate
    // to tenant 1 in the universal table … whereas in the normal form
    // modifying only one entry is enough".
    assert_eq!(
        g.move_service_port(&g.universal, 0, 443).touched_entries(),
        2
    );
    assert_eq!(g.move_service_port(&goto, 0, 443).touched_entries(), 1);
    // "changing the public IP address would require two updates in the
    // universal table".
    assert_eq!(
        g.change_public_ip(&g.universal, 0, 0x0101_0101)
            .touched_entries(),
        2
    );
    assert_eq!(
        g.change_public_ip(&goto, 0, 0x0101_0101).touched_entries(),
        1
    );
}

#[test]
fn benchmark_workload_8x_amplification() {
    let rows = controllability(&BenchConfig::default());
    let uni = rows.iter().find(|r| r.repr == "universal").unwrap();
    let goto = rows.iter().find(|r| r.repr == "goto").unwrap();
    assert_eq!(uni.move_port_updates, 8);
    assert_eq!(goto.move_port_updates, 1);
    assert_eq!(uni.exposed_states, 7);
    assert_eq!(goto.exposed_states, 0);
}

#[test]
fn rematch_join_pays_for_ip_renumbering() {
    // A finding beyond the paper's table: the rematch join re-encodes
    // ip_dst in the second stage, so renumbering touches M+1 entries —
    // controllability depends on the join abstraction, not just on
    // normalization.
    let rows = controllability(&BenchConfig::default());
    let rematch = rows.iter().find(|r| r.repr == "rematch").unwrap();
    let goto = rows.iter().find(|r| r.repr == "goto").unwrap();
    assert_eq!(rematch.change_ip_updates, 9); // M + 1
    assert_eq!(goto.change_ip_updates, 1);
}

#[test]
fn applied_plans_converge_across_representations() {
    let g = Gwlb::fig1();
    for join in [JoinKind::Goto, JoinKind::Metadata, JoinKind::Rematch] {
        let base = g.normalized(join).unwrap();
        let mut uni = g.universal.clone();
        let mut norm = base.clone();
        apply_plan(&mut uni, &g.move_service_port(&g.universal, 1, 8443)).unwrap();
        apply_plan(&mut norm, &g.move_service_port(&base, 1, 8443)).unwrap();
        assert_equivalent(&uni, &norm);
    }
}

#[test]
fn halfway_exposed_service_reproduced() {
    // §2: "the service may remain halfway-exposed on the new and the old
    // IP addresses".
    let g = Gwlb::fig1();
    let plan = g.move_service_port(&g.universal, 1, 8443); // tenant 2: 3 entries
    let inv = g.one_port_per_ip();
    let rep = exposure(&g.universal, &plan, &&inv).unwrap();
    assert_eq!(rep.intermediate_states, 2);
    assert_eq!(rep.violations.len(), 2); // every intermediate state is bad
                                         // The normalized form is constitutionally safe.
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let plan = g.move_service_port(&goto, 1, 8443);
    let rep = exposure(&goto, &plan, &&inv).unwrap();
    assert!(rep.safe());
}

#[test]
fn lost_update_leaves_universal_inconsistent_but_normalized_atomic() {
    use mapro::control::apply_prefix;
    let g = Gwlb::fig1();
    let plan = g.move_service_port(&g.universal, 0, 443);
    // Drop the tail of the plan: the data plane now answers on both ports.
    let partial = apply_prefix(&g.universal, &plan, 1).unwrap();
    let inv = g.one_port_per_ip();
    assert!(inv(&partial).is_err());
    // Full application restores the invariant.
    let full = apply_prefix(&g.universal, &plan, plan.touched_entries()).unwrap();
    assert!(inv(&full).is_ok());
}
