//! E13 — extension: the normalization gain grows with table size.

use mapro_bench::scaling;

#[test]
fn universal_degrades_goto_flat() {
    let rows = scaling(8, &[5, 20, 80], 3_000, 2019);
    // Universal throughput strictly falls with N.
    assert!(rows[0].universal_mpps > rows[1].universal_mpps);
    assert!(rows[1].universal_mpps > rows[2].universal_mpps);
    // Goto throughput stays within 5% across the sweep (the exact-match
    // first stage and the per-tenant LPM stages don't grow with N).
    let base = rows[0].goto_mpps;
    for r in &rows {
        assert!((r.goto_mpps / base - 1.0).abs() < 0.05, "{:?}", r);
    }
    // Hence the gain grows monotonically.
    assert!(rows[0].gain < rows[1].gain && rows[1].gain < rows[2].gain);
    assert!(rows[2].gain > 2.5, "gain at 80 services: {}", rows[2].gain);
}
