//! Program serialization round-trips (the `mapro` CLI's JSON format) and
//! export formats.

use mapro::core::export;
use mapro::prelude::*;

fn roundtrip(p: &Pipeline) {
    let json = serde_json::to_string(p).expect("serializes");
    let back: Pipeline = serde_json::from_str(&json).expect("parses");
    assert_eq!(*p, back);
    // And semantics survive, of course.
    assert_equivalent(p, &back);
}

#[test]
fn every_workload_roundtrips() {
    roundtrip(&Gwlb::fig1().universal);
    roundtrip(&Gwlb::random(5, 4, 1).universal);
    roundtrip(&L3::fig2().universal);
    roundtrip(&Vlan::fig3().universal);
    roundtrip(&Sdx::fig5().universal);
}

#[test]
fn transformed_pipelines_roundtrip() {
    let g = Gwlb::fig1();
    for join in [JoinKind::Goto, JoinKind::Metadata, JoinKind::Rematch] {
        roundtrip(&g.normalized(join).unwrap());
    }
    let l3 = L3::fig2();
    let n = normalize(&l3.universal, &NormalizeOpts::default());
    roundtrip(&n.pipeline);
}

#[test]
fn value_kinds_all_roundtrip() {
    use mapro::core::Value;
    for v in [
        Value::Int(42),
        Value::prefix(0x8000_0000, 1, 32),
        Value::Ternary { bits: 5, mask: 7 },
        Value::Any,
        Value::sym("vm1"),
    ] {
        let json = serde_json::to_string(&v).unwrap();
        let back: Value = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}

#[test]
fn openflow_export_of_gwlb_representations() {
    let g = Gwlb::fig1();
    let uni = export::to_openflow(&g.universal);
    // 6 entries + 1 miss row.
    assert_eq!(uni.lines().filter(|l| l.starts_with("table=")).count(), 7);
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let s = export::to_openflow(&goto);
    // 4 tables, each with a miss row; goto actions reference table indices.
    assert_eq!(s.matches("priority=0").count(), 4);
    assert!(s.contains("goto_table:1"));
    assert!(s.contains("goto_table:3"));
}

#[test]
fn p4_export_lists_every_table_and_action() {
    let g = Gwlb::fig1();
    let meta = g.normalized(JoinKind::Metadata).unwrap();
    let s = export::to_p4(&meta);
    for t in &meta.tables {
        assert!(s.contains(&format!("table {} {{", t.name.replace('-', "_"))));
    }
    assert!(s.contains("action out(PortId_t port)"));
    assert!(s.contains("action A_t0(bit<32> v)"));
    // The apply block chains both stages.
    assert!(s.contains("t0.apply();"));
    assert!(s.contains("t0_r.apply();"));
}
