//! E4 — Fig. 4: reactiveness shapes.
//!
//! Paper claims: at 100 atomic updates/s the universal table loses ~20×
//! throughput while the normalized pipeline shows no visible drop; the
//! universal form generates 8× the control-plane churn; normalization
//! costs ~25% latency, independent of churn.

use mapro::prelude::*;
use mapro_bench::{fig4, BenchConfig};

fn points() -> Vec<mapro_bench::Fig4Point> {
    let cfg = BenchConfig {
        packets: 2_000,
        ..Default::default()
    };
    let rates: Vec<f64> = (0..=10).map(|i| i as f64 * 10.0).collect();
    fig4(&cfg, &rates)
}

#[test]
fn universal_collapses_roughly_20x_at_100_updates() {
    let pts = points();
    let p0 = &pts[0];
    let p100 = pts.last().unwrap();
    assert_eq!(p100.updates_per_sec, 100.0);
    let collapse = p0.universal_mpps / p100.universal_mpps;
    assert!(
        (10.0..40.0).contains(&collapse),
        "universal collapse was ×{collapse:.1}, expected ≈20×"
    );
}

#[test]
fn normalized_shows_no_visible_drop() {
    let pts = points();
    let p0 = &pts[0];
    let p100 = pts.last().unwrap();
    let loss = 1.0 - p100.normalized_mpps / p0.normalized_mpps;
    assert!(loss < 0.02, "normalized lost {:.1}%", loss * 100.0);
}

#[test]
fn churn_amplification_is_m_fold() {
    let cfg = BenchConfig::default();
    let g = Gwlb::random(cfg.services, cfg.backends, cfg.seed);
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let uni = g.move_service_port(&g.universal, 0, 9999);
    let norm = g.move_service_port(&goto, 0, 9999);
    assert_eq!(uni.touched_entries(), cfg.backends); // M = 8
    assert_eq!(norm.touched_entries(), 1);
}

#[test]
fn normalization_latency_penalty_is_modest_and_churn_independent() {
    let pts = points();
    for p in &pts {
        let ratio = p.normalized_latency_us / p.universal_latency_us;
        assert!(
            (1.15..1.45).contains(&ratio),
            "latency ratio {ratio:.2} at {} updates/s",
            p.updates_per_sec
        );
        // Identical at every churn level (the model's latency term does
        // not involve the update rate, matching the figure).
        assert_eq!(p.universal_latency_us, pts[0].universal_latency_us);
        assert_eq!(p.normalized_latency_us, pts[0].normalized_latency_us);
    }
}

#[test]
fn throughput_is_monotone_in_update_rate() {
    let pts = points();
    for w in pts.windows(2) {
        assert!(w[1].universal_mpps <= w[0].universal_mpps);
        assert!(w[1].normalized_mpps <= w[0].normalized_mpps);
    }
}
