//! E3 — Fig. 3: action-to-match dependencies do not decompose.

use mapro::normalize::DecomposeError;
use mapro::prelude::*;

#[test]
fn out_to_vlan_decomposition_rejected_with_fig3_diagnosis() {
    let v = Vlan::fig3();
    let err = decompose(
        &v.universal,
        "t0",
        &[v.out],
        &[v.vlan],
        &DecomposeOpts::default(),
    )
    .unwrap_err();
    match err {
        DecomposeError::StageNot1NF { stage, rows } => {
            assert_eq!(stage, "t0");
            // The two in_port = 1 rows are the colliding pair.
            assert_eq!(rows, (0, 1));
        }
        e => panic!("expected StageNot1NF, got {e}"),
    }
}

#[test]
fn forced_fig3b_pipeline_is_demonstrably_wrong() {
    let v = Vlan::fig3();
    let broken = decompose(
        &v.universal,
        "t0",
        &[v.out],
        &[v.vlan],
        &DecomposeOpts {
            allow_non_1nf: true,
            ..Default::default()
        },
    )
    .unwrap();
    let r = check_equivalent(&v.universal, &broken, &EquivConfig::default()).unwrap();
    assert!(!r.is_equivalent());
}

#[test]
fn match_to_action_direction_on_same_table_works() {
    // The dual direction — (in_port, vlan) → out — is the ordinary
    // match-to-action shape and decomposes fine (B-shape), showing the
    // asymmetry §4 describes.
    let v = Vlan::fig3();
    let p = decompose(
        &v.universal,
        "t0",
        &[v.in_port, v.vlan],
        &[v.out],
        &DecomposeOpts::default(),
    )
    .unwrap();
    assert_equivalent(&v.universal, &p);
}

#[test]
fn normalizer_leaves_fig3_intact_but_equivalent() {
    let v = Vlan::fig3();
    let n = normalize(&v.universal, &NormalizeOpts::default());
    // Whatever the normalizer managed, semantics are preserved and the
    // impossible decomposition was not forced.
    assert_equivalent(&v.universal, &n.pipeline);
    for s in &n.skipped {
        assert!(matches!(
            s.reason,
            DecomposeError::StageNot1NF { .. } | DecomposeError::RematchNeedsFieldX
        ));
    }
}
