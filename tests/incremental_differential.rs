//! Differential harness for the incremental equivalence session: drive a
//! random pipeline pair through a random flow-mod stream and require that
//! after *every* mod the session's verdict equals a from-scratch
//! `check_symbolic` of the session's own pipelines — for both the cube
//! and the DD backend. Every `NotEquivalent` verdict must come with a
//! counterexample the concrete evaluator confirms, and DD witnesses must
//! be byte-identical to the fresh check's (the module contract).
//!
//! The stream exercises every delta class the session distinguishes:
//! action-only modifies (partitions survive), match-cell modifies
//! (partitions re-derived), inserts and deletes (structural sync), each
//! first applied to one side (divergence window) and then mirrored
//! (convergence). CI runs this file at `MAPRO_THREADS=1` and `=4` and
//! diffs the outcomes, so everything asserted here must be thread-count
//! independent.

use mapro_control::{apply_update, delta_rows, RuleUpdate};
use mapro_core::{Counterexample, Entry, EquivOutcome, Pipeline, Value};
use mapro_sym::{check_symbolic, CoverBackend, IncrementalChecker, Side, SymConfig};
use mapro_workloads::{random_table, RandomSpec, RandomTable};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn backend_cfg(backend: CoverBackend) -> SymConfig {
    SymConfig {
        backend,
        ..SymConfig::default()
    }
}

/// A counterexample is only as good as the packet it names: re-run both
/// pipelines through the concrete evaluator and require observably
/// different behavior matching the recorded verdicts.
fn confirm_counterexample(l: &Pipeline, r: &Pipeline, cx: &Counterexample, ctx: &str) {
    let lv = l
        .run_indexed(&cx.packet, &l.name_index())
        .unwrap_or_else(|e| panic!("{ctx}: cx packet fails on left: {e}"));
    let rv = r
        .run_indexed(&cx.packet, &r.name_index())
        .unwrap_or_else(|e| panic!("{ctx}: cx packet fails on right: {e}"));
    assert_ne!(
        lv.observable(),
        rv.observable(),
        "{ctx}: reported counterexample does not distinguish the pipelines"
    );
    assert_eq!(lv.observable(), cx.left.observable(), "{ctx}: stale left");
    assert_eq!(rv.observable(), cx.right.observable(), "{ctx}: stale right");
}

/// One random flow-mod against the current pipeline, spanning all four
/// delta classes. Inserted rows use match values above the generator's
/// domain so they never collide with an existing tuple.
fn random_mod(p: &Pipeline, rt: &RandomTable, step: usize, rng: &mut SmallRng) -> RuleUpdate {
    let t = &p.tables[0];
    let nrows = t.entries.len();
    match rng.gen_range(0..4u8) {
        // Action-only modify: rewrite the out port of one row.
        0 if nrows > 0 => {
            let row = rng.gen_range(0..nrows);
            RuleUpdate::Modify {
                table: t.name.clone(),
                matches: t.entries[row].matches.clone(),
                set: vec![(rt.out, Value::sym(format!("churn-{step}")))],
            }
        }
        // Match-cell modify: move one row to an unoccupied tuple.
        1 if nrows > 0 => {
            let row = rng.gen_range(0..nrows);
            let col = rng.gen_range(0..rt.field_ids.len());
            RuleUpdate::Modify {
                table: t.name.clone(),
                matches: t.entries[row].matches.clone(),
                set: vec![(rt.field_ids[col], Value::Int(1000 + step as u64))],
            }
        }
        // Delete one row (only while a few remain, so the stream keeps
        // having targets).
        2 if nrows > 2 => {
            let row = rng.gen_range(0..nrows);
            RuleUpdate::Delete {
                table: t.name.clone(),
                matches: t.entries[row].matches.clone(),
            }
        }
        // Insert a fresh row on a tuple outside the generator's domain.
        _ => {
            let matches: Vec<Value> = (0..rt.field_ids.len())
                .map(|c| Value::Int(2000 + step as u64 * 8 + c as u64))
                .collect();
            RuleUpdate::Insert {
                table: t.name.clone(),
                entry: Entry::new(matches, vec![Value::sym(format!("new-{step}"))]),
            }
        }
    }
}

/// Assert the session verdict equals a fresh check of the session's own
/// pipelines; confirm (and for DD, byte-compare) the witness when they
/// disagree somewhere.
fn verdict_matches_fresh(s: &IncrementalChecker, backend: CoverBackend, ctx: &str) {
    let fresh = check_symbolic(s.left(), s.right(), &backend_cfg(backend))
        .unwrap_or_else(|e| panic!("{ctx}: fresh check errored: {e}"));
    assert_eq!(
        s.verdict().is_equivalent(),
        fresh.is_equivalent(),
        "{ctx}: session verdict diverged from a from-scratch check"
    );
    let session_cx = s.counterexample().unwrap_or_else(|e| panic!("{ctx}: {e}"));
    match (&session_cx, &fresh) {
        (Some(cx), EquivOutcome::Counterexample(fresh_cx)) => {
            confirm_counterexample(s.left(), s.right(), cx, ctx);
            if backend == CoverBackend::Dd {
                assert_eq!(
                    cx.fields, fresh_cx.fields,
                    "{ctx}: DD session witness differs from the fresh check's"
                );
            }
        }
        (None, EquivOutcome::Counterexample(_)) | (Some(_), _) => {
            panic!("{ctx}: witness presence disagrees with the verdict")
        }
        (None, _) => {}
    }
}

/// Drive one seeded stream through a session on `backend`, checking the
/// verdict against a fresh check after every single mod.
fn stream_tracks_fresh_checks(rt: &RandomTable, backend: CoverBackend, seed: u64) {
    let mut left = rt.pipeline.clone();
    let mut right = rt.pipeline.clone();
    let mut s = IncrementalChecker::new(&left, &right, &backend_cfg(backend)).unwrap();
    assert!(
        s.verdict().is_equivalent(),
        "identical pair at session start"
    );

    let mut rng = SmallRng::seed_from_u64(seed ^ 0x1CE);
    let mut txn = 0u64;
    for step in 0..6usize {
        let u = random_mod(&left, rt, step, &mut rng);

        // Divergence window: the mod lands on the left only.
        let rows = delta_rows(&left, &u);
        apply_update(&mut left, &u).unwrap();
        txn += 1;
        let t = s.update(Side::Left, &left, &rows, 1, txn).unwrap();
        assert_eq!(t.verdict, s.verdict(), "token reports the session verdict");
        verdict_matches_fresh(&s, backend, &format!("seed {seed} step {step} diverged"));

        // Convergence: mirror the same mod to the right.
        let rows = delta_rows(&right, &u);
        apply_update(&mut right, &u).unwrap();
        txn += 1;
        s.update(Side::Right, &right, &rows, 1, txn).unwrap();
        assert!(
            s.verdict().is_equivalent(),
            "seed {seed} step {step}: mirrored mod must reconverge"
        );
        verdict_matches_fresh(&s, backend, &format!("seed {seed} step {step} converged"));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random pipeline + random flow-mod stream: the incremental verdict
    /// equals a from-scratch check after every mod, on both backends.
    #[test]
    fn incremental_session_tracks_fresh_checks(
        seed in 0u64..2000,
        fields in 2usize..4,
        rows in 4usize..10,
    ) {
        let spec = RandomSpec { fields, rows, domain: 6, planted: vec![(0, 1)] };
        let rt = random_table(&spec, seed);
        stream_tracks_fresh_checks(&rt, CoverBackend::Cube, seed);
        stream_tracks_fresh_checks(&rt, CoverBackend::Dd, seed);
    }
}
