//! Property tests for the core predicate algebra — the soundness bedrock
//! under order-independence checking, flattening and the equivalence
//! domains.

use mapro::core::Value;
use proptest::prelude::*;

const W: u32 = 16;

/// A width small enough to enumerate every field value, so the ternary
/// algebra can be checked against brute force rather than sampling.
const SMALL_W: u32 = 7;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u64..1 << W).prop_map(Value::Int),
        (0u64..1 << W, 0u8..=W as u8).prop_map(|(b, l)| Value::prefix(b, l, W)),
        (0u64..1 << W, 0u64..1 << W).prop_map(|(b, m)| Value::Ternary {
            bits: b & m,
            mask: m
        }),
        Just(Value::Any),
    ]
}

fn arb_small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u64..1 << SMALL_W).prop_map(Value::Int),
        (0u64..1 << SMALL_W, 0u8..=SMALL_W as u8).prop_map(|(b, l)| Value::prefix(b, l, SMALL_W)),
        (0u64..1 << SMALL_W, 0u64..1 << SMALL_W).prop_map(|(b, m)| Value::Ternary {
            bits: b & m,
            mask: m
        }),
        Just(Value::Any),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `intersects` is exactly "some packet matches both".
    #[test]
    fn intersects_iff_shared_packet(a in arb_value(), b in arb_value(), probes in proptest::collection::vec(0u64..1 << W, 64)) {
        let claim = a.intersects(&b, W);
        let witness = probes.iter().any(|&v| a.matches(v, W) && b.matches(v, W));
        // A witness implies the claim (completeness of intersects).
        if witness {
            prop_assert!(claim, "{a} ∩ {b} missed witness");
        }
    }

    /// `intersect` returns a predicate equal to the conjunction, wherever
    /// it returns one.
    #[test]
    fn intersect_is_conjunction(a in arb_value(), b in arb_value(), v in 0u64..1 << W) {
        match a.intersect(&b, W) {
            Some(i) => {
                prop_assert_eq!(
                    i.matches(v, W),
                    a.matches(v, W) && b.matches(v, W),
                    "{} = {} ∩ {} at {}", i, a, b, v
                );
            }
            None => {
                prop_assert!(!(a.matches(v, W) && b.matches(v, W)),
                    "{} ∩ {} nonempty at {}", a, b, v);
            }
        }
    }

    /// `interval` covers exactly the matching values for interval-shaped
    /// predicates.
    #[test]
    fn interval_is_exact(a in arb_value(), v in 0u64..1 << W) {
        if let Some((lo, hi)) = a.interval(W) {
            prop_assert_eq!(a.matches(v, W), (lo..=hi).contains(&v), "{} at {}", a, v);
        }
    }

    /// Intersection is commutative as a predicate.
    #[test]
    fn intersect_commutes(a in arb_value(), b in arb_value(), v in 0u64..1 << W) {
        let ab = a.intersect(&b, W);
        let ba = b.intersect(&a, W);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(x), Some(y)) = (ab, ba) {
            prop_assert_eq!(x.matches(v, W), y.matches(v, W));
        }
    }

    /// Symmetry of `intersects`.
    #[test]
    fn intersects_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.intersects(&b, W), b.intersects(&a, W));
    }

    /// `subsumes` is *exactly* set containment: checked against full
    /// enumeration of the small domain, in both directions (no missed
    /// covers, no spurious ones). This is the guarantee that lets
    /// shadowed-entry detection and the classifier templates rely on the
    /// ternary algebra without re-verifying per use.
    #[test]
    fn subsumes_iff_containment(a in arb_small_value(), b in arb_small_value()) {
        let contained = (0..1u64 << SMALL_W)
            .all(|v| !b.matches(v, SMALL_W) || a.matches(v, SMALL_W));
        prop_assert_eq!(a.subsumes(&b, SMALL_W), contained, "{} ⊇ {}", a, b);
    }

    /// `as_ternary` denotes the same packet set as the value itself, and
    /// its canonical form makes structural equality semantic.
    #[test]
    fn ternary_form_is_exact(a in arb_small_value(), b in arb_small_value()) {
        if let Some((bits, mask)) = a.as_ternary(SMALL_W) {
            for v in 0..1u64 << SMALL_W {
                prop_assert_eq!(a.matches(v, SMALL_W), v & mask == bits, "{} at {}", a, v);
            }
        }
        if let (Some(ta), Some(tb)) = (a.as_ternary(SMALL_W), b.as_ternary(SMALL_W)) {
            let same_set = (0..1u64 << SMALL_W)
                .all(|v| a.matches(v, SMALL_W) == b.matches(v, SMALL_W));
            prop_assert_eq!(ta == tb, same_set, "{} vs {}", a, b);
        }
    }

    /// Subsumption is reflexive and transitive on predicates (a preorder),
    /// and mutual subsumption coincides with equal ternary forms.
    #[test]
    fn subsumes_is_preorder(a in arb_small_value(), b in arb_small_value(), c in arb_small_value()) {
        prop_assert!(a.subsumes(&a, SMALL_W));
        if a.subsumes(&b, SMALL_W) && b.subsumes(&c, SMALL_W) {
            prop_assert!(a.subsumes(&c, SMALL_W), "{} ⊇ {} ⊇ {}", a, b, c);
        }
        if a.subsumes(&b, SMALL_W) && b.subsumes(&a, SMALL_W) {
            prop_assert_eq!(a.as_ternary(SMALL_W), b.as_ternary(SMALL_W));
        }
    }
}

#[test]
fn prefix_normalization_makes_equality_semantic() {
    // prefix() zeroes the don't-care bits, so structural equality equals
    // predicate equality for prefixes of the same length.
    let a = Value::prefix(0b1010_0000_0000_0000, 3, 16);
    let b = Value::prefix(0b1011_1111_1111_1111, 3, 16);
    assert_eq!(a, b);
}
