//! Property tests for the core predicate algebra — the soundness bedrock
//! under order-independence checking, flattening and the equivalence
//! domains.

use mapro::core::Value;
use proptest::prelude::*;

const W: u32 = 16;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (0u64..1 << W).prop_map(Value::Int),
        (0u64..1 << W, 0u8..=W as u8).prop_map(|(b, l)| Value::prefix(b, l, W)),
        (0u64..1 << W, 0u64..1 << W).prop_map(|(b, m)| Value::Ternary {
            bits: b & m,
            mask: m
        }),
        Just(Value::Any),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// `intersects` is exactly "some packet matches both".
    #[test]
    fn intersects_iff_shared_packet(a in arb_value(), b in arb_value(), probes in proptest::collection::vec(0u64..1 << W, 64)) {
        let claim = a.intersects(&b, W);
        let witness = probes.iter().any(|&v| a.matches(v, W) && b.matches(v, W));
        // A witness implies the claim (completeness of intersects).
        if witness {
            prop_assert!(claim, "{a} ∩ {b} missed witness");
        }
    }

    /// `intersect` returns a predicate equal to the conjunction, wherever
    /// it returns one.
    #[test]
    fn intersect_is_conjunction(a in arb_value(), b in arb_value(), v in 0u64..1 << W) {
        match a.intersect(&b, W) {
            Some(i) => {
                prop_assert_eq!(
                    i.matches(v, W),
                    a.matches(v, W) && b.matches(v, W),
                    "{} = {} ∩ {} at {}", i, a, b, v
                );
            }
            None => {
                prop_assert!(!(a.matches(v, W) && b.matches(v, W)),
                    "{} ∩ {} nonempty at {}", a, b, v);
            }
        }
    }

    /// `interval` covers exactly the matching values for interval-shaped
    /// predicates.
    #[test]
    fn interval_is_exact(a in arb_value(), v in 0u64..1 << W) {
        if let Some((lo, hi)) = a.interval(W) {
            prop_assert_eq!(a.matches(v, W), (lo..=hi).contains(&v), "{} at {}", a, v);
        }
    }

    /// Intersection is commutative as a predicate.
    #[test]
    fn intersect_commutes(a in arb_value(), b in arb_value(), v in 0u64..1 << W) {
        let ab = a.intersect(&b, W);
        let ba = b.intersect(&a, W);
        prop_assert_eq!(ab.is_some(), ba.is_some());
        if let (Some(x), Some(y)) = (ab, ba) {
            prop_assert_eq!(x.matches(v, W), y.matches(v, W));
        }
    }

    /// Symmetry of `intersects`.
    #[test]
    fn intersects_symmetric(a in arb_value(), b in arb_value()) {
        prop_assert_eq!(a.intersects(&b, W), b.intersects(&a, W));
    }
}

#[test]
fn prefix_normalization_makes_equality_semantic() {
    // prefix() zeroes the don't-care bits, so structural equality equals
    // predicate equality for prefixes of the same length.
    let a = Value::prefix(0b1010_0000_0000_0000, 3, 16);
    let b = Value::prefix(0b1011_1111_1111_1111, 3, 16);
    assert_eq!(a, b);
}
