//! E1 — Fig. 1: the four GWLB representations and their equivalence.

use mapro::prelude::*;

#[test]
fn fig1a_universal_matches_paper_layout() {
    let g = Gwlb::fig1();
    let t = g.universal.table("t0").unwrap();
    assert_eq!(t.len(), 6);
    assert_eq!(t.match_attrs.len(), 3);
    assert_eq!(t.action_attrs.len(), 1);
    assert_eq!(g.universal.field_count(), 24); // §2: "contains 24 match-action fields"
                                               // 1NF: uniquely identified, order independent.
    assert!(t.rows_unique());
    assert!(t.order_independence(&g.universal.catalog).is_empty());
}

#[test]
fn fig1b_goto_decomposition_layout() {
    let g = Gwlb::fig1();
    let p = g.normalized(JoinKind::Goto).unwrap();
    // T0 plus three per-tenant tables, sized 2 / 3 / 1.
    assert_eq!(p.tables.len(), 4);
    assert_eq!(p.tables[0].len(), 3);
    assert_eq!(p.tables[1].len(), 2);
    assert_eq!(p.tables[2].len(), 3);
    assert_eq!(p.tables[3].len(), 1);
    assert_eq!(p.field_count(), 21); // §2: "only 21"
    assert_equivalent(&g.universal, &p);
}

#[test]
fn fig1c_metadata_decomposition() {
    let g = Gwlb::fig1();
    let p = g.normalized(JoinKind::Metadata).unwrap();
    assert_eq!(p.tables.len(), 2);
    // Stage 1 carries a write-metadata action column; stage 2 matches a
    // metadata field that did not exist in the universal catalog.
    let meta = p.catalog.lookup("M_t0").expect("tag field introduced");
    assert!(p.tables[1].match_attrs.contains(&meta));
    assert!(g.universal.catalog.lookup("M_t0").is_none());
    assert_equivalent(&g.universal, &p);
}

#[test]
fn fig1d_rematch_decomposition() {
    let g = Gwlb::fig1();
    let p = g.normalized(JoinKind::Rematch).unwrap();
    assert_eq!(p.tables.len(), 2);
    // The second stage re-matches ip_dst.
    assert!(p.tables[1].match_attrs.contains(&g.ip_dst));
    assert_equivalent(&g.universal, &p);
}

#[test]
fn every_packet_reaches_the_same_backend_in_all_forms() {
    let g = Gwlb::fig1();
    let forms: Vec<Pipeline> = [JoinKind::Goto, JoinKind::Metadata, JoinKind::Rematch]
        .into_iter()
        .map(|j| g.normalized(j).unwrap())
        .collect();
    // Spot-check the paper's narrative packets.
    let cases = [
        (0u64, "192.0.2.1", 80u64, Some("vm1")),
        (u32::MAX as u64, "192.0.2.1", 80, Some("vm2")),
        (0, "192.0.2.2", 443, Some("vm3")),
        (0x4000_0000, "192.0.2.2", 443, Some("vm4")),
        (0x9000_0000, "192.0.2.2", 443, Some("vm5")),
        (0x1234_5678, "192.0.2.3", 22, Some("vm6")),
        (0, "192.0.2.9", 80, None), // unknown service → drop
    ];
    for (src, dst, port, want) in cases {
        let pkt = Packet::from_fields(
            &g.universal.catalog,
            &[
                ("ip_src", src),
                ("ip_dst", mapro::packet::ipv4(dst) as u64),
                ("tcp_dst", port),
            ],
        );
        let v = g.universal.run(&pkt).unwrap();
        assert_eq!(v.output.as_deref(), want, "universal {dst}:{port}");
        for f in &forms {
            let v = f.run(&pkt).unwrap();
            assert_eq!(v.output.as_deref(), want, "{} {dst}:{port}", f.start);
        }
    }
}

#[test]
fn declared_fds_classify_fig1a_as_first_normal_form_only() {
    let g = Gwlb::fig1();
    let t = g.universal.table("t0").unwrap();
    let r = mapro::fd::analyze_with(t, &g.universal.catalog, g.declared_fds());
    assert_eq!(r.level, NfLevel::First);
}
