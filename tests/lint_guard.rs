//! False-positive and true-positive guard for the static analyzer.
//!
//! Soundness (no false positives): `Error`-severity lints claim program
//! text is *provably* wasted or broken, so a pipeline that `normalize`
//! produced and `check_equivalent` accepted must lint clean at that
//! level, and every shadowed-/dead-entry finding must be confirmed
//! removable — deleting the flagged entry leaves a semantically
//! equivalent program.
//!
//! Completeness (no missed defects): planting a shadowed entry, a
//! union-covered dead entry, an unreachable table, or a goto cycle into a
//! healthy program must each produce the corresponding finding.

use mapro::prelude::*;
use mapro_lint::{lint, LintConfig, LintReport, Severity};
use mapro_workloads::{random_table, RandomSpec};
use proptest::prelude::*;

fn rt_pipeline(fields: usize, rows: usize, domain: u64, seed: u64) -> Pipeline {
    let spec = RandomSpec {
        fields,
        rows,
        domain,
        planted: vec![(0, 1)],
    };
    random_table(&spec, seed).pipeline
}

/// Every shadowed-/dead-entry finding must survive the ground-truth test:
/// removing the flagged entry is semantics-preserving.
fn assert_flagged_entries_removable(p: &Pipeline, report: &LintReport) {
    let mut flagged: Vec<(String, usize)> = report
        .diagnostics
        .iter()
        .filter(|d| d.lint == "shadowed-entry" || d.lint == "dead-entry")
        .map(|d| {
            (
                d.table.clone().expect("entry lints are table-scoped"),
                d.entry.expect("entry-scoped"),
            )
        })
        .collect();
    // Remove back-to-front so indices stay valid if a table is flagged twice.
    flagged.sort();
    flagged.reverse();
    let mut pruned = p.clone();
    for (table, entry) in &flagged {
        pruned.table_mut(table).unwrap().entries.remove(*entry);
    }
    if !flagged.is_empty() {
        assert_equivalent(p, &pruned);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Normalized, equivalence-accepted output lints clean of errors.
    #[test]
    fn normalized_accepted_pipeline_has_no_error_lints(
        fields in 3usize..5,
        rows in 8usize..24,
        domain in 3u64..8,
        seed in 0u64..500,
    ) {
        let p = rt_pipeline(fields, rows, domain, seed);
        let n = normalize(&p, &NormalizeOpts::default());
        prop_assume!(n.complete());
        assert_equivalent(&p, &n.pipeline);
        let r = lint(&n.pipeline, &LintConfig::default());
        prop_assert_eq!(
            r.count(Severity::Error), 0,
            "false positive on normalized pipeline:\n{}", r.to_text()
        );
    }

    /// The raw generator output is healthy too: distinct point rows can
    /// neither shadow nor union-cover each other.
    #[test]
    fn random_program_has_no_error_lints(
        fields in 3usize..5,
        rows in 5usize..20,
        domain in 3u64..10,
        seed in 0u64..500,
    ) {
        let p = rt_pipeline(fields, rows, domain, seed);
        let r = lint(&p, &LintConfig::default());
        prop_assert_eq!(r.count(Severity::Error), 0, "{}", r.to_text());
        assert_flagged_entries_removable(&p, &r);
    }

    /// A replayed entry is shadowed; the finding names it and is removable.
    #[test]
    fn planted_shadowed_entry_detected(
        fields in 3usize..5,
        rows in 5usize..15,
        domain in 3u64..8,
        seed in 0u64..500,
    ) {
        let mut p = rt_pipeline(fields, rows, domain, seed);
        let t = p.table_mut("rt").unwrap();
        let mut dup = t.entries[0].clone();
        dup.actions = t.entries[t.entries.len() - 1].actions.clone();
        let planted_at = t.entries.len();
        t.entries.push(dup);
        let r = lint(&p, &LintConfig::default());
        prop_assert!(
            r.with_lint("shadowed-entry").any(|d| d.entry == Some(planted_at)),
            "planted shadowed entry missed:\n{}", r.to_text()
        );
        assert_flagged_entries_removable(&p, &r);
    }

    /// An entry below a union cover (two half-space prefixes on f0) is
    /// dead even though no single entry shadows it.
    #[test]
    fn planted_dead_entry_detected(
        fields in 3usize..5,
        rows in 5usize..15,
        domain in 3u64..8,
        seed in 0u64..500,
    ) {
        let mut p = rt_pipeline(fields, rows, domain, seed);
        let t = p.table_mut("rt").unwrap();
        let wild = |v: Value, fields: usize| -> Vec<Value> {
            std::iter::once(v)
                .chain(std::iter::repeat_n(Value::Any, fields - 1))
                .collect()
        };
        t.entries.clear();
        t.row(wild(Value::prefix(0, 1, 16), fields), vec![Value::sym("lo")]);
        t.row(wild(Value::prefix(0x8000, 1, 16), fields), vec![Value::sym("hi")]);
        t.row(wild(Value::Any, fields), vec![Value::sym("dead")]);
        let r = lint(&p, &LintConfig::default());
        prop_assert!(
            r.with_lint("dead-entry").any(|d| d.entry == Some(2)),
            "planted dead entry missed:\n{}", r.to_text()
        );
        prop_assert_eq!(r.with_lint("shadowed-entry").count(), 0, "{}", r.to_text());
        assert_flagged_entries_removable(&p, &r);
    }
}

#[test]
fn planted_unreachable_table_detected() {
    let mut p = rt_pipeline(3, 10, 5, 42);
    let mut orphan = p.tables[0].clone();
    orphan.name = "orphan".into();
    p.tables.push(orphan);
    let r = lint(&p, &LintConfig::default());
    assert!(
        r.with_lint("unreachable-table")
            .any(|d| d.table.as_deref() == Some("orphan")),
        "{}",
        r.to_text()
    );
}

#[test]
fn planted_goto_cycle_detected() {
    let mut p = rt_pipeline(3, 10, 5, 42);
    let mut second = p.tables[0].clone();
    second.name = "back".into();
    second.next = Some("rt".into());
    p.tables.push(second);
    p.table_mut("rt").unwrap().next = Some("back".into());
    let r = lint(&p, &LintConfig::default());
    assert!(r.with_lint("goto-cycle").count() > 0, "{}", r.to_text());
}

#[test]
fn planted_unknown_target_detected() {
    let mut p = rt_pipeline(3, 10, 5, 42);
    p.table_mut("rt").unwrap().next = Some("nowhere".into());
    let r = lint(&p, &LintConfig::default());
    assert!(
        r.with_lint("unknown-goto-target").count() > 0,
        "{}",
        r.to_text()
    );
}
