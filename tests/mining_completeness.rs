//! The FD miner against a naive oracle: on random small tables, the
//! lattice miner must find *exactly* the minimal dependencies a
//! brute-force enumeration finds — sound, complete, and minimal.

use mapro::core::{ActionSem, AttrId, Catalog, Table, Value};
use mapro::fd::{mine_fds, AttrSet, Universe};
use proptest::prelude::*;
use std::collections::HashMap;

/// Does X → A hold in the instance? (oracle)
fn holds(rows: &[Vec<u64>], x: u64, a: usize) -> bool {
    let mut seen: HashMap<Vec<u64>, u64> = HashMap::new();
    for r in rows {
        let key: Vec<u64> = (0..r.len())
            .filter(|i| x & (1 << i) != 0)
            .map(|i| r[i])
            .collect();
        match seen.get(&key) {
            Some(&v) if v != r[a] => return false,
            Some(_) => {}
            None => {
                seen.insert(key, r[a]);
            }
        }
    }
    true
}

#[allow(clippy::needless_range_loop)]
/// All minimal (X, A) pairs by brute force.
fn oracle(rows: &[Vec<u64>], n: usize) -> Vec<(u64, usize)> {
    let mut out = Vec::new();
    for a in 0..n {
        let mut found: Vec<u64> = Vec::new();
        for size in 0..n as u32 {
            for x in 0..(1u64 << n) {
                if x.count_ones() != size || x & (1 << a) != 0 {
                    continue;
                }
                #[allow(clippy::manual_contains)] // subset test, not membership
                if found.iter().any(|&f| f & x == f) {
                    continue; // not minimal
                }
                if holds(rows, x, a) {
                    found.push(x);
                    out.push((x, a));
                }
            }
        }
    }
    out
}

fn build_table(rows: &[Vec<u64>]) -> (Catalog, Table) {
    let n = rows[0].len();
    let mut c = Catalog::new();
    let ids: Vec<AttrId> = (0..n).map(|i| c.field(format!("f{i}"), 8)).collect();
    // An always-distinct action column would add FDs; leave actions out so
    // the oracle's universe matches the miner's.
    let _ = ActionSem::Output;
    let mut t = Table::new("t", ids, vec![]);
    let mut seen = std::collections::HashSet::new();
    for r in rows {
        let cells: Vec<Value> = r.iter().map(|&v| Value::Int(v)).collect();
        if seen.insert(cells.clone()) {
            t.row(cells, vec![]);
        }
    }
    (c, t)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn miner_matches_bruteforce_oracle(
        rows in proptest::collection::vec(
            proptest::collection::vec(0u64..3, 4),
            1..14,
        ),
    ) {
        // Dedup rows the same way the miner does.
        let mut uniq: Vec<Vec<u64>> = Vec::new();
        for r in &rows {
            if !uniq.contains(r) {
                uniq.push(r.clone());
            }
        }
        let n = 4usize;
        let (c, t) = build_table(&uniq);
        let mined = mine_fds(&t, &c);
        let want = oracle(&uniq, n);

        // Decode mined FDs into (mask, attr) pairs.
        let u: &Universe = &mined.fds.universe;
        let mut got: Vec<(u64, usize)> = Vec::new();
        for fd in mined.fds.fds() {
            let lhs = fd.lhs.0;
            for p in fd.rhs.iter() {
                got.push((lhs, p));
            }
        }
        got.sort_unstable();
        let mut want = want;
        want.sort_unstable();
        prop_assert_eq!(got, want, "rows: {:?}", uniq);
        let _ = u;
        let _ = AttrSet::EMPTY;
    }
}
