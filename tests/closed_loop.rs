//! Closed-loop integration: packets and control-plane intents interleaved
//! on live switches, universal vs normalized, staying in semantic
//! lockstep throughout (E4's functional half).

use mapro::control::poisson_stream;
use mapro::prelude::*;
use mapro::switch::{run_with_updates, LiveSwitch};

#[test]
fn universal_and_normalized_stay_in_lockstep_under_churn() {
    let g = Gwlb::random(8, 4, 21);
    let goto = g.normalized(JoinKind::Goto).unwrap();
    let trace = mapro::packet::generate(&g.universal.catalog, &g.trace_spec(), 4_000, 3);

    // The same intent stream, compiled against each representation at the
    // moment of application. Ports cycle through fresh values so every
    // intent is a real change.
    let schedule: Vec<(f64, usize, u16)> =
        poisson_stream(2000.0, 0.004, 9, |k| mapro::control::UpdatePlan {
            intent: format!("{k}"),
            updates: vec![],
        })
        .into_iter()
        .enumerate()
        .map(|(k, e)| (e.at_sec, k % 8, 10_000 + k as u16))
        .collect();
    assert!(!schedule.is_empty());

    let mut uni = LiveSwitch::noviflow(g.universal.clone()).unwrap();
    let mut norm = LiveSwitch::noviflow(goto.clone()).unwrap();

    // Drive both switches packet-by-packet with the same virtual clock;
    // compile each plan against the switch's *current* pipeline.
    let pps = 1e6;
    let gap = 1e9 / pps;
    let mut next_plan = 0usize;
    let mut uni_stall = 0.0f64;
    let mut norm_stall = 0.0f64;
    for (i, (_, pkt)) in trace.packets.iter().enumerate() {
        let now = i as f64 * gap;
        while next_plan < schedule.len() && schedule[next_plan].0 * 1e9 <= now {
            let (_, svc, port) = schedule[next_plan];
            let plan = g.move_service_port(uni.pipeline(), svc, port);
            uni_stall += uni.apply_plan(&plan).unwrap();
            let plan = g.move_service_port(norm.pipeline(), svc, port);
            norm_stall += norm.apply_plan(&plan).unwrap();
            next_plan += 1;
        }
        let a = uni.process(pkt);
        let b = norm.process(pkt);
        assert_eq!(a.output, b.output, "packet {i} diverged");
        assert_eq!(a.dropped, b.dropped, "packet {i} drop state diverged");
    }
    assert!(next_plan > 0, "the stream should have fired");
    // Fig. 4's mechanism, observed in the closed loop: the universal
    // switch spent far longer stalled for the same intent stream.
    assert!(
        uni_stall > 5.0 * norm_stall,
        "stalls: universal {uni_stall} vs normalized {norm_stall}"
    );
    // End states are still equivalent pipelines.
    assert_equivalent(uni.pipeline(), norm.pipeline());
}

#[test]
fn run_with_updates_driver_reports_consistent_accounting() {
    let g = Gwlb::fig1();
    let mut sw = LiveSwitch::noviflow(g.universal.clone()).unwrap();
    let trace = mapro::packet::generate(&g.universal.catalog, &g.trace_spec(), 1_000, 5);
    let plan = g.move_service_port(&g.universal, 0, 9999);
    let rep = run_with_updates(&mut sw, &trace, 1e6, &[(200e-6, plan)]).unwrap();
    assert_eq!(rep.plans_applied, 1);
    assert_eq!(rep.outputs.len(), 1_000);
    assert!(rep.stall_total_ns > 0.0);
    assert!((rep.stall_total_ns - sw.total_stall_ns).abs() < 1e-6);
}
