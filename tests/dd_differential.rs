//! Differential harness for the decision-diagram backend: on every
//! workload — the six paper pipelines, the deep-overlap plant, and random
//! tables — the DD engine must return the *same verdict* as the cube
//! engine (where the cube engine's budgets let it answer at all), every
//! counterexample must be confirmed by directly evaluating both pipelines
//! through `mapro-core`, and the lint findings of the two backends must be
//! set-equal wherever the cube backend decided.
//!
//! CI runs this file at `MAPRO_THREADS=1` and `=4` and diffs the verdict
//! digests, so everything asserted here must be thread-count independent.

use mapro::prelude::*;
use mapro_bench::{deep_overlap, deep_pair, DEEP_ROWS};
use mapro_sym::{check_symbolic, CoverBackend, SymConfig};
use mapro_workloads::{random_table, RandomSpec};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn backend_cfg(backend: CoverBackend) -> SymConfig {
    SymConfig {
        backend,
        ..SymConfig::default()
    }
}

/// Run the cube and DD backends on the same pair; assert they agree on
/// equivalence and that any counterexample either backend produces is
/// real. Returns the shared verdict.
fn backends_agree(l: &Pipeline, r: &Pipeline, ctx: &str) -> bool {
    let c = check_symbolic(l, r, &backend_cfg(CoverBackend::Cube))
        .unwrap_or_else(|err| panic!("{ctx}: cube backend errored: {err}"));
    let d = check_symbolic(l, r, &backend_cfg(CoverBackend::Dd))
        .unwrap_or_else(|err| panic!("{ctx}: dd backend errored: {err}"));
    assert_eq!(
        c.is_equivalent(),
        d.is_equivalent(),
        "{ctx}: backends disagree — cube says {c:?}, dd says {d:?}"
    );
    for (backend, out) in [("cube", &c), ("dd", &d)] {
        if let EquivOutcome::Equivalent {
            method, exhaustive, ..
        } = out
        {
            assert_eq!(*method, CheckMethod::Symbolic, "{ctx} ({backend})");
            assert!(
                *exhaustive,
                "{ctx} ({backend}): symbolic proofs are complete"
            );
        }
        if let EquivOutcome::Counterexample(cx) = out {
            confirm_counterexample(l, r, cx, &format!("{ctx} ({backend})"));
        }
    }
    d.is_equivalent()
}

/// A counterexample is only as good as the packet it names: re-run both
/// pipelines on it through the concrete `mapro-core` evaluator and require
/// observably different behavior matching the recorded verdicts.
fn confirm_counterexample(l: &Pipeline, r: &Pipeline, cx: &mapro::core::Counterexample, ctx: &str) {
    let lv = l
        .run_indexed(&cx.packet, &l.name_index())
        .unwrap_or_else(|e| panic!("{ctx}: cx packet fails on left: {e}"));
    let rv = r
        .run_indexed(&cx.packet, &r.name_index())
        .unwrap_or_else(|e| panic!("{ctx}: cx packet fails on right: {e}"));
    assert_ne!(
        lv.observable(),
        rv.observable(),
        "{ctx}: reported counterexample does not distinguish the pipelines"
    );
    assert_eq!(lv.observable(), cx.left.observable(), "{ctx}: stale left");
    assert_eq!(rv.observable(), cx.right.observable(), "{ctx}: stale right");
}

/// Rename the first symbolic output parameter found in the pipeline.
fn perturb_one_output(p: &Pipeline) -> Pipeline {
    let mut q = p.clone();
    'edit: for t in &mut q.tables {
        for e in &mut t.entries {
            for v in &mut e.actions {
                if let Value::Sym(s) = v {
                    *v = Value::sym(format!("{s}-perturbed"));
                    break 'edit;
                }
            }
        }
    }
    q
}

/// The six paper workloads the lint and equivalence sweeps pin down.
fn paper_workloads() -> Vec<(&'static str, Pipeline)> {
    vec![
        ("gwlb fig1", Gwlb::fig1().universal),
        ("l3 fig2", L3::fig2().universal),
        ("vlan fig3", Vlan::fig3().universal),
        ("sdx fig5", Sdx::fig5().universal),
        ("gwlb random", Gwlb::random(6, 4, 7).universal),
        (
            "enterprise random",
            mapro_workloads::Enterprise::random(12, 3, 5).pipeline,
        ),
    ]
}

#[test]
fn paper_workloads_and_normal_forms_agree_on_both_backends() {
    for (name, p) in paper_workloads() {
        // Self-equivalence, then equivalence with the normalized form.
        assert!(backends_agree(&p, &p, &format!("{name} self")));
        let n = normalize(&p, &NormalizeOpts::default());
        assert!(backends_agree(
            &p,
            &n.pipeline,
            &format!("{name} normalized")
        ));
        // Planted divergence: both backends must find it, and the
        // counterexamples are confirmed through the concrete evaluator
        // inside `backends_agree`.
        let bad = perturb_one_output(&p);
        assert!(
            !backends_agree(&p, &bad, &format!("{name} perturbed")),
            "{name}: perturbation went undetected"
        );
    }
}

#[test]
fn deep_overlap_pair_decided_by_dd_where_cube_budget_fails() {
    // The deep plant compiles to ~3×10^5 cube atoms per side — far past
    // any practical cross-intersection — while the DD proof is immediate.
    // Under a cube budget that admits the compile the verdicts agree; this
    // test uses the DD backend alone plus the enumerative confirmation of
    // a perturbed variant to keep runtime bounded.
    let (l, r) = deep_pair(DEEP_ROWS, 2019);
    let d = check_symbolic(&l, &r, &backend_cfg(CoverBackend::Dd)).expect("dd decides deep");
    assert!(d.is_equivalent(), "planted dead entry must be unobservable");

    let bad = perturb_one_output(&l);
    let d = check_symbolic(&l, &bad, &backend_cfg(CoverBackend::Dd)).expect("dd decides deep");
    match d {
        EquivOutcome::Counterexample(cx) => confirm_counterexample(&l, &bad, &cx, "deep perturbed"),
        other => panic!("expected counterexample, got {other:?}"),
    }
}

#[test]
fn deep_overlap_fixture_in_sync_with_generator() {
    // The committed fixture is what CI lints; it must stay byte-for-byte
    // in sync with the generator (regenerate with
    // `target/release/mapro demo deep > tests/golden/deep_overlap.json`).
    let committed: Pipeline = serde_json::from_str(
        &std::fs::read_to_string(concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/golden/deep_overlap.json"
        ))
        .expect("fixture readable"),
    )
    .expect("fixture parses");
    assert_eq!(
        committed,
        deep_overlap(DEEP_ROWS, 2019),
        "tests/golden/deep_overlap.json drifted from the generator"
    );
}

/// Lint both backends; the DD report must decide everything, and the two
/// finding sets must be equal wherever the cube backend decided (i.e. the
/// DD set minus the cube set is at most the verdicts cube left unknown).
fn lint_findings_set_equal_where_decided(p: &Pipeline, ctx: &str) {
    let cfg = |backend| mapro_lint::LintConfig {
        backend,
        ..mapro_lint::LintConfig::default()
    };
    let cube = mapro_lint::lint(p, &cfg(CoverBackend::Cube));
    let dd = mapro_lint::lint(p, &cfg(CoverBackend::Dd));
    assert_eq!(dd.unknown_findings, 0, "{ctx}: DD left a verdict undecided");

    let key =
        |d: &mapro_lint::Diagnostic| (d.lint.clone(), d.table.clone(), d.entry, d.message.clone());
    let cube_set: BTreeSet<_> = cube
        .diagnostics
        .iter()
        .filter(|d| d.lint != "undecided-liveness")
        .map(key)
        .collect();
    let dd_set: BTreeSet<_> = dd.diagnostics.iter().map(key).collect();
    // Everything cube decided, DD reports identically.
    for k in &cube_set {
        assert!(
            dd_set.contains(k),
            "{ctx}: cube finding missing under DD: {k:?}"
        );
    }
    // DD may add only dead-entry verdicts for the questions cube left
    // unknown — and exactly as many.
    let extra: Vec<_> = dd_set.difference(&cube_set).collect();
    assert!(
        extra.len() <= cube.unknown_findings,
        "{ctx}: DD added {} findings but cube left only {} unknown: {extra:?}",
        extra.len(),
        cube.unknown_findings
    );
    for k in &extra {
        assert_eq!(k.0, "dead-entry", "{ctx}: unexpected extra finding {k:?}");
    }
}

#[test]
fn lint_findings_agree_across_backends() {
    for (name, p) in paper_workloads() {
        lint_findings_set_equal_where_decided(&p, name);
    }
    lint_findings_set_equal_where_decided(&deep_overlap(DEEP_ROWS, 2019), "deep");
}

#[test]
fn deep_fixture_flags_planted_entry_error_under_dd_with_zero_unknowns() {
    // The lint completeness regression: the planted entry exhausts the
    // cube budget (surfacing as an unknown finding) but the DD backend
    // must flag it Error with nothing left undecided.
    let p = deep_overlap(DEEP_ROWS, 2019);
    let planted = p.tables[0].entries.len() - 1;

    let cube = mapro_lint::lint(
        &p,
        &mapro_lint::LintConfig {
            backend: CoverBackend::Cube,
            ..mapro_lint::LintConfig::default()
        },
    );
    assert!(
        cube.unknown_findings > 0,
        "deep fixture no longer exhausts the cube budget:\n{}",
        cube.to_text()
    );

    let dd = mapro_lint::lint(
        &p,
        &mapro_lint::LintConfig {
            backend: CoverBackend::Dd,
            ..mapro_lint::LintConfig::default()
        },
    );
    assert_eq!(dd.unknown_findings, 0);
    let planted_diag = dd
        .with_lint("dead-entry")
        .find(|d| d.entry == Some(planted))
        .unwrap_or_else(|| panic!("planted entry not flagged:\n{}", dd.to_text()));
    assert_eq!(planted_diag.severity, mapro_lint::Severity::Error);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random tables, their normalized forms, and a planted divergence:
    /// cube and DD backends must agree on all three pairings.
    #[test]
    fn random_tables_agree_on_both_backends(
        seed in 0u64..2000,
        fields in 2usize..4,
        rows in 4usize..12,
    ) {
        let spec = RandomSpec { fields, rows, domain: 6, planted: vec![(0, 1)] };
        let rt = random_table(&spec, seed);

        prop_assert!(backends_agree(&rt.pipeline, &rt.pipeline, "random self"));

        let n = normalize(&rt.pipeline, &NormalizeOpts::default());
        prop_assert!(backends_agree(&rt.pipeline, &n.pipeline, "random normalized"));

        let bad = perturb_one_output(&rt.pipeline);
        prop_assert!(!backends_agree(&rt.pipeline, &bad, "random perturbed"));
    }
}
